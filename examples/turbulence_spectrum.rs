//! Energy-spectrum analysis of a synthetic turbulent velocity field — the
//! kind of pseudo-spectral diagnostic the paper's motivating simulations
//! (astrophysical N-body, blood flow) run after every 3-D FFT.
//!
//! Builds a random solenoidal-ish field with a k^(−5/3) Kolmogorov
//! amplitude envelope, forward-transforms it with the overlapped pipeline,
//! and bins `|û(k)|²` into shells — then checks the recovered slope.
//!
//! ```sh
//! cargo run --release --example turbulence_spectrum
//! ```

use cfft::planner::Rigor;
use cfft::{Complex64, Direction};
use fft3d::real_env::fft3_dist;
use fft3d::{ProblemSpec, TuningParams, Variant};
use fft3d_repro::{gather_full, wavenumber};

/// Deterministic hash-noise in [−1, 1).
fn noise(x: usize, y: usize, z: usize, salt: u64) -> f64 {
    let mut h = (x as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((y as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add((z as u64).wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(salt.wrapping_mul(0xd6e8_feb8_6659_fd93));
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    (h & 0xffff_ffff) as f64 / 2f64.powi(31) - 1.0
}

fn main() {
    let n = 64;
    let spec = ProblemSpec::cube(n, 4);
    let params = TuningParams::seed(&spec);
    println!("synthesising a {n}³ velocity field with a k^-5/3 envelope…");

    // Build the field in spectral space on rank 0's description: u(x) =
    // Σ_k A(k)·cos phases — cheaper to synthesise directly in real space
    // from a few hundred modes.
    let modes: Vec<(f64, f64, f64, f64, f64)> = {
        let mut m = Vec::new();
        for kx in 0..8usize {
            for ky in 0..8usize {
                for kz in 1..8usize {
                    let k = ((kx * kx + ky * ky + kz * kz) as f64).sqrt();
                    if !(1.0..=8.0).contains(&k) {
                        continue;
                    }
                    // E(k) ∝ k^-5/3 → per-mode amplitude ∝ k^(-5/3-1)/... use
                    // |A| ∝ k^-11/6 so shell-summed energy follows -5/3.
                    let amp = k.powf(-11.0 / 6.0);
                    let phase = std::f64::consts::PI * noise(kx, ky, kz, 7);
                    m.push((kx as f64, ky as f64, kz as f64, amp, phase));
                }
            }
        }
        m
    };
    println!("{} spectral modes", modes.len());

    let spectra = mpisim::run(spec.p, {
        let modes = modes.clone();
        move |comm| {
            let decomp = fft3d::decomp::Decomp::new(spec.nx, spec.ny, spec.p);
            let nxl = decomp.x.count(comm.rank());
            let xoff = decomp.x.offset(comm.rank());
            let h = 2.0 * std::f64::consts::PI / n as f64;
            let mut slab = Vec::with_capacity(nxl * n * n);
            for xl in 0..nxl {
                for y in 0..n {
                    for z in 0..n {
                        let (xf, yf, zf) = ((xoff + xl) as f64 * h, y as f64 * h, z as f64 * h);
                        let mut v = 0.0;
                        for &(kx, ky, kz, amp, ph) in &modes {
                            v += amp * (kx * xf + ky * yf + kz * zf + ph).cos();
                        }
                        slab.push(Complex64::new(v, 0.0));
                    }
                }
            }

            let out = fft3_dist(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &slab,
            );
            let full = gather_full(&comm, &spec, &out);

            // Shell-binned energy spectrum E(k).
            let kmax = n / 2;
            let mut energy = vec![0.0f64; kmax + 1];
            for kx in 0..n {
                for ky in 0..n {
                    for kz in 0..n {
                        let k = (wavenumber(kx, n).powi(2)
                            + wavenumber(ky, n).powi(2)
                            + wavenumber(kz, n).powi(2))
                        .sqrt();
                        let shell = k.round() as usize;
                        if shell <= kmax {
                            energy[shell] += full[(kx * n + ky) * n + kz].norm_sqr();
                        }
                    }
                }
            }
            energy
        }
    });

    let energy = &spectra[0];
    println!("\n  k    E(k)");
    for (k, e) in energy.iter().enumerate().take(9).skip(1) {
        println!("  {k:>2}  {e:.4e}");
    }

    // Fit the log-log slope over the populated shells 2..=7.
    let pts: Vec<(f64, f64)> = (2..=7)
        .filter(|&k| energy[k] > 0.0)
        .map(|k| ((k as f64).ln(), energy[k].ln()))
        .collect();
    let n_pts = pts.len() as f64;
    let (sx, sy): (f64, f64) = pts.iter().fold((0.0, 0.0), |a, p| (a.0 + p.0, a.1 + p.1));
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let slope = (n_pts * sxy - sx * sy) / (n_pts * sxx - sx * sx);
    println!("\nfitted spectral slope: {slope:.2} (target −5/3 ≈ −1.67)");
    assert!(
        (slope - (-5.0 / 3.0)).abs() < 0.6,
        "spectrum should follow the synthesised Kolmogorov envelope"
    );
    println!("spectrum recovered ✓");
}
