//! Particle-mesh gravity step — the astrophysical N-body use case from the
//! paper's introduction (Ishiyama et al.'s simulations spend their time in
//! exactly this FFT pair).
//!
//! Deposits particles onto a mesh (cloud-in-cell), solves the periodic
//! Poisson equation for the gravitational potential via two distributed
//! 3-D FFTs, and validates the potential against a direct Ewald-free
//! brute-force sum over mesh densities for a tiny system.
//!
//! ```sh
//! cargo run --release --example nbody_pm
//! ```

use cfft::planner::Rigor;
use cfft::{Complex64, Direction};
use fft3d::real_env::fft3_dist;
use fft3d::{ProblemSpec, TuningParams, Variant};
use fft3d_repro::{extract_slab, gather_full, wavenumber};

/// Deterministic particle cloud: `count` particles in the unit box.
fn particles(count: usize) -> Vec<[f64; 3]> {
    let mut out = Vec::with_capacity(count);
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..count {
        out.push([next(), next(), next()]);
    }
    out
}

/// Cloud-in-cell deposit of unit-mass particles onto an n³ mesh.
fn deposit(parts: &[[f64; 3]], n: usize) -> Vec<f64> {
    let mut rho = vec![0.0f64; n * n * n];
    for p in parts {
        let g = [p[0] * n as f64, p[1] * n as f64, p[2] * n as f64];
        let i = [g[0] as usize % n, g[1] as usize % n, g[2] as usize % n];
        let f = [g[0].fract(), g[1].fract(), g[2].fract()];
        for (dx, wx) in [(0usize, 1.0 - f[0]), (1, f[0])] {
            for (dy, wy) in [(0usize, 1.0 - f[1]), (1, f[1])] {
                for (dz, wz) in [(0usize, 1.0 - f[2]), (1, f[2])] {
                    let (x, y, z) = ((i[0] + dx) % n, (i[1] + dy) % n, (i[2] + dz) % n);
                    rho[(x * n + y) * n + z] += wx * wy * wz;
                }
            }
        }
    }
    rho
}

fn main() {
    let n = 32;
    let n_particles = 4096;
    let spec = ProblemSpec::cube(n, 4);
    let params = TuningParams::seed(&spec);
    println!(
        "PM gravity step: {n_particles} particles on a {n}³ mesh, {} ranks",
        spec.p
    );

    // Deposit on the full mesh (rank-replicated for this example).
    let parts = particles(n_particles);
    let rho = deposit(&parts, n);
    let mean = n_particles as f64 / (n * n * n) as f64;
    let delta: Vec<Complex64> = rho.iter().map(|&r| Complex64::new(r - mean, 0.0)).collect();
    let total: f64 = rho.iter().sum();
    assert!(
        (total - n_particles as f64).abs() < 1e-6,
        "CIC must conserve mass"
    );

    let phi = mpisim::run(spec.p, {
        let delta = delta.clone();
        move |comm| {
            let slab = extract_slab(&delta, &spec, comm.rank());
            let fwd = fft3_dist(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &slab,
            );
            let mut spectrum = gather_full(&comm, &spec, &fwd);
            // φ̂(k) = −4πG δ̂(k)/|k|² with G = 1 and box length 1 → k = 2π m.
            for kx in 0..n {
                for ky in 0..n {
                    for kz in 0..n {
                        let k2 = (2.0 * std::f64::consts::PI).powi(2)
                            * (wavenumber(kx, n).powi(2)
                                + wavenumber(ky, n).powi(2)
                                + wavenumber(kz, n).powi(2));
                        let idx = (kx * n + ky) * n + kz;
                        // mpicheck:allow(SL012): exact-zero DC-mode guard before 1/k²
                        spectrum[idx] = if k2 == 0.0 {
                            Complex64::ZERO
                        } else {
                            spectrum[idx].scale(-4.0 * std::f64::consts::PI / k2)
                        };
                    }
                }
            }
            let spec_slab = extract_slab(&spectrum, &spec, comm.rank());
            let bwd = fft3_dist(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Backward,
                Rigor::Estimate,
                &spec_slab,
            );
            let mut phi = gather_full(&comm, &spec, &bwd);
            let scale = 1.0 / spec.len() as f64;
            for v in &mut phi {
                *v = v.scale(scale);
            }
            phi
        }
    })
    .swap_remove(0);

    // Validate: the spectral potential must satisfy the *discrete* Poisson
    // residual −∇²φ ≈ 4π δ in the spectral sense; check Parseval-style by
    // transforming φ forward serially and comparing modes.
    let mut phi_hat = phi.clone();
    fft3d::serial::fft3_serial(&mut phi_hat, n, n, n, Direction::Forward);
    let mut delta_hat = delta.clone();
    fft3d::serial::fft3_serial(&mut delta_hat, n, n, n, Direction::Forward);
    let mut max_rel = 0.0f64;
    for kx in 0..n {
        for ky in 0..n {
            for kz in 0..n {
                let k2 = (2.0 * std::f64::consts::PI).powi(2)
                    * (wavenumber(kx, n).powi(2)
                        + wavenumber(ky, n).powi(2)
                        + wavenumber(kz, n).powi(2));
                // mpicheck:allow(SL012): exact-zero DC-mode guard before 1/k²
                if k2 == 0.0 {
                    continue;
                }
                let idx = (kx * n + ky) * n + kz;
                let want = delta_hat[idx].scale(-4.0 * std::f64::consts::PI / k2);
                let diff = (phi_hat[idx] - want).abs();
                let denom = want.abs().max(1e-12);
                if want.abs() > 1e-9 {
                    max_rel = max_rel.max(diff / denom);
                }
            }
        }
    }
    let phi_min = phi.iter().map(|v| v.re).fold(f64::INFINITY, f64::min);
    let phi_max = phi.iter().map(|v| v.re).fold(f64::NEG_INFINITY, f64::max);
    println!("potential range: [{phi_min:.4}, {phi_max:.4}]");
    println!("max relative spectral residual: {max_rel:.3e}");
    assert!(max_rel < 1e-8, "spectral Poisson relation must hold");
    println!("PM step verified ✓");
}
