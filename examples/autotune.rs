//! Auto-tuning walkthrough on the simulated Hopper model: seed vs tuned
//! configuration, tuning trajectory, and the speedup over the FFTW
//! baseline — §4 of the paper end to end.
//!
//! ```sh
//! cargo run --release --example autotune [N] [p]
//! ```

use fft3d::{fft3_simulated, ProblemSpec, TuningParams, Variant};
use simnet::model::hopper;
use tuner::driver::{tune_new, DEFAULT_MAX_EVALS};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(512);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let spec = ProblemSpec::cube(n, p);
    println!("auto-tuning NEW for {n}³ on {p} simulated Hopper ranks\n");

    let seed = TuningParams::seed(&spec);
    let seed_time = fft3_simulated(hopper(), spec, Variant::New, seed, false).time;
    let fftw_time = fft3_simulated(hopper(), spec, Variant::Fftw, seed, false).time;
    println!("FFTW baseline : {fftw_time:.4}s");
    println!(
        "NEW @ seed    : {seed_time:.4}s  ({:.2}× over FFTW)",
        fftw_time / seed_time
    );

    // The tuning objective excludes FFTz/Transpose (§4.4 technique 3).
    let result = tune_new(
        &spec,
        |params| fft3_simulated(hopper(), spec, Variant::New, *params, true).time,
        DEFAULT_MAX_EVALS,
    );

    println!("\ntuning trajectory (objective excludes FFTz/Transpose):");
    let mut best_so_far = f64::INFINITY;
    for (i, (params, v)) in result.history.iter().enumerate() {
        if *v < best_so_far {
            best_so_far = *v;
            println!(
                "  eval {:>3}: {:.4}s  T={} W={} F=({},{},{},{})",
                i + 1,
                v,
                params.t,
                params.w,
                params.fy,
                params.fp,
                params.fu,
                params.fx
            );
        }
    }
    println!(
        "\n{} executed / {} cache hits / {} infeasible rejections (of {} requests)",
        result.executed, result.cache_hits, result.infeasible, result.requests
    );

    let tuned_time = fft3_simulated(hopper(), spec, Variant::New, result.best, false).time;
    println!("\nbest configuration: {:?}", result.best);
    println!(
        "NEW @ tuned   : {tuned_time:.4}s  ({:.2}× over FFTW)",
        fftw_time / tuned_time
    );
    println!(
        "simulated auto-tuning cost: {:.1}s of cluster time",
        result.tuning_cost
    );
    assert!(tuned_time <= seed_time * 1.0001, "tuning must not regress");
}
