//! Quickstart: a distributed 3-D FFT on 4 ranks, verified against the
//! serial reference, with the per-step breakdown printed.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cfft::planner::Rigor;
use cfft::Direction;
use fft3d::real_env::{compare_with_serial, fft3_dist, local_test_slab};
use fft3d::serial::{fft3_serial, full_test_array};
use fft3d::{ProblemSpec, TuningParams, Variant};

fn main() {
    // 64³ complex points across 4 ranks (threads standing in for MPI
    // processes), tiled into communication tiles with a window of 2.
    let spec = ProblemSpec::cube(64, 4);
    let params = TuningParams::seed(&spec);
    println!("problem: {}³ complex points on {} ranks", spec.nx, spec.p);
    println!("parameters (§4.4 seed): {params:?}\n");

    // Serial reference for verification.
    let mut reference = full_test_array(spec.nx, spec.ny, spec.nz);
    fft3_serial(
        &mut reference,
        spec.nx,
        spec.ny,
        spec.nz,
        Direction::Forward,
    );
    let reference = std::sync::Arc::new(reference);

    let results = mpisim::run(spec.p, {
        let reference = reference.clone();
        move |comm| {
            // Each rank owns an x-slab of the input in x-y-z layout.
            let input = local_test_slab(&spec, comm.rank());
            let out = fft3_dist(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &input,
            );
            let err = compare_with_serial(&spec, comm.rank(), &out, &reference);
            (err, out.stats)
        }
    });

    let mut worst = 0.0f64;
    for (rank, (err, stats)) in results.iter().enumerate() {
        worst = worst.max(*err);
        if rank == 0 {
            println!("rank 0 step breakdown:\n{}", stats.steps);
            println!("\nrank 0 MPI_Test calls: {}", stats.tests);
        }
    }
    println!("\nmax |distributed − serial| across ranks: {worst:.3e}");
    assert!(worst < 1e-9, "verification failed");
    println!("verified ✓");
}
