//! Spectral Poisson solver — the "differential equation solving" use case
//! from the paper's introduction.
//!
//! Solves `−∇²u = f` on the periodic box `[0, 2π)³` by a forward
//! distributed 3-D FFT, division by `|k|²`, and a backward distributed
//! FFT, then checks against the analytic solution.
//!
//! ```sh
//! cargo run --release --example poisson
//! ```

use cfft::planner::Rigor;
use cfft::{Complex64, Direction};
use fft3d::real_env::fft3_dist;
use fft3d::{ProblemSpec, TuningParams, Variant};
use fft3d_repro::{extract_slab, gather_full, wavenumber};

/// Right-hand side: f = 14·sin(x)·cos(2y)·sin(3z) so that the analytic
/// solution of −∇²u = f is u = sin(x)·cos(2y)·sin(3z) (|k|² = 1+4+9 = 14).
fn rhs(x: f64, y: f64, z: f64) -> f64 {
    14.0 * x.sin() * (2.0 * y).cos() * (3.0 * z).sin()
}

fn exact(x: f64, y: f64, z: f64) -> f64 {
    x.sin() * (2.0 * y).cos() * (3.0 * z).sin()
}

fn main() {
    let n = 32;
    let spec = ProblemSpec::cube(n, 4);
    let params = TuningParams::seed(&spec);
    let h = 2.0 * std::f64::consts::PI / n as f64;
    println!(
        "solving −∇²u = f spectrally on a {n}³ periodic grid, {} ranks",
        spec.p
    );

    let max_err = mpisim::run(spec.p, move |comm| {
        // Build this rank's x-slab of f.
        let decomp = fft3d::decomp::Decomp::new(spec.nx, spec.ny, spec.p);
        let nxl = decomp.x.count(comm.rank());
        let xoff = decomp.x.offset(comm.rank());
        let mut slab = Vec::with_capacity(nxl * n * n);
        for xl in 0..nxl {
            for y in 0..n {
                for z in 0..n {
                    let (xf, yf, zf) = ((xoff + xl) as f64 * h, y as f64 * h, z as f64 * h);
                    slab.push(Complex64::new(rhs(xf, yf, zf), 0.0));
                }
            }
        }

        // Forward transform (overlapped NEW pipeline).
        let fwd = fft3_dist(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &slab,
        );

        // Divide by |k|² in spectral space. The examples keep this simple
        // by assembling the full spectrum; production codes scale their
        // distributed slab directly.
        let mut spectrum = gather_full(&comm, &spec, &fwd);
        for kx in 0..n {
            for ky in 0..n {
                for kz in 0..n {
                    let k2 = wavenumber(kx, n).powi(2)
                        + wavenumber(ky, n).powi(2)
                        + wavenumber(kz, n).powi(2);
                    let idx = (kx * n + ky) * n + kz;
                    // mpicheck:allow(SL012): exact-zero DC-mode guard before 1/k²
                    spectrum[idx] = if k2 == 0.0 {
                        Complex64::ZERO // zero-mean gauge for the DC mode
                    } else {
                        spectrum[idx] / k2
                    };
                }
            }
        }

        // Backward transform and 1/N³ normalisation.
        let spec_slab = extract_slab(&spectrum, &spec, comm.rank());
        let bwd = fft3_dist(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Backward,
            Rigor::Estimate,
            &spec_slab,
        );
        let u = gather_full(&comm, &spec, &bwd);
        let scale = 1.0 / (spec.len() as f64);

        // Compare with the analytic solution.
        let mut err = 0.0f64;
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    let got = u[(x * n + y) * n + z].re * scale;
                    let want = exact(x as f64 * h, y as f64 * h, z as f64 * h);
                    err = err.max((got - want).abs());
                }
            }
        }
        err
    })
    .into_iter()
    .fold(0.0, f64::max);

    println!("max |u − u_exact| = {max_err:.3e}");
    assert!(
        max_err < 1e-10,
        "spectral Poisson solve should be exact to rounding"
    );
    println!("solved ✓ (spectral accuracy, as expected for a band-limited RHS)");
}
