//! Cross-crate integration on the simulated backend: the qualitative
//! claims of the paper's evaluation must hold as model-level invariants.

use fft3d::{fft3_simulated, th_simulated, ProblemSpec, ThParams, TuningParams, Variant};
use simnet::model::{hopper, umd_cluster};
use tuner::driver::{tune_new, tune_th};

#[test]
fn tuned_new_beats_fftw_everywhere_reported() {
    // Spot-check one cell per panel (the full sweep lives in repro_all).
    for (plat, p, n) in [("umd", 16usize, 256usize), ("hopper", 32, 384)] {
        let platform = if plat == "umd" {
            umd_cluster()
        } else {
            hopper()
        };
        let spec = ProblemSpec::cube(n, p);
        let tuned = tune_new(
            &spec,
            |params| fft3_simulated(platform.clone(), spec, Variant::New, *params, true).time,
            120,
        );
        let new = fft3_simulated(platform.clone(), spec, Variant::New, tuned.best, false).time;
        let fftw = fft3_simulated(platform.clone(), spec, Variant::Fftw, tuned.best, false).time;
        assert!(
            new < fftw,
            "{plat} p={p} N={n}: NEW {new:.3} vs FFTW {fftw:.3}"
        );
    }
}

#[test]
fn tuning_never_loses_to_the_seed() {
    let spec = ProblemSpec::cube(256, 16);
    let seed_time = fft3_simulated(
        umd_cluster(),
        spec,
        Variant::New,
        TuningParams::seed(&spec),
        true,
    )
    .time;
    let tuned = tune_new(
        &spec,
        |params| fft3_simulated(umd_cluster(), spec, Variant::New, *params, true).time,
        160,
    );
    assert!(tuned.best_value <= seed_time + 1e-12);
}

#[test]
fn new_overlaps_more_than_th() {
    // Figure 8's central claim, as an invariant over several settings.
    for (p, n) in [(16usize, 256usize), (32, 384)] {
        let spec = ProblemSpec::cube(n, p);
        let params = TuningParams::seed(&spec);
        let new = fft3_simulated(umd_cluster(), spec, Variant::New, params, false);
        let th = th_simulated(umd_cluster(), spec, ThParams::seed(&spec), false);
        assert!(
            new.steps.wait < th.steps.wait,
            "p={p} N={n}: NEW wait {:.3} must be < TH wait {:.3}",
            new.steps.wait,
            th.steps.wait
        );
    }
}

#[test]
fn breakdown_sums_are_consistent_with_elapsed() {
    let spec = ProblemSpec::cube(256, 16);
    let params = TuningParams::seed(&spec);
    let rep = fft3_simulated(hopper(), spec, Variant::New, params, false);
    for stats in &rep.per_rank {
        let sum = stats.steps.total();
        // A rank is always doing exactly one accounted thing, so the busy
        // sum must match elapsed up to rounding.
        assert!(
            (sum - stats.elapsed).abs() < 1e-6 + 0.01 * stats.elapsed,
            "sum {sum:.4} vs elapsed {:.4}",
            stats.elapsed
        );
    }
}

#[test]
fn more_ranks_reduce_time_for_fixed_problem() {
    let n = 512;
    let t16 = fft3_simulated(
        hopper(),
        ProblemSpec::cube(n, 16),
        Variant::New,
        TuningParams::seed(&ProblemSpec::cube(n, 16)),
        false,
    )
    .time;
    let t32 = fft3_simulated(
        hopper(),
        ProblemSpec::cube(n, 32),
        Variant::New,
        TuningParams::seed(&ProblemSpec::cube(n, 32)),
        false,
    )
    .time;
    assert!(
        t32 < t16,
        "strong scaling must hold at this size: {t32:.3} vs {t16:.3}"
    );
}

#[test]
fn window_zero_means_no_test_calls() {
    let spec = ProblemSpec::cube(128, 8);
    let params = TuningParams::seed(&spec).without_overlap();
    let rep = fft3_simulated(umd_cluster(), spec, Variant::New, params, false);
    for stats in &rep.per_rank {
        assert_eq!(stats.tests, 0, "NEW-0 must not poll");
    }
    assert_eq!(rep.steps.test, 0.0);
}

#[test]
fn th_tuning_explores_a_smaller_space() {
    let spec = ProblemSpec::cube(256, 16);
    let new = tune_new(
        &spec,
        |params| fft3_simulated(umd_cluster(), spec, Variant::New, *params, true).time,
        160,
    );
    let th = tune_th(
        &spec,
        |params| th_simulated(umd_cluster(), spec, *params, true).time,
        160,
    );
    assert!(
        th.executed < new.executed,
        "3-dim TH ({}) must execute fewer configs than 10-dim NEW ({})",
        th.executed,
        new.executed
    );
}

#[test]
fn cross_platform_configs_are_suboptimal() {
    // Figure 9 as an invariant: tune on Hopper, run on UMD, compare with
    // native UMD tuning.
    let spec = ProblemSpec::cube(256, 16);
    let umd_tuned = tune_new(
        &spec,
        |params| fft3_simulated(umd_cluster(), spec, Variant::New, *params, true).time,
        160,
    );
    let hop_tuned = tune_new(
        &spec,
        |params| fft3_simulated(hopper(), spec, Variant::New, *params, true).time,
        160,
    );
    let native = fft3_simulated(umd_cluster(), spec, Variant::New, umd_tuned.best, false).time;
    let cross = fft3_simulated(umd_cluster(), spec, Variant::New, hop_tuned.best, false).time;
    assert!(
        native <= cross * 1.001,
        "natively tuned {native:.4} must not lose to cross-tuned {cross:.4}"
    );
}

#[test]
fn determinism_across_repetitions() {
    let spec = ProblemSpec::cube(384, 32);
    let params = TuningParams::seed(&spec);
    let a = fft3_simulated(hopper(), spec, Variant::New, params, false);
    let b = fft3_simulated(hopper(), spec, Variant::New, params, false);
    assert_eq!(a.time, b.time);
    for (x, y) in a.per_rank.iter().zip(&b.per_rank) {
        assert_eq!(x.elapsed, y.elapsed);
        assert_eq!(x.tests, y.tests);
    }
}
