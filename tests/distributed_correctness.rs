//! Cross-crate integration: every distributed variant, on real data over
//! the thread runtime, must match the serial reference transform — across
//! problem shapes, divisibility, directions, window sizes, and planner
//! rigors.

use cfft::planner::Rigor;
use cfft::Direction;
use fft3d::real_env::{compare_with_serial, fft3_dist, local_test_slab};
use fft3d::serial::{fft3_serial, full_test_array};
use fft3d::{ProblemSpec, TuningParams, Variant};
use std::sync::Arc;

fn reference(spec: &ProblemSpec, dir: Direction) -> Arc<Vec<cfft::Complex64>> {
    let mut r = full_test_array(spec.nx, spec.ny, spec.nz);
    fft3_serial(&mut r, spec.nx, spec.ny, spec.nz, dir);
    Arc::new(r)
}

fn check(spec: ProblemSpec, variant: Variant, params: TuningParams, dir: Direction) {
    let r = reference(&spec, dir);
    let errs = mpisim::run(spec.p, move |comm| {
        let input = local_test_slab(&spec, comm.rank());
        let out = fft3_dist(&comm, spec, variant, params, dir, Rigor::Estimate, &input);
        compare_with_serial(&spec, comm.rank(), &out, &r)
    });
    let tol = 1e-9 * spec.len() as f64;
    for (rank, e) in errs.iter().enumerate() {
        assert!(
            *e < tol,
            "rank {rank}: err {e:.3e} for {spec:?} {variant:?} {dir:?} {params:?}"
        );
    }
}

#[test]
fn all_variants_agree_on_a_cube() {
    let spec = ProblemSpec::cube(24, 4);
    let params = TuningParams::seed(&spec);
    for variant in [Variant::New, Variant::Th, Variant::Fftw] {
        check(spec, variant, params, Direction::Forward);
    }
}

#[test]
fn window_sizes_sweep() {
    let spec = ProblemSpec::cube(32, 4);
    for w in [1usize, 2, 3, 4] {
        let params = TuningParams {
            w,
            t: 8,
            ..TuningParams::seed(&spec)
        };
        check(spec, Variant::New, params, Direction::Forward);
    }
}

#[test]
fn tile_sizes_sweep_including_non_dividing() {
    let spec = ProblemSpec::cube(20, 2);
    for t in [1usize, 3, 7, 10, 20] {
        let params = TuningParams {
            t,
            w: 2.min(spec.nz.div_ceil(t)),
            pz: t.min(2),
            uz: t.min(2),
            ..TuningParams::seed(&spec)
        };
        check(spec, Variant::New, params, Direction::Forward);
    }
}

#[test]
fn subtile_shapes_sweep() {
    let spec = ProblemSpec::cube(16, 2);
    for (px, pz, uy, uz) in [(1, 1, 1, 1), (8, 4, 8, 4), (3, 2, 5, 3), (8, 8, 8, 8)] {
        let params = TuningParams {
            px,
            pz: pz.min(4),
            uy,
            uz: uz.min(4),
            t: 4,
            w: 2,
            fy: 3,
            fp: 2,
            fu: 2,
            fx: 3,
            threads: 1,
        };
        check(spec, Variant::New, params, Direction::Forward);
    }
}

#[test]
fn rectangular_boxes() {
    for (nx, ny, nz) in [(8, 12, 16), (16, 8, 12), (12, 16, 8), (5, 6, 7)] {
        let spec = ProblemSpec { nx, ny, nz, p: 2 };
        let params = TuningParams {
            t: (nz / 3).max(1),
            w: 2,
            px: 2,
            pz: 1,
            uy: 2,
            uz: 1,
            fy: 2,
            fp: 2,
            fu: 2,
            fx: 2,
            threads: 1,
        };
        check(spec, Variant::New, params, Direction::Forward);
    }
}

#[test]
fn non_divisible_process_counts() {
    // Nx mod p ≠ 0, Ny mod p ≠ 0 — the alltoallv path.
    for p in [3usize, 5, 7] {
        let spec = ProblemSpec {
            nx: 16,
            ny: 17,
            nz: 12,
            p,
        };
        let params = TuningParams {
            t: 4,
            w: 2,
            px: 1,
            pz: 2,
            uy: 1,
            uz: 2,
            fy: 1,
            fp: 1,
            fu: 1,
            fx: 1,
            threads: 1,
        };
        check(spec, Variant::New, params, Direction::Forward);
    }
}

#[test]
fn more_ranks_than_planes() {
    // Some ranks own empty slabs.
    let spec = ProblemSpec {
        nx: 3,
        ny: 5,
        nz: 8,
        p: 5,
    };
    let params = TuningParams {
        t: 4,
        w: 1,
        px: 1,
        pz: 1,
        uy: 1,
        uz: 1,
        fy: 1,
        fp: 1,
        fu: 1,
        fx: 1,
        threads: 1,
    };
    check(spec, Variant::New, params, Direction::Forward);
}

#[test]
fn backward_of_forward_is_identity_scaled() {
    let spec = ProblemSpec::cube(16, 4);
    let params = TuningParams::seed(&spec);
    let original = Arc::new(full_test_array(spec.nx, spec.ny, spec.nz));

    let errs = mpisim::run(spec.p, {
        let original = original.clone();
        move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            let fwd = fft3_dist(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &input,
            );
            let full_spectrum = fft3d_repro::gather_full(&comm, &spec, &fwd);
            let spec_slab = fft3d_repro::extract_slab(&full_spectrum, &spec, comm.rank());
            let bwd = fft3_dist(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Backward,
                Rigor::Estimate,
                &spec_slab,
            );
            let full = fft3d_repro::gather_full(&comm, &spec, &bwd);
            let scale = 1.0 / spec.len() as f64;
            original
                .iter()
                .zip(&full)
                .map(|(a, b)| (*a - b.scale(scale)).abs())
                .fold(0.0f64, f64::max)
        }
    });
    for e in errs {
        assert!(e < 1e-9, "round trip error {e:.3e}");
    }
}

#[test]
fn planner_rigor_does_not_change_results() {
    let spec = ProblemSpec::cube(12, 2);
    let params = TuningParams::seed(&spec);
    let r = reference(&spec, Direction::Forward);
    for rigor in [Rigor::Estimate, Rigor::Measure] {
        let r = r.clone();
        let errs = mpisim::run(spec.p, move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            let out = fft3_dist(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                rigor,
                &input,
            );
            compare_with_serial(&spec, comm.rank(), &out, &r)
        });
        for e in errs {
            assert!(e < 1e-8);
        }
    }
}

#[test]
fn awkward_prime_extents() {
    // Bluestein path inside the distributed pipeline (37 is prime > 31).
    let spec = ProblemSpec {
        nx: 37,
        ny: 8,
        nz: 8,
        p: 2,
    };
    let params = TuningParams {
        t: 4,
        w: 2,
        px: 4,
        pz: 2,
        uy: 2,
        uz: 2,
        fy: 2,
        fp: 2,
        fu: 2,
        fx: 2,
        threads: 1,
    };
    check(spec, Variant::New, params, Direction::Forward);
}
