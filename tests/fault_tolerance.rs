//! Deterministic fault-injection scenarios across both backends, driven by
//! a seeded [`FaultPlan`] (override the seed with `FFT3D_FAULT_SEED`).
//!
//! These are the acceptance tests for the degradation ladder:
//! * a straggler-induced stall is detected by the watchdog and recovered —
//!   the spectrum still matches the serial reference;
//! * transiently dropped round sends are retransmitted to completion;
//! * a hard stall (blackholed rank) surfaces as [`Error::Stalled`] on every
//!   rank within the watchdog budget instead of hanging, and the cancelled
//!   collectives leak no staged messages;
//! * infeasible parameters come back as typed errors from the `try_` entry
//!   points on both backends;
//! * the simulated backend's fault presets slow the modeled run monotonically.

use cfft::planner::Rigor;
use cfft::{Complex64, Direction};
use fft3d::real_env::{compare_with_serial, local_test_slab};
use fft3d::serial::{fft3_serial, full_test_array};
use fft3d::sim_env::fft3_simulated;
use fft3d::{
    run_recoverable, try_fft3_dist, try_fft3_dist_traced, try_fft3_simulated, Error, EventKind,
    FftSession, MemRecorder, NoopRecorder, ProblemSpec, RecoverConfig, ReplicaSource, Resilience,
    SlabSource, TuningParams, Variant,
};
use mpisim::FaultPlan;
use simnet::model::umd_cluster;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Seed for every fault plan in this file; CI sweeps a small matrix of
/// values to shake out draw-dependent assumptions.
fn fault_seed() -> u64 {
    std::env::var("FFT3D_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn serial_reference(spec: &ProblemSpec) -> Arc<Vec<cfft::Complex64>> {
    let mut reference = full_test_array(spec.nx, spec.ny, spec.nz);
    fft3_serial(
        &mut reference,
        spec.nx,
        spec.ny,
        spec.nz,
        Direction::Forward,
    );
    Arc::new(reference)
}

#[test]
fn straggler_stall_recovers_and_matches_serial() {
    let spec = ProblemSpec::cube(12, 4);
    let params = TuningParams::seed(&spec);
    let reference = serial_reference(&spec);

    // Rank 1 delays every round send by 60 ms — far past the 15 ms
    // watchdog, so peers' waits must trip, climb the ladder, and recover.
    let plan = FaultPlan::seeded(fault_seed()).with_straggler(1, 30.0);
    let res = Resilience {
        stall_timeout: Some(Duration::from_millis(15)),
        poll_boost: 4,
        max_strikes: 8,
    };
    let results = mpisim::run_with_faults(spec.p, plan, move |comm| {
        let input = local_test_slab(&spec, comm.rank());
        let out = try_fft3_dist_traced(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &input,
            &res,
            &mut NoopRecorder,
        )
        .unwrap_or_else(|e| panic!("rank {} failed to recover: {e}", comm.rank()));
        let err = compare_with_serial(&spec, comm.rank(), &out, &reference);
        (err, out.recovery)
    });

    let tol = 1e-9 * spec.len() as f64;
    let mut stalls = 0;
    for (rank, (err, recovery)) in results.iter().enumerate() {
        assert!(
            *err < tol,
            "rank {rank}: spectrum error {err} after recovery"
        );
        stalls += recovery.stalls_detected;
    }
    assert!(
        stalls > 0,
        "a 60 ms send delay against a 15 ms watchdog must trip at least once"
    );
}

#[test]
fn transient_drops_retransmit_and_match_serial() {
    let spec = ProblemSpec::cube(12, 4);
    let params = TuningParams::seed(&spec);
    let reference = serial_reference(&spec);

    // A quarter of round sends drop (bounded retransmit, transient): the
    // collective must retransmit its way to an exact spectrum.
    let plan = FaultPlan::seeded(fault_seed()).with_drops(0.25, 8);
    let res = Resilience::with_timeout(Duration::from_millis(500));
    let results = mpisim::run_with_faults(spec.p, plan, move |comm| {
        let input = local_test_slab(&spec, comm.rank());
        let out = try_fft3_dist_traced(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &input,
            &res,
            &mut NoopRecorder,
        )
        .unwrap_or_else(|e| panic!("rank {} failed: {e}", comm.rank()));
        compare_with_serial(&spec, comm.rank(), &out, &reference)
    });

    let tol = 1e-9 * spec.len() as f64;
    for (rank, err) in results.iter().enumerate() {
        assert!(*err < tol, "rank {rank}: spectrum error {err}");
    }
}

#[test]
fn blackholed_rank_surfaces_stalled_not_a_hang() {
    let spec = ProblemSpec::cube(12, 4);
    let params = TuningParams::seed(&spec);

    // Rank 1's sends vanish from round 1 on. Under manual progression the
    // starvation cascades — a rank stuck on its missing round withholds its
    // own later-round sends — so EVERY rank must surface a typed error
    // (Stalled at its immediate missing peer), bounded by the strike
    // budget, with all in-flight collectives cancelled.
    let plan = FaultPlan::seeded(fault_seed()).with_blackhole(1, 0);
    let res = Resilience {
        stall_timeout: Some(Duration::from_millis(100)),
        poll_boost: 4,
        max_strikes: 2,
    };
    let started = Instant::now();
    let results = mpisim::run_with_faults(spec.p, plan, move |comm| {
        let input = local_test_slab(&spec, comm.rank());
        let err = try_fft3_dist_traced(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &input,
            &res,
            &mut NoopRecorder,
        )
        .map(|_| ())
        .expect_err("a blackholed peer cannot produce a complete spectrum");
        // Once every rank has erred (and cancelled), the world must hold no
        // staged round blocks — the drop-mid-flight leak regression.
        comm.barrier();
        (err, comm.pending_messages())
    });
    let elapsed = started.elapsed();

    for (rank, (err, pending)) in results.iter().enumerate() {
        assert!(
            matches!(err, Error::Stalled { .. }),
            "rank {rank}: expected Stalled, got {err}"
        );
        assert_eq!(*pending, 0, "rank {rank}: staged messages leaked");
    }
    // Watchdog bound: each wait burns at most (strikes + 1) watchdog
    // periods plus park slack; well under this generous ceiling. A hang
    // would blow straight past it.
    assert!(
        elapsed < Duration::from_secs(20),
        "stall detection took {elapsed:?}"
    );
}

#[test]
fn fatal_drops_surface_typed_errors_on_every_rank() {
    let spec = ProblemSpec::cube(12, 4);
    let params = TuningParams::seed(&spec);

    // Heavy fatal drops: a rank whose own send dies past the retransmit
    // budget reports Dropped; a rank starved by a dead peer reports
    // Stalled. Nobody hangs, nobody panics.
    let plan = FaultPlan::seeded(fault_seed()).with_fatal_drops(0.9, 1);
    let res = Resilience {
        stall_timeout: Some(Duration::from_millis(150)),
        poll_boost: 4,
        max_strikes: 2,
    };
    let results = mpisim::run_with_faults(spec.p, plan, move |comm| {
        let input = local_test_slab(&spec, comm.rank());
        try_fft3_dist_traced(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &input,
            &res,
            &mut NoopRecorder,
        )
        .map(|_| ())
        .expect_err("0.9 fatal drop probability cannot complete")
    });

    for (rank, err) in results.iter().enumerate() {
        assert!(
            matches!(err, Error::Dropped { .. } | Error::Stalled { .. }),
            "rank {rank}: unexpected error {err}"
        );
    }
    assert!(
        results.iter().any(|e| matches!(e, Error::Dropped { .. })),
        "at least one rank's own send must exhaust the retransmit budget: {results:?}"
    );
}

#[test]
fn infeasible_parameters_surface_typed_errors_on_both_backends() {
    // Real backend.
    let spec = ProblemSpec::cube(8, 2);
    let mut params = TuningParams::seed(&spec).without_overlap();
    params.px = 0;
    let errs = mpisim::run(spec.p, move |comm| {
        let input = local_test_slab(&spec, comm.rank());
        try_fft3_dist(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &input,
        )
        .map(|_| ())
        .unwrap_err()
    });
    for err in errs {
        assert!(matches!(err, Error::InfeasibleParams(_)), "{err}");
    }

    // Simulated backend.
    let spec = ProblemSpec::cube(64, 8);
    let mut params = TuningParams::seed(&spec);
    params.w = spec.nz; // window larger than the tile count
    let err = try_fft3_simulated(umd_cluster(), spec, Variant::New, params, false)
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, Error::InfeasibleParams(_)), "{err}");
}

#[test]
fn simulated_fault_presets_slow_the_modeled_run() {
    let spec = ProblemSpec::cube(128, 8);
    let params = TuningParams::seed(&spec);
    let clean = fft3_simulated(umd_cluster(), spec, Variant::New, params, false).time;

    let mild = fft3_simulated(
        umd_cluster().with_straggler(3, 1.0),
        spec,
        Variant::New,
        params,
        false,
    )
    .time;
    let severe = fft3_simulated(
        umd_cluster().with_straggler(3, 4.0),
        spec,
        Variant::New,
        params,
        false,
    )
    .time;
    assert!(mild > clean, "straggler must cost time: {mild} vs {clean}");
    assert!(
        severe > mild,
        "severity must be monotone: {severe} vs {mild}"
    );

    let degraded = fft3_simulated(
        umd_cluster().with_degraded_links(2.0),
        spec,
        Variant::New,
        params,
        false,
    )
    .time;
    assert!(
        degraded > clean,
        "halved link bandwidth must cost time: {degraded} vs {clean}"
    );
}

#[test]
fn crash_surfaces_rank_failed_naming_the_dead_rank() {
    let spec = ProblemSpec::cube(12, 4);
    let params = TuningParams::seed(&spec);

    // World rank 2 dies at the first tile boundary. Every survivor's
    // exchange needs the dead rank's blocks, so each must surface
    // RankFailed naming rank 2 — not Stalled, not a hang.
    let plan = FaultPlan::seeded(fault_seed()).with_rank_crash(2, 0);
    let res = Resilience::with_timeout(Duration::from_millis(100));
    let out = mpisim::run_crashable(spec.p, plan, move |comm| {
        let input = local_test_slab(&spec, comm.rank());
        try_fft3_dist_traced(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &input,
            &res,
            &mut NoopRecorder,
        )
        .map(|_| ())
        .expect_err("a dead peer cannot produce a complete spectrum")
    });

    assert!(out[2].is_none(), "the dead rank must not return");
    for (rank, err) in out.iter().enumerate() {
        if rank == 2 {
            continue;
        }
        match err.expect("survivors return a typed error") {
            Error::RankFailed { rank: dead, .. } => {
                assert_eq!(dead, 2, "rank {rank} must name the dead rank")
            }
            other => panic!("rank {rank}: expected RankFailed, got {other}"),
        }
    }
}

#[test]
fn cancel_is_safe_after_a_rank_failure() {
    // Regression for the post-abort/post-failure cancel race: cancelling a
    // collective whose member died mid-exchange must purge this rank's
    // staged rounds safely (and skip the purge entirely once the world is
    // aborted) instead of racing mailbox teardown. Sticky error semantics:
    // re-testing the failed request keeps returning the same typed error.
    let plan = FaultPlan::seeded(fault_seed()).with_rank_crash(0, 0);
    let out = mpisim::run_crashable(3, plan, move |comm| {
        if comm.rank() == 0 {
            comm.crash_point(0);
        }
        let send: Vec<i64> = vec![comm.rank() as i64; comm.size()];
        let mut req = comm.ialltoall(&send, 1, vec![0i64; comm.size()]);
        let err = req
            .wait_timeout(&comm, Duration::from_secs(5))
            .expect_err("a collective over a dead member cannot complete");
        assert!(
            matches!(err, mpisim::CollError::RankFailed(0)),
            "expected RankFailed(0), got {err}"
        );
        // The failure is sticky: polling again is safe and repeats it.
        let again = req.try_test(&comm).expect_err("failure must be sticky");
        assert_eq!(err, again);
        req.cancel(&comm);
        true
    });
    assert!(out[0].is_none());
    assert_eq!(out[1], Some(true));
    assert_eq!(out[2], Some(true));
}

#[test]
fn session_repeats_stay_exact_with_a_straggler_between_executions() {
    // Persistent plans must not bake timing assumptions into the schedule:
    // the same session executes three times while rank 1 delays every round
    // send past the watchdog, so stalls trip *between and during* reuses of
    // the same plans. Every execution must still match the serial reference.
    let spec = ProblemSpec::cube(12, 4);
    let params = TuningParams::seed(&spec);
    let reference = serial_reference(&spec);

    let plan = FaultPlan::seeded(fault_seed()).with_straggler(1, 30.0);
    let res = Resilience {
        stall_timeout: Some(Duration::from_millis(15)),
        poll_boost: 4,
        max_strikes: 8,
    };
    let results = mpisim::run_with_faults(spec.p, plan, move |comm| {
        let input = local_test_slab(&spec, comm.rank());
        let mut session = FftSession::new(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
        );
        let mut errs = Vec::new();
        let mut stalls = 0u32;
        for exec in 0..3 {
            let out = session
                .execute_traced(&input, &res, &mut NoopRecorder)
                .unwrap_or_else(|e| {
                    panic!("rank {} exec {exec} failed to recover: {e}", comm.rank())
                });
            errs.push(compare_with_serial(&spec, comm.rank(), &out, &reference));
            stalls += out.recovery.stalls_detected;
        }
        session.free();
        (errs, stalls)
    });

    let tol = 1e-9 * spec.len() as f64;
    let mut stalls = 0;
    for (rank, (errs, s)) in results.iter().enumerate() {
        for (exec, err) in errs.iter().enumerate() {
            assert!(*err < tol, "rank {rank} exec {exec}: spectrum error {err}");
        }
        stalls += s;
    }
    assert!(
        stalls > 0,
        "a 60 ms send delay against a 15 ms watchdog must trip at least once"
    );
}

#[test]
fn persistent_plan_surfaces_rank_failed_and_outlives_a_shrink() {
    // ULFM discipline for persistent collectives: an execution over a dead
    // member surfaces RankFailed naming the *world* rank; the plan can then
    // be freed (purging the failed execution), the communicator shrunk, and
    // a fresh plan on the survivor communicator runs to completion —
    // setup-once/execute-many across the recovery boundary.
    let plan = FaultPlan::seeded(fault_seed()).with_rank_crash(2, 0);
    let out = mpisim::run_crashable(4, plan, move |comm| {
        if comm.rank() == 2 {
            comm.crash_point(0);
        }
        let me = comm.rank() as i64;
        let mut plan = comm.alltoall_init(1, vec![0i64; 4]);
        plan.start(&comm, &[me; 4]);
        let err = plan
            .wait_timeout(&comm, Duration::from_secs(5))
            .expect_err("an execution over a dead member cannot complete");
        assert!(
            matches!(err, mpisim::CollError::RankFailed(2)),
            "expected RankFailed(2), got {err}"
        );
        // Sticky per execution, exactly like the ad-hoc path.
        let again = plan.try_test(&comm).expect_err("failure must be sticky");
        assert_eq!(err, again);
        plan.free(&comm);

        let small = comm.shrink();
        let mut plan = small.alltoall_init(1, vec![0i64; small.size()]);
        for _ in 0..3 {
            plan.start(&small, &vec![me; small.size()]);
            plan.wait(&small);
        }
        assert_eq!(plan.executions(), 3);
        let got = plan.recv().to_vec();
        plan.free(&small);
        got
    });

    assert!(out[2].is_none(), "the dead rank must not return");
    for (rank, got) in out.iter().enumerate() {
        if rank == 2 {
            continue;
        }
        // Survivors are world ranks {0, 1, 3} in order; each contributes
        // its world id, so every survivor receives exactly that list.
        assert_eq!(
            got.as_deref(),
            Some(&[0i64, 1, 3][..]),
            "rank {rank}: wrong exchange on the shrunk communicator"
        );
    }
}

#[test]
fn rank_crash_recovers_elastically_and_matches_serial() {
    let spec = ProblemSpec::cube(12, 4);
    let params = TuningParams::seed(&spec);
    let tiles = params.tiles(&spec);
    let reference = serial_reference(&spec);
    let full = Arc::new(full_test_array(spec.nx, spec.ny, spec.nz));

    // Crash at the first, middle and last tile boundary: wherever the
    // death lands, the survivors must agree, shrink to p−1, re-decompose,
    // recompute from the replica source, and match the serial reference.
    for at_tile in [0, tiles / 2, tiles.saturating_sub(1)] {
        let run = || {
            let reference = Arc::clone(&reference);
            let full = Arc::clone(&full);
            let plan = FaultPlan::seeded(fault_seed()).with_rank_crash(1, at_tile);
            mpisim::run_crashable(spec.p, plan, move |comm| {
                let source = ReplicaSource::new(Arc::clone(&full));
                let mut rec = MemRecorder::default();
                let outcome = run_recoverable(
                    &comm,
                    spec,
                    Variant::New,
                    params,
                    Direction::Forward,
                    Rigor::Estimate,
                    &source,
                    &RecoverConfig::default(),
                    &mut rec,
                )
                .unwrap_or_else(|e| panic!("world rank {} failed to recover: {e}", comm.rank()));
                assert_eq!(outcome.lost, vec![1], "tile {at_tile}: wrong failure set");
                assert!(outcome.attempts >= 2, "tile {at_tile}: recovery must retry");
                assert_eq!(
                    outcome.spec.p,
                    spec.p - 1,
                    "tile {at_tile}: world must shrink"
                );
                assert!(
                    rec.events
                        .iter()
                        .any(|ev| matches!(ev.kind, EventKind::Shrink { from: 4, to: 3 })),
                    "tile {at_tile}: trace must record the shrink"
                );
                assert!(
                    rec.events
                        .iter()
                        .any(|ev| matches!(ev.kind, EventKind::RankLost { rank: 1 })),
                    "tile {at_tile}: trace must record the lost rank"
                );
                let err =
                    compare_with_serial(&outcome.spec, outcome.rank, &outcome.output, &reference);
                (err, outcome.output.data)
            })
        };
        let a = run();
        assert!(a[1].is_none(), "tile {at_tile}: dead rank must not return");
        let tol = 1e-9 * spec.len() as f64;
        for (rank, r) in a.iter().enumerate() {
            if let Some((err, _)) = r {
                assert!(
                    *err < tol,
                    "tile {at_tile} rank {rank}: spectrum error {err}"
                );
            }
        }
        // Replay determinism: the same (fault seed, schedule) reproduces
        // the recovery bit-for-bit on every survivor.
        let b = run();
        for (rank, (ra, rb)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(
                ra.as_ref().map(|(_, d)| d),
                rb.as_ref().map(|(_, d)| d),
                "tile {at_tile} rank {rank}: recovered spectra differ between identical runs"
            );
        }
    }
}

#[test]
fn crash_with_no_recoverable_input_returns_unrecoverable() {
    // A source that only knows the original decomposition: once the world
    // shrinks, every slab request comes back empty — modelling input that
    // lived only in the dead rank's memory. All survivors must converge on
    // the typed Unrecoverable error; nobody hangs, nobody panics.
    struct OriginalOnly {
        full: Arc<Vec<Complex64>>,
        p0: usize,
    }
    impl SlabSource for OriginalOnly {
        fn slab(&self, spec: &ProblemSpec, rank: usize) -> Option<Vec<Complex64>> {
            if spec.p != self.p0 {
                return None;
            }
            ReplicaSource::new(Arc::clone(&self.full)).slab(spec, rank)
        }
    }

    let spec = ProblemSpec::cube(12, 4);
    let params = TuningParams::seed(&spec);
    let full = Arc::new(full_test_array(spec.nx, spec.ny, spec.nz));
    let plan = FaultPlan::seeded(fault_seed()).with_rank_crash(3, 1);
    let out = mpisim::run_crashable(spec.p, plan, move |comm| {
        let source = OriginalOnly {
            full: Arc::clone(&full),
            p0: spec.p,
        };
        run_recoverable(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &source,
            &RecoverConfig::default(),
            &mut NoopRecorder,
        )
        .map(|_| ())
        .expect_err("recovery without an input source must fail")
    });
    assert!(out[3].is_none());
    for (rank, err) in out.iter().enumerate() {
        if rank == 3 {
            continue;
        }
        assert!(
            matches!(err, Some(Error::Unrecoverable(_))),
            "rank {rank}: expected Unrecoverable, got {err:?}"
        );
    }
}

#[test]
fn faulted_runs_are_deterministic_for_a_fixed_seed() {
    let spec = ProblemSpec::cube(12, 4);
    let params = TuningParams::seed(&spec);
    let reference = serial_reference(&spec);

    // Two runs under the same seeded drop plan produce identical spectra —
    // the retransmit path is a pure function of the plan, not of timing.
    let run = |seed: u64| {
        let reference = Arc::clone(&reference);
        let plan = FaultPlan::seeded(seed).with_drops(0.3, 8);
        mpisim::run_with_faults(spec.p, plan, move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            let out = try_fft3_dist_traced(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &input,
                &Resilience::with_timeout(Duration::from_millis(500)),
                &mut NoopRecorder,
            )
            .unwrap_or_else(|e| panic!("rank {} failed: {e}", comm.rank()));
            let err = compare_with_serial(&spec, comm.rank(), &out, &reference);
            (err, out.data)
        })
    };
    let a = run(fault_seed());
    let b = run(fault_seed());
    let tol = 1e-9 * spec.len() as f64;
    for (rank, ((ea, da), (eb, db))) in a.iter().zip(b.iter()).enumerate() {
        assert!(*ea < tol && *eb < tol, "rank {rank}: {ea} / {eb}");
        assert_eq!(da, db, "rank {rank}: spectra differ between identical runs");
    }
}
