//! Deterministic fault-injection scenarios across both backends, driven by
//! a seeded [`FaultPlan`] (override the seed with `FFT3D_FAULT_SEED`).
//!
//! These are the acceptance tests for the degradation ladder:
//! * a straggler-induced stall is detected by the watchdog and recovered —
//!   the spectrum still matches the serial reference;
//! * transiently dropped round sends are retransmitted to completion;
//! * a hard stall (blackholed rank) surfaces as [`Error::Stalled`] on every
//!   rank within the watchdog budget instead of hanging, and the cancelled
//!   collectives leak no staged messages;
//! * infeasible parameters come back as typed errors from the `try_` entry
//!   points on both backends;
//! * the simulated backend's fault presets slow the modeled run monotonically.

use cfft::planner::Rigor;
use cfft::Direction;
use fft3d::real_env::{compare_with_serial, local_test_slab};
use fft3d::serial::{fft3_serial, full_test_array};
use fft3d::sim_env::fft3_simulated;
use fft3d::{
    try_fft3_dist, try_fft3_dist_traced, try_fft3_simulated, Error, NoopRecorder, ProblemSpec,
    Resilience, TuningParams, Variant,
};
use mpisim::FaultPlan;
use simnet::model::umd_cluster;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Seed for every fault plan in this file; CI sweeps a small matrix of
/// values to shake out draw-dependent assumptions.
fn fault_seed() -> u64 {
    std::env::var("FFT3D_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn serial_reference(spec: &ProblemSpec) -> Arc<Vec<cfft::Complex64>> {
    let mut reference = full_test_array(spec.nx, spec.ny, spec.nz);
    fft3_serial(
        &mut reference,
        spec.nx,
        spec.ny,
        spec.nz,
        Direction::Forward,
    );
    Arc::new(reference)
}

#[test]
fn straggler_stall_recovers_and_matches_serial() {
    let spec = ProblemSpec::cube(12, 4);
    let params = TuningParams::seed(&spec);
    let reference = serial_reference(&spec);

    // Rank 1 delays every round send by 60 ms — far past the 15 ms
    // watchdog, so peers' waits must trip, climb the ladder, and recover.
    let plan = FaultPlan::seeded(fault_seed()).with_straggler(1, 30.0);
    let res = Resilience {
        stall_timeout: Some(Duration::from_millis(15)),
        poll_boost: 4,
        max_strikes: 8,
    };
    let results = mpisim::run_with_faults(spec.p, plan, move |comm| {
        let input = local_test_slab(&spec, comm.rank());
        let out = try_fft3_dist_traced(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &input,
            &res,
            &mut NoopRecorder,
        )
        .unwrap_or_else(|e| panic!("rank {} failed to recover: {e}", comm.rank()));
        let err = compare_with_serial(&spec, comm.rank(), &out, &reference);
        (err, out.recovery)
    });

    let tol = 1e-9 * spec.len() as f64;
    let mut stalls = 0;
    for (rank, (err, recovery)) in results.iter().enumerate() {
        assert!(
            *err < tol,
            "rank {rank}: spectrum error {err} after recovery"
        );
        stalls += recovery.stalls_detected;
    }
    assert!(
        stalls > 0,
        "a 60 ms send delay against a 15 ms watchdog must trip at least once"
    );
}

#[test]
fn transient_drops_retransmit_and_match_serial() {
    let spec = ProblemSpec::cube(12, 4);
    let params = TuningParams::seed(&spec);
    let reference = serial_reference(&spec);

    // A quarter of round sends drop (bounded retransmit, transient): the
    // collective must retransmit its way to an exact spectrum.
    let plan = FaultPlan::seeded(fault_seed()).with_drops(0.25, 8);
    let res = Resilience::with_timeout(Duration::from_millis(500));
    let results = mpisim::run_with_faults(spec.p, plan, move |comm| {
        let input = local_test_slab(&spec, comm.rank());
        let out = try_fft3_dist_traced(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &input,
            &res,
            &mut NoopRecorder,
        )
        .unwrap_or_else(|e| panic!("rank {} failed: {e}", comm.rank()));
        compare_with_serial(&spec, comm.rank(), &out, &reference)
    });

    let tol = 1e-9 * spec.len() as f64;
    for (rank, err) in results.iter().enumerate() {
        assert!(*err < tol, "rank {rank}: spectrum error {err}");
    }
}

#[test]
fn blackholed_rank_surfaces_stalled_not_a_hang() {
    let spec = ProblemSpec::cube(12, 4);
    let params = TuningParams::seed(&spec);

    // Rank 1's sends vanish from round 1 on. Under manual progression the
    // starvation cascades — a rank stuck on its missing round withholds its
    // own later-round sends — so EVERY rank must surface a typed error
    // (Stalled at its immediate missing peer), bounded by the strike
    // budget, with all in-flight collectives cancelled.
    let plan = FaultPlan::seeded(fault_seed()).with_blackhole(1, 0);
    let res = Resilience {
        stall_timeout: Some(Duration::from_millis(100)),
        poll_boost: 4,
        max_strikes: 2,
    };
    let started = Instant::now();
    let results = mpisim::run_with_faults(spec.p, plan, move |comm| {
        let input = local_test_slab(&spec, comm.rank());
        let err = try_fft3_dist_traced(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &input,
            &res,
            &mut NoopRecorder,
        )
        .map(|_| ())
        .expect_err("a blackholed peer cannot produce a complete spectrum");
        // Once every rank has erred (and cancelled), the world must hold no
        // staged round blocks — the drop-mid-flight leak regression.
        comm.barrier();
        (err, comm.pending_messages())
    });
    let elapsed = started.elapsed();

    for (rank, (err, pending)) in results.iter().enumerate() {
        assert!(
            matches!(err, Error::Stalled { .. }),
            "rank {rank}: expected Stalled, got {err}"
        );
        assert_eq!(*pending, 0, "rank {rank}: staged messages leaked");
    }
    // Watchdog bound: each wait burns at most (strikes + 1) watchdog
    // periods plus park slack; well under this generous ceiling. A hang
    // would blow straight past it.
    assert!(
        elapsed < Duration::from_secs(20),
        "stall detection took {elapsed:?}"
    );
}

#[test]
fn fatal_drops_surface_typed_errors_on_every_rank() {
    let spec = ProblemSpec::cube(12, 4);
    let params = TuningParams::seed(&spec);

    // Heavy fatal drops: a rank whose own send dies past the retransmit
    // budget reports Dropped; a rank starved by a dead peer reports
    // Stalled. Nobody hangs, nobody panics.
    let plan = FaultPlan::seeded(fault_seed()).with_fatal_drops(0.9, 1);
    let res = Resilience {
        stall_timeout: Some(Duration::from_millis(150)),
        poll_boost: 4,
        max_strikes: 2,
    };
    let results = mpisim::run_with_faults(spec.p, plan, move |comm| {
        let input = local_test_slab(&spec, comm.rank());
        try_fft3_dist_traced(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &input,
            &res,
            &mut NoopRecorder,
        )
        .map(|_| ())
        .expect_err("0.9 fatal drop probability cannot complete")
    });

    for (rank, err) in results.iter().enumerate() {
        assert!(
            matches!(err, Error::Dropped { .. } | Error::Stalled { .. }),
            "rank {rank}: unexpected error {err}"
        );
    }
    assert!(
        results.iter().any(|e| matches!(e, Error::Dropped { .. })),
        "at least one rank's own send must exhaust the retransmit budget: {results:?}"
    );
}

#[test]
fn infeasible_parameters_surface_typed_errors_on_both_backends() {
    // Real backend.
    let spec = ProblemSpec::cube(8, 2);
    let mut params = TuningParams::seed(&spec).without_overlap();
    params.px = 0;
    let errs = mpisim::run(spec.p, move |comm| {
        let input = local_test_slab(&spec, comm.rank());
        try_fft3_dist(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &input,
        )
        .map(|_| ())
        .unwrap_err()
    });
    for err in errs {
        assert!(matches!(err, Error::InfeasibleParams(_)), "{err}");
    }

    // Simulated backend.
    let spec = ProblemSpec::cube(64, 8);
    let mut params = TuningParams::seed(&spec);
    params.w = spec.nz; // window larger than the tile count
    let err = try_fft3_simulated(umd_cluster(), spec, Variant::New, params, false)
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, Error::InfeasibleParams(_)), "{err}");
}

#[test]
fn simulated_fault_presets_slow_the_modeled_run() {
    let spec = ProblemSpec::cube(128, 8);
    let params = TuningParams::seed(&spec);
    let clean = fft3_simulated(umd_cluster(), spec, Variant::New, params, false).time;

    let mild = fft3_simulated(
        umd_cluster().with_straggler(3, 1.0),
        spec,
        Variant::New,
        params,
        false,
    )
    .time;
    let severe = fft3_simulated(
        umd_cluster().with_straggler(3, 4.0),
        spec,
        Variant::New,
        params,
        false,
    )
    .time;
    assert!(mild > clean, "straggler must cost time: {mild} vs {clean}");
    assert!(
        severe > mild,
        "severity must be monotone: {severe} vs {mild}"
    );

    let degraded = fft3_simulated(
        umd_cluster().with_degraded_links(2.0),
        spec,
        Variant::New,
        params,
        false,
    )
    .time;
    assert!(
        degraded > clean,
        "halved link bandwidth must cost time: {degraded} vs {clean}"
    );
}

#[test]
fn faulted_runs_are_deterministic_for_a_fixed_seed() {
    let spec = ProblemSpec::cube(12, 4);
    let params = TuningParams::seed(&spec);
    let reference = serial_reference(&spec);

    // Two runs under the same seeded drop plan produce identical spectra —
    // the retransmit path is a pure function of the plan, not of timing.
    let run = |seed: u64| {
        let reference = Arc::clone(&reference);
        let plan = FaultPlan::seeded(seed).with_drops(0.3, 8);
        mpisim::run_with_faults(spec.p, plan, move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            let out = try_fft3_dist_traced(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &input,
                &Resilience::with_timeout(Duration::from_millis(500)),
                &mut NoopRecorder,
            )
            .unwrap_or_else(|e| panic!("rank {} failed: {e}", comm.rank()));
            let err = compare_with_serial(&spec, comm.rank(), &out, &reference);
            (err, out.data)
        })
    };
    let a = run(fault_seed());
    let b = run(fault_seed());
    let tol = 1e-9 * spec.len() as f64;
    for (rank, ((ea, da), (eb, db))) in a.iter().zip(b.iter()).enumerate() {
        assert!(*ea < tol && *eb < tol, "rank {rank}: {ea} / {eb}");
        assert_eq!(da, db, "rank {rank}: spectra differ between identical runs");
    }
}
