//! Cross-crate integration for this PR's hot-path fixes: the process-wide
//! plan cache (repeat transforms must do zero planning work), the
//! intra-rank parallel kernels (bit-identical results at every thread
//! count), and the zero-extent guards on the fallible entry points.

use cfft::planner::Rigor;
use cfft::Direction;
use fft3d::pencil::{try_fft3_pencil, PencilGrid};
use fft3d::real_env::{fft3_dist, local_test_slab, try_fft3_dist};
use fft3d::{
    fft3_simulated, try_fft3_simulated, Error, FftSession, ProblemSpec, TuningParams, Variant,
};
use simnet::model::umd_cluster;
use std::time::Duration;

/// Satellite (a): after one transform of a geometry, every later identical
/// transform must draw all three plans from the process-wide cache —
/// observable as `RunOutput::planning == Duration::ZERO`, which the cache
/// returns only on a hit.
#[test]
fn second_identical_transform_does_zero_planning() {
    // A geometry no other test uses, so the first run exercises the warm-up
    // path here (the assertion below holds regardless: it only constrains
    // the *second* run).
    let spec = ProblemSpec {
        nx: 22,
        ny: 14,
        nz: 26,
        p: 2,
    };
    let params = TuningParams::seed(&spec);
    let run = || {
        mpisim::run(spec.p, move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            fft3_dist(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &input,
            )
            .planning
        })
    };
    run(); // warm (or re-warm) the cache
    for (rank, planning) in run().into_iter().enumerate() {
        assert_eq!(
            planning,
            Duration::ZERO,
            "rank {rank} replanned a cached geometry"
        );
    }
}

/// Tentpole: a persistent-plan session completes the zero-planning story.
/// The first execution pays one schedule setup per tile; every later
/// execution draws the FFT plans from the plan cache, the exchange
/// geometry from the transform-plan cache, and the all-to-all schedules
/// from the session's persistent plans — zero planning AND zero setups,
/// observable through `RunOutput`'s counters, with bit-identical output.
#[test]
fn session_executions_after_the_first_do_zero_setup() {
    let spec = ProblemSpec {
        nx: 18,
        ny: 12,
        nz: 20,
        p: 3,
    };
    let params = TuningParams::seed(&spec);
    let tiles = params.tiles(&spec) as u64;
    let reps = 4;
    let results = mpisim::run(spec.p, move |comm| {
        let input = local_test_slab(&spec, comm.rank());
        let one_shot = fft3_dist(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &input,
        );
        let mut session = FftSession::new(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
        );
        let runs: Vec<_> = (0..reps)
            .map(|_| session.execute(&input).unwrap())
            .collect();
        let bits = |out: &fft3d::RunOutput| -> Vec<(u64, u64)> {
            out.data
                .iter()
                .map(|c| (c.re.to_bits(), c.im.to_bits()))
                .collect()
        };
        let want = bits(&one_shot);
        let setups: Vec<u64> = runs.iter().map(|r| r.exchange_setups).collect();
        let planning: Vec<Duration> = runs.iter().map(|r| r.planning).collect();
        let exact = runs.iter().all(|r| bits(r) == want);
        session.free();
        (one_shot.exchange_setups, setups, planning, exact)
    });
    for (rank, (adhoc, setups, planning, exact)) in results.into_iter().enumerate() {
        assert!(exact, "rank {rank}: session output differs from one-shot");
        assert_eq!(adhoc, tiles, "rank {rank}: ad-hoc pays setup per tile");
        assert_eq!(setups[0], tiles, "rank {rank}: first execution sets up");
        for (i, &s) in setups.iter().enumerate().skip(1) {
            assert_eq!(s, 0, "rank {rank} exec {i}: persistent plans reused");
            assert_eq!(
                planning[i],
                Duration::ZERO,
                "rank {rank} exec {i}: replanned"
            );
        }
    }
}

/// Bit pattern of a rank's output, for exact comparisons across thread
/// counts (floating-point `==` would hide sign-of-zero/NaN differences).
fn run_bits(spec: ProblemSpec, threads: usize) -> Vec<Vec<(u64, u64)>> {
    let params = TuningParams {
        threads,
        ..TuningParams::seed(&spec)
    };
    mpisim::run(spec.p, move |comm| {
        let input = local_test_slab(&spec, comm.rank());
        let out = fft3_dist(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &input,
        );
        out.data
            .iter()
            .map(|c| (c.re.to_bits(), c.im.to_bits()))
            .collect()
    })
}

/// Satellite (d): the parallel kernels only re-partition loops — they must
/// not change a single bit of the result, on the fast-transpose (square)
/// and generic (rectangular) paths alike.
#[test]
fn parallel_kernels_are_bit_identical_to_sequential() {
    for spec in [
        ProblemSpec::cube(16, 2),
        ProblemSpec {
            nx: 12,
            ny: 8,
            nz: 10,
            p: 2,
        },
    ] {
        let want = run_bits(spec, 1);
        for threads in [2usize, 3, 8] {
            assert_eq!(
                run_bits(spec, threads),
                want,
                "threads = {threads} changed bits for {spec:?}"
            );
        }
    }
}

/// The simulator models the `Th` knob as perfect kernel scaling: more
/// threads must strictly shrink the modelled time, deterministically.
#[test]
fn simulated_threads_shrink_compute_deterministically() {
    let spec = ProblemSpec::cube(64, 4);
    let seed = TuningParams::seed(&spec);
    let t1 = fft3_simulated(umd_cluster(), spec, Variant::New, seed, false).time;
    let par = TuningParams { threads: 4, ..seed };
    let t4 = fft3_simulated(umd_cluster(), spec, Variant::New, par, false).time;
    assert!(t4 < t1, "4 threads must beat 1 in the model: {t4} vs {t1}");
    let again = fft3_simulated(umd_cluster(), spec, Variant::New, par, false).time;
    assert_eq!(t4, again, "simulation must be deterministic");
}

/// Satellite (c): a zero-extent axis is a typed error from every fallible
/// entry point, not a silently "successful" size-1 stand-in transform.
#[test]
fn zero_extent_axes_are_rejected_everywhere() {
    // Hand-rolled params: `TuningParams::seed` itself rejects (panics on)
    // degenerate specs, which is exactly why the entry points must too.
    let params = TuningParams {
        t: 1,
        w: 1,
        px: 1,
        pz: 1,
        uy: 1,
        uz: 1,
        fy: 1,
        fp: 1,
        fu: 1,
        fx: 1,
        threads: 1,
    };
    for (spec, axis) in [
        (
            ProblemSpec {
                nx: 0,
                ny: 8,
                nz: 8,
                p: 2,
            },
            "nx",
        ),
        (
            ProblemSpec {
                nx: 8,
                ny: 0,
                nz: 8,
                p: 2,
            },
            "ny",
        ),
        (
            ProblemSpec {
                nx: 8,
                ny: 8,
                nz: 0,
                p: 2,
            },
            "nz",
        ),
    ] {
        // Real distributed path.
        let msgs = mpisim::run(spec.p, move |comm| {
            let Err(err) = try_fft3_dist(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &[],
            ) else {
                panic!("zero-extent spec must not transform");
            };
            assert!(matches!(err, Error::InfeasibleParams(_)), "{err}");
            err.to_string()
        });
        for m in msgs {
            assert!(m.contains(axis) && m.contains("zero extent"), "{m}");
        }

        // Simulator.
        let err = try_fft3_simulated(umd_cluster(), spec, Variant::New, params, false)
            .expect_err("zero-extent spec must not simulate");
        assert!(matches!(err, Error::InfeasibleParams(_)), "{err}");
        assert!(err.to_string().contains(axis), "{err}");

        // Pencil decomposition.
        let grid = PencilGrid::near_square(spec.p);
        let msgs = mpisim::run(spec.p, move |comm| {
            let Err(err) = try_fft3_pencil(&comm, spec, grid, Direction::Forward, &[]) else {
                panic!("zero-extent spec must not transform");
            };
            err.to_string()
        });
        for m in msgs {
            assert!(m.contains(axis) && m.contains("zero extent"), "{m}");
        }
    }
}
