//! Tier-1 acceptance tests for the overlapped 2-D pencil backend:
//! grid-construction invariants over every rank count, serial exactness
//! across swept grid shapes (square, `1×p`, `p×1`, non-divisible extents)
//! and both transform directions, the simulated overlap win at 256 ranks,
//! slab/pencil auto-selection on both sides of the crossover, the typed
//! error contracts of the `try_` entry points (the two pinned regressions
//! of this sweep), and stall recovery across the two exchange rounds.

use cfft::{Complex64, Direction};
use fft3d::serial::{fft3_serial, full_test_array};
use fft3d::{
    auto_select, compare_pencil_with_serial, pencil_overlap_simulated, pencil_seed,
    pencil_simulated, pencil_test_input, try_fft3_pencil, try_fft3_pencil_overlapped,
    try_fft3_pencil_overlapped_traced, Decomposition, Error, NoopRecorder, PencilGrid, ProblemSpec,
    Resilience,
};
use mpisim::FaultPlan;
use proptest::prelude::*;
use simnet::model::umd_cluster;
use std::sync::Arc;
use std::time::Duration;

/// Seed for the fault plans in this file; CI sweeps a matrix of values.
fn fault_seed() -> u64 {
    std::env::var("FFT3D_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn serial_reference(spec: &ProblemSpec, dir: Direction) -> Arc<Vec<Complex64>> {
    let mut reference = full_test_array(spec.nx, spec.ny, spec.nz);
    fft3_serial(&mut reference, spec.nx, spec.ny, spec.nz, dir);
    Arc::new(reference)
}

/// Small but varied pencil cases: every divisor-pair grid shape of up to
/// eight ranks (including the degenerate `1×p` and `p×1` rows/columns)
/// over extents that do not necessarily divide by the grid.
fn pencil_case() -> impl Strategy<Value = (ProblemSpec, PencilGrid)> {
    (1usize..=8, 2usize..=9, 2usize..=9, 2usize..=9).prop_flat_map(|(p, nx, ny, nz)| {
        (
            Just(ProblemSpec { nx, ny, nz, p }),
            prop::sample::select(PencilGrid::divisor_pairs(p)),
        )
    })
}

proptest! {
    /// The ISSUE's `near_square` contract, pinned over every rank count a
    /// deployment could plausibly use: the factorisation always covers
    /// exactly `p` ranks with `pr ≤ pc`.
    #[test]
    fn near_square_factorises_every_rank_count(p in 1usize..=4096) {
        let g = PencilGrid::near_square(p);
        prop_assert_eq!(g.pr * g.pc, p, "near_square({}) = {}x{}", p, g.pr, g.pc);
        prop_assert!(g.pr <= g.pc, "near_square({}) = {}x{}", p, g.pr, g.pc);
    }

    /// Pencil = serial, bit for bit, for both entry points (blocking and
    /// overlapped), across grid shapes and both directions. The two
    /// distributed paths must also agree with *each other* exactly: the
    /// overlap machinery may reorder communication, never arithmetic.
    #[test]
    fn pencil_matches_serial_across_grid_shapes_and_directions(
        (spec, grid) in pencil_case(),
        forward: bool,
    ) {
        let dir = if forward { Direction::Forward } else { Direction::Backward };
        let reference = serial_reference(&spec, dir);
        let params = pencil_seed(&spec, grid);
        let results = mpisim::run(spec.p, move |comm| {
            let input = pencil_test_input(&spec, grid, comm.rank());
            let blocking = try_fft3_pencil(&comm, spec, grid, dir, &input)
                .unwrap_or_else(|e| panic!("blocking pencil failed: {e}"));
            let overlapped =
                try_fft3_pencil_overlapped(&comm, spec, grid, params, dir, &input)
                    .unwrap_or_else(|e| panic!("overlapped pencil failed: {e}"));
            let bits = |d: &[Complex64]| -> Vec<(u64, u64)> {
                d.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect()
            };
            let exact = bits(&overlapped.output.data) == bits(&blocking.data);
            let err = compare_pencil_with_serial(
                &spec,
                grid,
                comm.rank(),
                &overlapped.output,
                &reference,
            );
            (exact, err)
        });
        for (rank, (exact, err)) in results.into_iter().enumerate() {
            prop_assert!(
                exact,
                "rank {}: overlapped differs from blocking for {:?} {:?}",
                rank, spec, grid
            );
            prop_assert!(
                err == 0.0,
                "rank {}: error {} vs serial for {:?} {:?} {:?}",
                rank, err, spec, grid, dir
            );
        }
    }
}

/// The acceptance bar of the ISSUE: at 256 ranks on the calibrated
/// cluster model, the tile-windowed pencil exchanges must beat the
/// blocking two-round path in simulated time.
#[test]
fn overlapped_pencil_beats_blocking_at_256_ranks() {
    let spec = ProblemSpec::cube(256, 256);
    let grid = PencilGrid::near_square(256);
    assert_eq!((grid.pr, grid.pc), (16, 16));
    let blocking = pencil_simulated(umd_cluster(), spec, grid);
    let overlapped = pencil_overlap_simulated(umd_cluster(), spec, grid, 2, 64);
    assert!(
        overlapped < blocking,
        "overlap {overlapped:.6}s does not beat blocking {blocking:.6}s at 256 ranks"
    );
}

/// `auto_select` picks the faster decomposition on both sides of the
/// crossover: slab where whole-plane slabs exist and win on the cost
/// model, pencil past the `p > min(nx, ny)` scaling wall where slabs
/// cannot even be formed (§6 of the paper's motivation).
#[test]
fn auto_select_picks_each_side_of_the_crossover() {
    // Slab side: 4 ranks over 256³ — each rank holds 64 full planes and
    // the one-round slab exchange is cheaper than two pencil rounds.
    let spec = ProblemSpec::cube(256, 1);
    match auto_select(umd_cluster(), &spec, 4) {
        Ok(Decomposition::Slab) => {}
        other => panic!("expected Slab at 256^3 / 4 ranks, got {other:?}"),
    }
    // Pencil side: 128 ranks over 64³ — past the slab wall (p > nx), only
    // the 2-D grid keeps every rank busy.
    let spec = ProblemSpec::cube(64, 1);
    match auto_select(umd_cluster(), &spec, 128) {
        Ok(Decomposition::Pencil(grid)) => {
            assert_eq!(grid.len(), 128);
            assert!(grid.pr > 1, "past the wall the grid must be 2-D");
        }
        other => panic!("expected Pencil at 64^3 / 128 ranks, got {other:?}"),
    }
}

/// Pinned regression (ISSUE bugfix #1): a grid that disagrees with the
/// communicator is a typed [`Error::GridMismatch`] from both `try_` entry
/// points — never the old `assert_eq!` panic from inside a collective.
#[test]
fn grid_mismatch_is_a_typed_error_on_both_entry_points() {
    let spec = ProblemSpec::cube(8, 4);
    let results = mpisim::run(4, move |comm| {
        let bad = PencilGrid { pr: 2, pc: 3 };
        let input = vec![Complex64::ZERO; 4];
        let params = pencil_seed(&spec, bad);
        let blocking = try_fft3_pencil(&comm, spec, bad, Direction::Forward, &input);
        let overlapped =
            try_fft3_pencil_overlapped(&comm, spec, bad, params, Direction::Forward, &input);
        (blocking.err(), overlapped.err())
    });
    for (rank, (blocking, overlapped)) in results.into_iter().enumerate() {
        for err in [blocking, overlapped] {
            match err {
                Some(Error::GridMismatch {
                    pr: 2,
                    pc: 3,
                    expected: 4,
                }) => {}
                other => panic!("rank {rank}: expected GridMismatch, got {other:?}"),
            }
        }
    }
}

/// Pinned regression (ISSUE bugfix #2): zero ranks is a typed error, not
/// a silently-empty `1×0` grid whose `coords` would divide by zero.
#[test]
fn zero_ranks_is_a_typed_error_not_an_empty_grid() {
    let err = PencilGrid::try_near_square(0).expect_err("p = 0 must be rejected");
    assert!(
        err.to_string().contains("zero ranks"),
        "unexpected error: {err}"
    );
    assert!(auto_select(umd_cluster(), &ProblemSpec::cube(8, 1), 0).is_err());
}

/// A straggler on the pencil path: rank 1 delays every send far past the
/// watchdog, so waits on *both* subcommunicator exchange rounds must trip
/// the degradation ladder and still land a serial-exact spectrum.
#[test]
fn pencil_straggler_stall_recovers_and_matches_serial() {
    let spec = ProblemSpec::cube(12, 4);
    let grid = PencilGrid::near_square(4);
    let mut params = pencil_seed(&spec, grid);
    params.t = 1; // several tiles per stage, so stalls hit mid-window
    let reference = serial_reference(&spec, Direction::Forward);

    let plan = FaultPlan::seeded(fault_seed()).with_straggler(1, 30.0);
    let res = Resilience {
        stall_timeout: Some(Duration::from_millis(15)),
        poll_boost: 4,
        max_strikes: 8,
    };
    let results = mpisim::run_with_faults(spec.p, plan, move |comm| {
        let input = pencil_test_input(&spec, grid, comm.rank());
        let out = try_fft3_pencil_overlapped_traced(
            &comm,
            spec,
            grid,
            params,
            Direction::Forward,
            &input,
            &res,
            &mut NoopRecorder,
        )
        .unwrap_or_else(|e| panic!("rank {} failed to recover: {e}", comm.rank()));
        let err = compare_pencil_with_serial(&spec, grid, comm.rank(), &out.output, &reference);
        (err, out.recovery)
    });

    let tol = 1e-9 * spec.len() as f64;
    let mut stalls = 0;
    for (rank, (err, recovery)) in results.iter().enumerate() {
        assert!(
            *err < tol,
            "rank {rank}: spectrum error {err} after recovery"
        );
        stalls += recovery.stalls_detected;
    }
    assert!(
        stalls > 0,
        "a 60 ms send delay against a 15 ms watchdog must trip at least once"
    );
}
