//! Behavioural tests of the per-tile tracing layer (`fft3d::trace`) on both
//! backends: the event stream must reconstruct the Figure 8 breakdown, and
//! its post/wait structure must follow the windowed pipeline.

use cfft::planner::Rigor;
use cfft::Direction;
use fft3d::real_env::local_test_slab;
use fft3d::sim_env::fft3_simulated_traced;
use fft3d::trace::{derive_step_times, overlap_summary, EventKind, MemRecorder, TraceEvent};
use fft3d::{fft3_dist, fft3_dist_traced, ProblemSpec, StepTimes, TuningParams, Variant};
use simnet::model::umd_cluster;

fn posts_and_waits(events: &[TraceEvent]) -> (Vec<usize>, Vec<usize>) {
    let mut posts = Vec::new();
    let mut waits = Vec::new();
    for ev in events {
        match ev.kind {
            EventKind::PostA2a { tile, .. } => posts.push(tile),
            EventKind::Wait { tile } => waits.push(tile),
            _ => {}
        }
    }
    (posts, waits)
}

/// Per-category relative agreement, with an absolute floor so categories
/// measured in microseconds don't fail on rounding.
fn assert_steps_close(derived: &StepTimes, direct: &StepTimes, rel: f64, abs: f64) {
    for ((name, d), (_, s)) in derived.entries().iter().zip(direct.entries().iter()) {
        assert!(
            (d - s).abs() <= rel * s.abs() + abs,
            "category {name}: derived {d} vs direct {s}"
        );
    }
}

#[test]
fn mpisim_trace_reconstructs_step_times_and_matches_untraced_output() {
    let spec = ProblemSpec::cube(32, 4);
    let params = TuningParams::seed(&spec);
    let results = mpisim::run(spec.p, move |comm| {
        let input = local_test_slab(&spec, comm.rank());
        let mut rec = MemRecorder::default();
        let traced = fft3_dist_traced(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &input,
            &mut rec,
        );
        let plain = fft3_dist(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &input,
        );
        (rec.take(), traced.stats, traced.data == plain.data)
    });
    for (rank, (events, stats, same_data)) in results.iter().enumerate() {
        assert!(
            same_data,
            "rank {rank}: tracing must not change the transform"
        );
        assert!(!events.is_empty(), "rank {rank}: no events recorded");
        for ev in events {
            assert!(ev.end >= ev.start, "rank {rank}: negative span {ev:?}");
            assert!(ev.start >= 0.0 && ev.end <= stats.elapsed + 1e-6);
        }
        // The event stream carries the full breakdown (5 % tolerance per
        // the instrumentation sharing the same timer reads).
        let derived = derive_step_times(events);
        assert_steps_close(&derived, &stats.steps, 0.05, 1e-5);
        assert!(
            (derived.total() - stats.steps.total()).abs() <= 0.05 * stats.steps.total() + 1e-5,
            "rank {rank}: derived total {} vs direct {}",
            derived.total(),
            stats.steps.total()
        );
        // Every Test event was counted in the stats.
        let tests = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Test { .. }))
            .count() as u64;
        assert_eq!(tests, stats.tests, "rank {rank}");
    }
}

#[test]
fn mpisim_trace_pairs_each_post_with_one_wait_in_window_order() {
    let spec = ProblemSpec::cube(32, 4);
    let params = TuningParams::seed(&spec);
    let all_events = mpisim::run(spec.p, move |comm| {
        let input = local_test_slab(&spec, comm.rank());
        let mut rec = MemRecorder::default();
        fft3_dist_traced(
            &comm,
            spec,
            Variant::New,
            params,
            Direction::Forward,
            Rigor::Estimate,
            &input,
            &mut rec,
        );
        rec.take()
    });
    let tiles = params.tiles(&spec);
    for (rank, events) in all_events.iter().enumerate() {
        let (posts, waits) = posts_and_waits(events);
        assert_eq!(posts.len(), tiles, "rank {rank}: one post per tile");
        // Exactly one wait per posted tile, completed in post (FIFO window)
        // order.
        assert_eq!(
            posts, waits,
            "rank {rank}: waits must drain the window in order"
        );
        // Posts are the tile sequence 0..k.
        assert_eq!(posts, (0..tiles).collect::<Vec<_>>(), "rank {rank}");
        // A tile's wait never starts before its post ends.
        for tile in 0..tiles {
            let post_end = events
                .iter()
                .find(|e| matches!(e.kind, EventKind::PostA2a { tile: t, .. } if t == tile))
                .map(|e| e.end)
                .expect("post exists");
            let wait_start = events
                .iter()
                .find(|e| matches!(e.kind, EventKind::Wait { tile: t } if t == tile))
                .map(|e| e.start)
                .expect("wait exists");
            assert!(wait_start >= post_end, "rank {rank} tile {tile}");
        }
    }
}

#[test]
fn simnet_trace_has_monotone_virtual_time_and_exact_breakdown() {
    let spec = ProblemSpec::cube(256, 8);
    let params = TuningParams::seed(&spec);
    let (report, events) = fft3_simulated_traced(umd_cluster(), spec, Variant::New, params);
    assert_eq!(events.len(), spec.p);
    for (rank, rank_events) in events.iter().enumerate() {
        assert!(!rank_events.is_empty(), "rank {rank}");
        for ev in rank_events {
            assert!(ev.end >= ev.start, "rank {rank}: {ev:?}");
        }
        // Virtual time never runs backwards: the phase spans (everything
        // but the polls charged inside them) are disjoint and ordered.
        let mut last_end = 0.0f64;
        for ev in rank_events {
            if matches!(ev.kind, EventKind::Test { .. }) {
                continue;
            }
            assert!(
                ev.start >= last_end - 1e-12,
                "rank {rank}: phase span starts at {} before previous end {}",
                ev.start,
                last_end
            );
            last_end = ev.end;
        }
        // The virtual-time derivation is exact: polls are charged inside
        // phase spans and subtracted back out.
        let derived = derive_step_times(rank_events);
        assert_steps_close(&derived, &report.per_rank[rank].steps, 1e-9, 1e-9);
        // Overlap summary is well-formed.
        let s = overlap_summary(rank_events);
        assert!((0.0..=1.0).contains(&s.coverage), "rank {rank}: {s:?}");
        assert_eq!(s.tiles, params.tiles(&spec), "rank {rank}");
        assert_eq!(
            s.tests as u64, report.per_rank[rank].tests,
            "rank {rank}: every poll must appear in the trace"
        );
    }
}
