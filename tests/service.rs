//! Tier-1 acceptance tests for the multi-tenant service (ISSUE 10):
//! the overload-shedding demo (typed rejections of the lowest priority
//! class, p99 FCT of accepted work within 1.5× isolated, Jain ≥ 0.9
//! across tenants), data-layer tenant isolation under an injected crash
//! (every other tenant's spectrum bit-exact vs its isolated execution),
//! and a proptest over random job mixes pinning determinism, typed-outcome
//! totality (no starvation), and byte conservation vs independent runs.

use cfft::Direction;
use fft3d::{
    CancelReason, Error, JobOutcome, JobSpec, ProblemSpec, RejectReason, Service, ServiceConfig,
};
use mpisim::FaultPlan;
use proptest::prelude::*;
use simnet::model::umd_cluster;

/// Seed for the fault plans in this file; CI sweeps a matrix of values.
fn fault_seed() -> u64 {
    std::env::var("FFT3D_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// The acceptance demo: four symmetric tenants submit at 2× the cluster's
/// service rate, every job carrying a 1.5×-isolated deadline. The
/// admission controller must shed load preferentially from the lowest
/// priority class — with typed reasons, not drops — while the work it
/// accepts keeps its latency promise (the deadline watchdog enforces the
/// 1.5× bound on anything that slips past prediction) and no tenant is
/// favoured (Jain ≥ 0.9).
#[test]
fn overload_sheds_low_priority_and_keeps_accepted_fct_bounded() {
    let svc = Service::new(ServiceConfig::new(umd_cluster(), 16));
    let template = JobSpec::new(0, ProblemSpec::cube(256, 1), Direction::Forward);
    let iso = svc
        .isolated_run(&template)
        .expect("template must be feasible")
        .time;

    // 24 jobs, one arriving every iso/2 — twice what the cluster can
    // finish. Tenant i%4, priority i%3: each tenant submits every
    // priority class equally often.
    let jobs: Vec<JobSpec> = (0..24)
        .map(|i| {
            JobSpec::new(i % 4, ProblemSpec::cube(256, 1), Direction::Forward)
                .with_priority((i % 3) as u8)
                .with_deadline(iso * 1.5)
                .at(i as f64 * iso * 0.5)
        })
        .collect();
    let rep = svc.run(&jobs);

    // Overload must shed — and every shed is a typed reason.
    let mut rejected_by_prio = [0usize; 3];
    let mut completed_by_prio = [0usize; 3];
    for rec in &rep.jobs {
        match rec.outcome {
            JobOutcome::Rejected(
                RejectReason::DeadlineUnmeetable { .. } | RejectReason::QueueFull { .. },
            ) => rejected_by_prio[rec.priority as usize] += 1,
            JobOutcome::Rejected(r) => panic!("job {}: unexpected rejection {r:?}", rec.job),
            JobOutcome::Completed { .. } => completed_by_prio[rec.priority as usize] += 1,
            JobOutcome::Cancelled {
                reason: CancelReason::DeadlineExceeded { .. },
                ..
            } => {}
            JobOutcome::Cancelled { reason, .. } => {
                panic!("job {}: unexpected cancellation {reason:?}", rec.job)
            }
        }
    }
    let rejected: usize = rejected_by_prio.iter().sum();
    let completed: usize = completed_by_prio.iter().sum();
    assert!(rejected > 0, "2x load must shed something");
    assert!(completed > 0, "2x load must not shed everything");
    // Shedding is priority-ordered: the bottom class loses at least as
    // many jobs as the top class, and the top class completes at least as
    // many as the bottom.
    assert!(
        rejected_by_prio[0] >= rejected_by_prio[2],
        "rejections by priority {rejected_by_prio:?}"
    );
    assert!(
        completed_by_prio[2] >= completed_by_prio[0],
        "completions by priority {completed_by_prio:?}"
    );

    // Accepted work keeps its promise: every completion (p99 included)
    // lands within 1.5x its isolated run.
    assert!(rep.slowdown.count > 0);
    assert!(
        rep.slowdown.p99 <= 1.5 + 1e-9,
        "p99 slowdown {} breaks the 1.5x bound",
        rep.slowdown.p99
    );

    // Symmetric tenants, symmetric service: Jain over per-tenant mean
    // slowdowns.
    assert!(rep.jain >= 0.9, "jain {} < 0.9", rep.jain);
}

/// Strict tenant isolation on the data layer: tenant 0's job carries a
/// rank-crash fault; it must recover through `run_recoverable` (extra
/// attempts, serial-close spectrum), while tenants 1 and 2 — co-scheduled
/// on the same cluster — produce spectra *bit-identical* to running each
/// of their jobs with no other tenant present.
#[test]
fn crash_in_one_tenants_job_leaves_other_tenants_bit_exact() {
    let svc = Service::new(ServiceConfig::new(umd_cluster(), 4));
    // 32^3 over 4 ranks auto-selects the slab path, which is the one with
    // a crash-recovery story (`run_recoverable`).
    let spec = ProblemSpec::cube(32, 1);
    let crashy = JobSpec::new(0, spec, Direction::Forward)
        .with_faults(FaultPlan::seeded(fault_seed()).with_rank_crash(1, 1));
    let victims = [
        JobSpec::new(1, spec, Direction::Forward).at(0.0),
        JobSpec::new(2, spec, Direction::Backward).at(0.0),
    ];

    let batch = vec![crashy, victims[0].clone(), victims[1].clone()];
    let (rep, data) = svc.run_with_data(&batch).expect("data-layer run");
    for rec in &rep.jobs {
        assert!(
            rec.outcome.is_completed(),
            "job {} must complete: {:?}",
            rec.job,
            rec.outcome
        );
    }

    // The faulted tenant recovered: it burned extra attempts and still
    // landed a serial-close spectrum without its dead rank.
    let tol = 1e-9 * spec.len() as f64;
    let crashed = data[0].as_ref().expect("crash job data");
    assert!(
        crashed.attempts >= 2,
        "a rank crash must cost at least one retry, got {}",
        crashed.attempts
    );
    assert_eq!(crashed.lost, vec![1], "rank 1 was the injected casualty");
    assert!(
        crashed.max_err < tol,
        "recovered spectrum error {} over tolerance {tol}",
        crashed.max_err
    );

    // The other tenants are untouched: bit-for-bit equal to running each
    // job in its own single-tenant batch.
    for (slot, victim) in victims.iter().enumerate() {
        let shared = data[slot + 1].as_ref().expect("victim data");
        assert!(
            shared.lost.is_empty(),
            "tenant {} lost ranks",
            victim.tenant
        );
        assert_eq!(shared.attempts, 1, "a clean job needs one attempt");
        assert!(shared.max_err < tol);
        let (_, alone) = svc
            .run_with_data(std::slice::from_ref(victim))
            .expect("isolated execution");
        let alone = alone[0].as_ref().expect("isolated data");
        for rank in 0..4 {
            let a = shared.slabs[rank].as_ref().expect("shared slab");
            let b = alone.slabs[rank].as_ref().expect("isolated slab");
            assert_eq!(a.len(), b.len());
            let exact = a
                .iter()
                .zip(b.iter())
                .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits());
            assert!(
                exact,
                "tenant {} rank {rank}: spectrum differs from isolated run",
                victim.tenant
            );
        }
    }
}

/// Random job mixes for the property tests: cube sizes × tenants ×
/// staggered arrivals × optional deadlines × optional crash faults.
fn job_mix() -> impl Strategy<Value = (Vec<JobSpec>, u64)> {
    let job = (
        1usize..=3, // tenant
        prop::sample::select(vec![8usize, 12, 16]),
        0usize..=4, // arrival slot
        0u8..=2,    // priority
        0usize..=2, // 0: none, 1: generous deadline, 2: crash
    );
    (proptest::collection::vec(job, 1..=6), 1u64..=1_000).prop_map(|(raw, seed)| {
        let jobs = raw
            .into_iter()
            .map(|(tenant, n, slot, priority, kind)| {
                let mut j = JobSpec::new(tenant, ProblemSpec::cube(n, 1), Direction::Forward)
                    .with_priority(priority)
                    .at(slot as f64 * 0.01);
                match kind {
                    1 => j.deadline = Some(10.0),
                    2 => j.faults = FaultPlan::seeded(seed).with_rank_crash(1, 1),
                    _ => {}
                }
                j
            })
            .collect();
        (jobs, seed)
    })
}

/// Digest of every outcome-bearing field, bit-exact, for determinism
/// comparisons.
fn digest(rep: &fft3d::ServiceReport) -> Vec<(usize, String, u64, u64, u32)> {
    rep.jobs
        .iter()
        .map(|r| {
            (
                r.job,
                format!("{:?}", r.outcome),
                r.fct().unwrap_or(-1.0).to_bits(),
                r.bytes,
                r.attempts,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The three service-level properties of the ISSUE, over random mixes:
    ///
    /// * **determinism** — the same submission gives the same report,
    ///   bit for bit;
    /// * **no starvation** — every submitted job reaches a typed terminal
    ///   state: completed, or rejected/cancelled with a reason (never the
    ///   engine's defensive `Internal` backstop);
    /// * **conservation** — a completed job exchanges exactly the bytes
    ///   its independent (isolated) run exchanges, so co-scheduling moves
    ///   no phantom traffic.
    #[test]
    fn random_mixes_are_deterministic_typed_and_conservative(
        (jobs, _seed) in job_mix(),
    ) {
        let svc = Service::new(ServiceConfig::new(umd_cluster(), 4));
        let rep = svc.run(&jobs);
        let again = svc.run(&jobs);
        prop_assert_eq!(digest(&rep), digest(&again), "same mix, same report");

        prop_assert_eq!(rep.jobs.len(), jobs.len(), "every submission is accounted for");
        let mut completed_bytes = 0u64;
        let mut isolated_bytes = 0u64;
        for rec in &rep.jobs {
            match &rec.outcome {
                JobOutcome::Completed { fct } => {
                    prop_assert!(*fct >= 0.0);
                    prop_assert_eq!(
                        rec.bytes, rec.isolated_bytes,
                        "job {}: shared run moved {} bytes, isolated {}",
                        rec.job, rec.bytes, rec.isolated_bytes
                    );
                    completed_bytes += rec.bytes;
                    isolated_bytes += rec.isolated_bytes;
                }
                JobOutcome::Rejected(_) => {
                    prop_assert_eq!(rec.bytes, 0, "a rejected job moves nothing");
                }
                JobOutcome::Cancelled { reason, .. } => {
                    // Typed reasons only — the engine's defensive backstop
                    // (`Internal`) would mean a job was stranded.
                    match reason {
                        CancelReason::RetriesExhausted(Error::Internal(msg)) => {
                            return Err(TestCaseError::fail(format!(
                                "job {} stranded: {msg}", rec.job
                            )));
                        }
                        CancelReason::DeadlineExceeded { .. }
                        | CancelReason::RetriesExhausted(_) => {}
                    }
                }
            }
        }
        prop_assert_eq!(completed_bytes, isolated_bytes);
    }
}
