//! Failure injection across the runtime stack: panics mid-collective,
//! mismatched arguments, and infeasible configurations must produce clean
//! diagnostics — never deadlocks or silent corruption.

use fft3d::{ProblemSpec, TuningParams};

fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let err = std::panic::catch_unwind(f).expect_err("closure must panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn rank_death_mid_alltoall_unwinds_everyone() {
    let msg = panic_message(|| {
        mpisim::run(4, |comm| {
            let send = vec![1u8; 4];
            let req = comm.ialltoall(&send, 1, vec![0u8; 4]);
            if comm.rank() == 2 {
                panic!("injected fault in rank 2");
            }
            // Peers must not hang: wait() parks in the abort-aware mailbox
            // path, so the abort machinery unwinds them. (A raw test() spin
            // loop would be the caller's own unbounded busy-wait — the
            // runtime only guarantees unwinding for its blocking calls.)
            let _ = req.wait(&comm);
        });
    });
    assert!(
        msg.contains("injected fault") || msg.contains("peer rank panicked"),
        "unexpected panic: {msg}"
    );
}

#[test]
fn rank_death_during_barrier_unwinds_everyone() {
    let msg = panic_message(|| {
        mpisim::run(3, |comm| {
            if comm.rank() == 0 {
                panic!("injected barrier fault");
            }
            comm.barrier();
        });
    });
    assert!(
        msg.contains("injected barrier fault") || msg.contains("peer rank panicked"),
        "unexpected panic: {msg}"
    );
}

#[test]
fn mismatched_alltoall_counts_are_diagnosed() {
    let msg = panic_message(|| {
        mpisim::run(2, |comm| {
            if comm.rank() == 0 {
                let send = vec![0u8; 2];
                comm.ialltoallv(&send, &[1, 1], &[1, 1], vec![0u8; 2])
                    .wait(&comm);
            } else {
                let send = vec![0u8; 4];
                comm.ialltoallv(&send, &[2, 2], &[2, 2], vec![0u8; 4])
                    .wait(&comm);
            }
        });
    });
    assert!(
        msg.contains("count mismatch") || msg.contains("peer rank panicked"),
        "{msg}"
    );
}

#[test]
fn wrong_payload_type_is_diagnosed() {
    let msg = panic_message(|| {
        mpisim::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[1.0f64], 1, 9);
            } else {
                let _ = comm.recv_vec::<u32>(0, 9);
            }
        });
    });
    assert!(
        msg.contains("type mismatch") || msg.contains("peer rank panicked"),
        "{msg}"
    );
}

#[test]
fn infeasible_parameters_are_rejected_before_running() {
    let spec = ProblemSpec::cube(16, 4);
    let bad = TuningParams {
        t: spec.nz + 5,
        ..TuningParams::seed(&spec)
    };
    let msg = panic_message(|| {
        mpisim::run(spec.p, move |comm| {
            let input = fft3d::real_env::local_test_slab(&spec, comm.rank());
            let _ = fft3d::real_env::fft3_dist(
                &comm,
                spec,
                fft3d::Variant::New,
                bad,
                cfft::Direction::Forward,
                cfft::planner::Rigor::Estimate,
                &input,
            );
        });
    });
    assert!(
        msg.contains("infeasible") || msg.contains("peer rank panicked"),
        "{msg}"
    );
}

#[test]
fn wrong_input_length_is_rejected() {
    let spec = ProblemSpec::cube(8, 2);
    let msg = panic_message(|| {
        mpisim::run(spec.p, move |comm| {
            let input = vec![cfft::Complex64::ZERO; 7]; // wrong size
            let _ = fft3d::real_env::fft3_dist(
                &comm,
                spec,
                fft3d::Variant::New,
                TuningParams::seed(&spec),
                cfft::Direction::Forward,
                cfft::planner::Rigor::Estimate,
                &input,
            );
        });
    });
    assert!(
        msg.contains("x-slab") || msg.contains("peer rank panicked"),
        "{msg}"
    );
}

#[test]
fn simulated_rank_panic_aborts_the_world() {
    let msg = panic_message(|| {
        simnet::run_sim(simnet::model::umd_cluster(), 3, |sim| {
            if sim.rank() == 1 {
                panic!("injected simulated fault");
            }
            sim.barrier();
        });
    });
    assert!(
        msg.contains("injected simulated fault") || msg.contains("peer rank panicked"),
        "{msg}"
    );
}
