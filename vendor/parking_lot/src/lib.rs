//! Vendored stand-in for the subset of `parking_lot` this workspace uses:
//! `Mutex` with a non-poisoning `lock()`, and `Condvar` with `wait`,
//! `wait_for`, `notify_one`, `notify_all`.
//!
//! Implemented on top of `std::sync`; poisoning is swallowed (a panicked
//! holder's data is handed out as-is, matching parking_lot semantics).

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Mutual exclusion primitive; `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard; the inner `Option` lets `Condvar` temporarily take the std
/// guard during a wait and put it back before returning to the caller.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken during wait")
    }
}

/// Result of a timed wait; only `timed_out()` is consulted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on [`MutexGuard`].
#[derive(Default, Debug)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken during wait");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, t)) => (g, t.timed_out()),
            Err(p) => {
                let (g, t) = p.into_inner();
                (g, t.timed_out())
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res)
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(5));
        drop(g);
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
