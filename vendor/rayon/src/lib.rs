//! Vendored stand-in for the subset of `rayon` this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()` and the structured
//! [`scope`]/[`Scope::spawn`] fork-join API.
//!
//! `par_iter` work is distributed over `available_parallelism` scoped
//! threads pulling indices from a shared atomic counter; results keep input
//! order. [`scope`] maps directly onto `std::thread::scope`, so every spawn
//! is joined before `scope` returns (the property the cfft batch kernels
//! rely on for their disjoint `&mut` row slices).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Structured fork-join: runs `f` with a [`Scope`] on which closures may be
/// spawned; returns only after every spawned closure has finished.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Handle passed to the [`scope`] closure; borrows live for `'env`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `f` on its own scoped thread (real rayon uses a pool; the
    /// shim's callers spawn at most one task per core, so a thread per
    /// spawn costs the same order as a pool handoff).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

/// Entry point: `.par_iter()` on slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Mapped parallel iterator; `collect` runs the closure across threads.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
            .min(n.max(1));
        let f = &self.f;
        let items = self.items;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&items[i]);
                    *slots[i].lock().expect("slot mutex poisoned") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot mutex poisoned")
                    .expect("worker filled every slot")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let ys: Vec<usize> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_empty_input() {
        let xs: Vec<u8> = vec![];
        let ys: Vec<u8> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }

    #[test]
    fn scope_joins_all_spawns() {
        let mut parts = vec![0u32; 4];
        let mut iter = parts.chunks_mut(1);
        crate::scope(|s| {
            for (i, chunk) in iter.by_ref().enumerate() {
                s.spawn(move |_| chunk[0] = i as u32 + 1);
            }
        });
        assert_eq!(parts, vec![1, 2, 3, 4]);
    }

    #[test]
    fn scope_returns_value() {
        let r = crate::scope(|_| 7usize);
        assert_eq!(r, 7);
    }
}
