//! Vendored stand-in for the subset of `rayon` this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()`.
//!
//! Work is distributed over `available_parallelism` scoped threads pulling
//! indices from a shared atomic counter; results keep input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

/// Entry point: `.par_iter()` on slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Mapped parallel iterator; `collect` runs the closure across threads.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
            .min(n.max(1));
        let f = &self.f;
        let items = self.items;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&items[i]);
                    *slots[i].lock().unwrap() = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let ys: Vec<usize> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_empty_input() {
        let xs: Vec<u8> = vec![];
        let ys: Vec<u8> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }
}
