//! Vendored stand-in for the subset of `proptest` this workspace uses.
//!
//! Supports the `proptest! {}` macro with `#![proptest_config(..)]`,
//! `pat in strategy` and `name: Type` arguments, range/tuple/`Just`/
//! `prop_oneof!`/`prop::collection::vec`/`prop::sample::select` strategies,
//! `prop_map`/`prop_flat_map`, and `prop_assert*` macros.
//!
//! No shrinking: a failing case reports its case number and seed so it can
//! be replayed deterministically (seeds derive from the test name).

pub mod test_runner {
    use std::fmt;

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng(seed)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot sample from an empty set");
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Failure (or rejection) of a single generated case.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    fn name_seed(name: &str) -> u64 {
        // FNV-1a, so each test gets its own deterministic stream.
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Drives `body` over `cases` deterministic seeds, panicking on the
    /// first failing case with its replay coordinates.
    pub fn run_case_loop(
        config: &Config,
        name: &str,
        mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let base = name_seed(name);
        for case in 0..config.cases {
            let seed = base ^ (case as u64).wrapping_mul(0xD1B54A32D192ED03);
            let mut rng = TestRng::new(seed);
            match body(&mut rng) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed at case {case} (seed {seed:#x}): {msg}")
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for producing values of `Self::Value` from a [`TestRng`].
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy, as produced by [`Strategy::boxed`].
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_flat_map` adapter.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                    if span == u64::MAX {
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                }
            }
        )*};
    }

    signed_range_strategy!(i64, i32, i16, i8, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.next_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Vector of values from `element`, with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below(self.size.hi - self.size.lo + 1)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list of values.
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`name: Type` args).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Bounded uniform keeps downstream arithmetic finite.
            (rng.next_f64() - 0.5) * 2e6
        }
    }

    /// Strategy form of [`Arbitrary`], as returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests: each `fn` inside becomes a `#[test]` run over
/// many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            $crate::test_runner::run_case_loop(&__config, stringify!($name), |__rng| {
                $crate::__proptest_bind! { __rng, $($args)* }
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                __outcome
            });
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $arg:ident: $ty:ty $(, $($rest:tt)*)?) => {
        let $arg: $ty = <$ty as $crate::arbitrary::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bind! { $rng $(, $($rest)*)? }
    };
    ($rng:ident, $pat:pat in $strat:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind! { $rng $(, $($rest)*)? }
    };
}

/// Asserts a condition inside a proptest body, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)+);
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), __a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, $($fmt)+);
    }};
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(9);
        let s = (1usize..5, 0u64..10, -1.0f64..1.0);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!(b < 10);
            assert!((-1.0..1.0).contains(&c));
        }
    }

    #[test]
    fn oneof_covers_every_arm() {
        let mut rng = crate::test_runner::TestRng::new(3);
        let s = prop_oneof![Just(1usize), Just(2usize), 10usize..12];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&10));
    }

    #[test]
    fn flat_map_chains_dependent_strategies() {
        let mut rng = crate::test_runner::TestRng::new(5);
        let s = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..10, n..=n));
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_both_arg_forms(x in 1usize..10, flag: bool, y in Just(7usize)) {
            prop_assert!(x < 10);
            prop_assert_eq!(y, 7);
            let _ = flag;
        }

        #[test]
        fn select_and_map_compose(
            v in prop::sample::select(vec![2usize, 4, 8]).prop_map(|x| x * 3),
        ) {
            prop_assert!(v == 6 || v == 12 || v == 24);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        crate::test_runner::run_case_loop(&ProptestConfig::with_cases(8), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
