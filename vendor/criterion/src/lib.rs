//! Vendored stand-in for the subset of `criterion` this workspace uses:
//! benchmark groups with `sample_size`/`warm_up_time`/`measurement_time`/
//! `throughput`, `bench_with_input`/`bench_function`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! Under `cargo bench` (`--bench` passed) each benchmark is timed
//! adaptively and a mean per-iteration time (plus throughput) is printed.
//! Under `cargo test` (no `--bench` flag) every benchmark body runs exactly
//! once as a smoke test, so bench bins stay cheap in tier-1.

use std::fmt;
use std::time::{Duration, Instant};

/// Measure-vs-smoke mode, decided from the harness arguments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Measure,
    Smoke,
}

/// Benchmark manager handed to each `criterion_group!` target.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Smoke;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => mode = Mode::Measure,
                "--test" => mode = Mode::Smoke,
                a if !a.starts_with('-') => filter = Some(a.to_string()),
                _ => {}
            }
        }
        Criterion { mode, filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            mode: self.mode,
            filter: self.filter.clone(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Units reported alongside timing.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    mode: Mode,
    filter: Option<String>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    // Lifetime ties the group to its Criterion, like the real API.
    _marker: std::marker::PhantomData<&'a mut ()>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id.clone(), |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.id.clone(), |b| f(b));
        self
    }

    pub fn finish(self) {}

    fn run_one(&self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: self.mode,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            ns_per_iter: None,
        };
        f(&mut bencher);
        match self.mode {
            Mode::Smoke => println!("{full}: smoke ok"),
            Mode::Measure => {
                let ns = bencher.ns_per_iter.unwrap_or(0.0);
                let rate = self.throughput.map(|t| match t {
                    Throughput::Elements(n) => {
                        format!(" ({:.3} Melem/s)", n as f64 / ns * 1e3)
                    }
                    Throughput::Bytes(n) => {
                        format!(" ({:.3} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64)
                    }
                });
                println!(
                    "{full:60} time: {}{}",
                    format_ns(ns),
                    rate.unwrap_or_default()
                );
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Timing driver handed to each benchmark body.
pub struct Bencher {
    mode: Mode,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::Smoke {
            black_box(f());
            return;
        }
        // Warm-up doubles as calibration: the fastest observed call sizes
        // the measurement batches. Capped so slow benches stay tractable.
        let cap = self.warm_up.min(Duration::from_millis(200));
        let warm_start = Instant::now();
        let mut once = Duration::MAX;
        loop {
            let t = Instant::now();
            black_box(f());
            once = once.min(t.elapsed().max(Duration::from_nanos(1)));
            if warm_start.elapsed() >= cap {
                break;
            }
        }

        let samples = self.sample_size.clamp(2, 100) as u64;
        let per_sample_ns = (self.measurement.as_nanos() as u64 / samples).max(1);
        let iters = (per_sample_ns / once.as_nanos() as u64).clamp(1, 1 << 22);
        let mut total = Duration::ZERO;
        let mut count = 0u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            total += start.elapsed();
            count += iters;
            if total >= self.measurement * 2 {
                break;
            }
        }
        self.ns_per_iter = Some(total.as_nanos() as f64 / count as f64);
    }
}

/// Identity barrier preventing the optimiser from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function invoking each target benchmark fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut count = 0;
        let mut b = Bencher {
            mode: Mode::Smoke,
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(10),
            sample_size: 10,
            ns_per_iter: None,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert!(b.ns_per_iter.is_none());
    }

    #[test]
    fn measure_mode_produces_a_time() {
        let mut b = Bencher {
            mode: Mode::Measure,
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            sample_size: 4,
            ns_per_iter: None,
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.ns_per_iter.unwrap() > 0.0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            filter: None,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        g.throughput(Throughput::Elements(4));
        let mut ran = false;
        g.bench_with_input(BenchmarkId::new("f", 4), &4usize, |b, &n| {
            b.iter(|| n * 2);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
