//! Vendored stand-in for the subset of `rand` 0.8 this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::{gen_range,
//! gen_bool}` over integer and float ranges.
//!
//! `StdRng` here is a SplitMix64-seeded xoshiro256** generator —
//! deterministic, fast, and statistically solid for tuning-search use.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types `gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + next_f64(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        next_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let (mut n2, mut n3) = (s2 ^ s0, s3 ^ s1);
            let n1 = s1 ^ n2;
            let n0 = s0 ^ n3;
            n2 ^= t;
            n3 = n3.rotate_left(45);
            self.s = [n0, n1, n2, n3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..8).map(|_| r.gen_range(0usize..100)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(5u32..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(42);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }
}
