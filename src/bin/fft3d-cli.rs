//! Command-line driver: run a distributed 3-D FFT (real data, thread
//! runtime) or a simulated cluster run, from the shell.
//!
//! ```sh
//! fft3d-cli real --n 64 --p 4 --variant new
//! fft3d-cli sim  --n 512 --p 32 --platform hopper --variant fftw
//! fft3d-cli tune --n 256 --p 16 --platform umd
//! ```

use cfft::planner::Rigor;
use cfft::Direction;
use fft3d::real_env::{compare_with_serial, local_test_slab, try_fft3_dist_traced};
use fft3d::serial::{fft3_serial, full_test_array};
use fft3d::trace::NoopRecorder;
use fft3d::{fft3_simulated, Error, ProblemSpec, Resilience, TuningParams, Variant};
use tuner::driver::{tune_new, DEFAULT_MAX_EVALS};

struct Args {
    n: usize,
    p: usize,
    platform: String,
    variant: Variant,
    verify: bool,
    fault_seed: u64,
    corrupt: Option<f64>,
}

fn parse(mut raw: impl Iterator<Item = String>) -> (String, Args) {
    let mode = raw.next().unwrap_or_else(|| usage("missing mode"));
    let mut args = Args {
        n: 64,
        p: 4,
        platform: "umd".into(),
        variant: Variant::New,
        verify: true,
        fault_seed: 0x5eed,
        corrupt: None,
    };
    while let Some(flag) = raw.next() {
        let mut val = || raw.next().unwrap_or_else(|| usage("missing value"));
        match flag.as_str() {
            "--n" => args.n = val().parse().unwrap_or_else(|_| usage("bad --n")),
            "--p" => args.p = val().parse().unwrap_or_else(|_| usage("bad --p")),
            "--platform" => args.platform = val(),
            "--variant" => {
                args.variant = match val().as_str() {
                    "new" => Variant::New,
                    "th" => Variant::Th,
                    "fftw" => Variant::Fftw,
                    other => usage(&format!("unknown variant {other}")),
                }
            }
            "--no-verify" => args.verify = false,
            "--fault-seed" => {
                args.fault_seed = val().parse().unwrap_or_else(|_| usage("bad --fault-seed"))
            }
            "--corrupt" => {
                let p: f64 = val().parse().unwrap_or_else(|_| usage("bad --corrupt"));
                if !(0.0..1.0).contains(&p) {
                    usage("--corrupt probability must be in [0, 1)");
                }
                args.corrupt = Some(p);
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    (mode, args)
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: fft3d-cli <real|sim|tune> [--n N] [--p P] \
         [--platform umd|hopper] [--variant new|th|fftw] [--no-verify]\n\
         \x20               [--fault-seed N] [--corrupt PROB]\n\
         \n\
         fault injection (real mode): --corrupt flips one seeded bit per\n\
         message payload with the given probability; detection and healing\n\
         are reported. exit codes: 2 usage, 3 integrity failure escaped\n\
         healing, 4 unrecoverable, 5 rank failure, 1 other pipeline error"
    );
    std::process::exit(2)
}

/// Maps a typed pipeline error to the documented process exit code.
fn fault_exit_code(e: &Error) -> i32 {
    match e {
        Error::IntegrityFailed { .. } => 3,
        Error::Unrecoverable(_) => 4,
        Error::RankFailed { .. } | Error::Revoked { .. } => 5,
        _ => 1,
    }
}

fn main() {
    let (mode, args) = parse(std::env::args().skip(1));
    let spec = ProblemSpec::cube(args.n, args.p);
    let params = TuningParams::seed(&spec);

    match mode.as_str() {
        "real" => {
            println!(
                "real run: {}³ on {} ranks, {:?}",
                args.n, args.p, args.variant
            );
            let faults = match args.corrupt {
                Some(prob) => {
                    println!(
                        "fault injection: payload corruption p={prob} \
                         (seed {:#x}, checksum-verified retransmit)",
                        args.fault_seed
                    );
                    faultplan::FaultPlan::seeded(args.fault_seed).with_payload_corruption(prob, 8)
                }
                None => faultplan::FaultPlan::none(),
            };
            let reference = if args.verify {
                let mut r = full_test_array(spec.nx, spec.ny, spec.nz);
                fft3_serial(&mut r, spec.nx, spec.ny, spec.nz, Direction::Forward);
                Some(std::sync::Arc::new(r))
            } else {
                None
            };
            let variant = args.variant;
            // Under fault injection, arm the stall watchdog so collective
            // failures surface as typed errors (and exit codes) instead of
            // panics in the blocking wait path.
            let resilience = Resilience {
                stall_timeout: args.corrupt.map(|_| std::time::Duration::from_millis(200)),
                ..Resilience::default()
            };
            let results = mpisim::run_with_faults(spec.p, faults, move |comm| {
                let input = local_test_slab(&spec, comm.rank());
                let mut recorder = NoopRecorder;
                let t0 = std::time::Instant::now();
                let out = try_fft3_dist_traced(
                    &comm,
                    spec,
                    variant,
                    params,
                    Direction::Forward,
                    Rigor::Estimate,
                    &input,
                    &resilience,
                    &mut recorder,
                )?;
                let wall = t0.elapsed().as_secs_f64();
                let err = reference
                    .as_ref()
                    .map(|r| compare_with_serial(&spec, comm.rank(), &out, r));
                Ok((wall, err, out.stats.steps, out.recovery.corruptions_healed))
            });
            // Report the most diagnostic error across ranks: a corrupted
            // rank surfaces IntegrityFailed while its peers merely observe
            // the secondary stall, so rank order alone would mask the cause.
            let severity = |e: &Error| match e {
                Error::IntegrityFailed { .. } => 3,
                Error::Unrecoverable(_) => 2,
                Error::RankFailed { .. } | Error::Revoked { .. } => 1,
                _ => 0,
            };
            if let Some(e) = results
                .iter()
                .filter_map(|r: &Result<_, Error>| r.as_ref().err())
                .max_by_key(|e| severity(e))
            {
                eprintln!("error: {e}");
                std::process::exit(fault_exit_code(e));
            }
            let oks: Vec<_> = results.into_iter().filter_map(Result::ok).collect();
            let slowest = oks.iter().map(|r| r.0).fold(0.0, f64::max);
            println!("wall time (slowest rank): {slowest:.4}s");
            println!("rank 0 breakdown:\n{}", oks[0].2);
            let healed: u64 = oks.iter().map(|r| u64::from(r.3)).sum();
            if healed > 0 {
                println!("corruptions detected and healed: {healed}");
            }
            if let Some(err) = oks
                .iter()
                .filter_map(|r| r.1)
                .fold(None, |a: Option<f64>, e| Some(a.map_or(e, |x| x.max(e))))
            {
                println!("max |distributed − serial| = {err:.3e}");
                assert!(err < 1e-8 * spec.len() as f64, "verification failed");
                println!("verified ✓");
            }
        }
        "sim" => {
            let platform =
                simnet::model::by_name(&args.platform).unwrap_or_else(|| usage("unknown platform"));
            println!(
                "simulated run: {}³ on {} ranks of {}, {:?}",
                args.n, args.p, platform.name, args.variant
            );
            let rep = fft3_simulated(platform, spec, args.variant, params, false);
            println!("modeled time: {:.4}s", rep.time);
            println!("breakdown:\n{}", rep.steps);
        }
        "tune" => {
            let platform =
                simnet::model::by_name(&args.platform).unwrap_or_else(|| usage("unknown platform"));
            println!(
                "tuning NEW: {}³ on {} ranks of {}",
                args.n, args.p, platform.name
            );
            let result = tune_new(
                &spec,
                |p| fft3_simulated(platform.clone(), spec, Variant::New, *p, true).time,
                DEFAULT_MAX_EVALS,
            );
            println!("best configuration: {:?}", result.best);
            println!(
                "objective {:.4}s after {} executed configurations ({:.1}s tuning cost)",
                result.best_value, result.executed, result.tuning_cost
            );
        }
        other => usage(&format!("unknown mode {other}")),
    }
}
