//! Command-line driver: run a distributed 3-D FFT (real data, thread
//! runtime) or a simulated cluster run, from the shell.
//!
//! ```sh
//! fft3d-cli real --n 64 --p 4 --variant new
//! fft3d-cli sim  --n 512 --p 32 --platform hopper --variant fftw
//! fft3d-cli tune --n 256 --p 16 --platform umd
//! ```

use cfft::planner::Rigor;
use cfft::Direction;
use fft3d::real_env::{compare_with_serial, fft3_dist, local_test_slab};
use fft3d::serial::{fft3_serial, full_test_array};
use fft3d::{fft3_simulated, ProblemSpec, TuningParams, Variant};
use tuner::driver::{tune_new, DEFAULT_MAX_EVALS};

struct Args {
    n: usize,
    p: usize,
    platform: String,
    variant: Variant,
    verify: bool,
}

fn parse(mut raw: impl Iterator<Item = String>) -> (String, Args) {
    let mode = raw.next().unwrap_or_else(|| usage("missing mode"));
    let mut args = Args {
        n: 64,
        p: 4,
        platform: "umd".into(),
        variant: Variant::New,
        verify: true,
    };
    while let Some(flag) = raw.next() {
        let mut val = || raw.next().unwrap_or_else(|| usage("missing value"));
        match flag.as_str() {
            "--n" => args.n = val().parse().unwrap_or_else(|_| usage("bad --n")),
            "--p" => args.p = val().parse().unwrap_or_else(|_| usage("bad --p")),
            "--platform" => args.platform = val(),
            "--variant" => {
                args.variant = match val().as_str() {
                    "new" => Variant::New,
                    "th" => Variant::Th,
                    "fftw" => Variant::Fftw,
                    other => usage(&format!("unknown variant {other}")),
                }
            }
            "--no-verify" => args.verify = false,
            other => usage(&format!("unknown flag {other}")),
        }
    }
    (mode, args)
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: fft3d-cli <real|sim|tune> [--n N] [--p P] \
         [--platform umd|hopper] [--variant new|th|fftw] [--no-verify]"
    );
    std::process::exit(2)
}

fn main() {
    let (mode, args) = parse(std::env::args().skip(1));
    let spec = ProblemSpec::cube(args.n, args.p);
    let params = TuningParams::seed(&spec);

    match mode.as_str() {
        "real" => {
            println!(
                "real run: {}³ on {} ranks, {:?}",
                args.n, args.p, args.variant
            );
            let reference = if args.verify {
                let mut r = full_test_array(spec.nx, spec.ny, spec.nz);
                fft3_serial(&mut r, spec.nx, spec.ny, spec.nz, Direction::Forward);
                Some(std::sync::Arc::new(r))
            } else {
                None
            };
            let variant = args.variant;
            let results = mpisim::run(spec.p, move |comm| {
                let input = local_test_slab(&spec, comm.rank());
                let t0 = std::time::Instant::now();
                let out = fft3_dist(
                    &comm,
                    spec,
                    variant,
                    params,
                    Direction::Forward,
                    Rigor::Estimate,
                    &input,
                );
                let wall = t0.elapsed().as_secs_f64();
                let err = reference
                    .as_ref()
                    .map(|r| compare_with_serial(&spec, comm.rank(), &out, r));
                (wall, err, out.stats.steps)
            });
            let slowest = results.iter().map(|r| r.0).fold(0.0, f64::max);
            println!("wall time (slowest rank): {slowest:.4}s");
            println!("rank 0 breakdown:\n{}", results[0].2);
            if let Some(err) = results
                .iter()
                .filter_map(|r| r.1)
                .fold(None, |a: Option<f64>, e| Some(a.map_or(e, |x| x.max(e))))
            {
                println!("max |distributed − serial| = {err:.3e}");
                assert!(err < 1e-8 * spec.len() as f64, "verification failed");
                println!("verified ✓");
            }
        }
        "sim" => {
            let platform =
                simnet::model::by_name(&args.platform).unwrap_or_else(|| usage("unknown platform"));
            println!(
                "simulated run: {}³ on {} ranks of {}, {:?}",
                args.n, args.p, platform.name, args.variant
            );
            let rep = fft3_simulated(platform, spec, args.variant, params, false);
            println!("modeled time: {:.4}s", rep.time);
            println!("breakdown:\n{}", rep.steps);
        }
        "tune" => {
            let platform =
                simnet::model::by_name(&args.platform).unwrap_or_else(|| usage("unknown platform"));
            println!(
                "tuning NEW: {}³ on {} ranks of {}",
                args.n, args.p, platform.name
            );
            let result = tune_new(
                &spec,
                |p| fft3_simulated(platform.clone(), spec, Variant::New, *p, true).time,
                DEFAULT_MAX_EVALS,
            );
            println!("best configuration: {:?}", result.best);
            println!(
                "objective {:.4}s after {} executed configurations ({:.1}s tuning cost)",
                result.best_value, result.executed, result.tuning_cost
            );
        }
        other => usage(&format!("unknown mode {other}")),
    }
}
