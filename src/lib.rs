//! # fft3d-repro — reproduction of "Designing and Auto-Tuning Parallel 3-D
//! FFT for Computation-Communication Overlap" (PPoPP 2014)
//!
//! This meta-crate re-exports the workspace members and provides the glue
//! helpers the `examples/` binaries share. Start with:
//!
//! * [`fft3d`] — the overlapped, auto-tunable distributed 3-D FFT;
//! * [`cfft`] — the serial FFT substrate;
//! * [`mpisim`] — the MPI-semantics thread runtime (real data);
//! * [`simnet`] — the calibrated cluster simulator;
//! * [`tuner`] — the Nelder–Mead auto-tuner.
//!
//! See README.md for a tour and DESIGN.md for the paper-to-code map.

pub use cfft;
pub use fft3d;
pub use mpisim;
pub use simnet;
pub use tuner;

use cfft::Complex64;
use fft3d::decomp::Decomp;
use fft3d::real_env::{OutLayout, RunOutput};
use fft3d::ProblemSpec;
use mpisim::Comm;

/// Gathers every rank's y-slab output into the full `x-y-z` array,
/// delivered to all ranks.
///
/// Convenience for examples and round-trip tests at laptop scale; real
/// applications keep data distributed.
pub fn gather_full(comm: &Comm, spec: &ProblemSpec, out: &RunOutput) -> Vec<Complex64> {
    let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
    let contributions = comm.allgather(&out.data);
    // Layouts may differ per rank only if specs differ — they don't; use
    // the caller's.
    let mut full = vec![Complex64::ZERO; spec.len()];
    let mut offset = 0;
    for r in 0..spec.p {
        let nyl = decomp.y.count(r);
        let yoff = decomp.y.offset(r);
        let len = spec.nz * nyl * spec.nx;
        let slab = &contributions[offset..offset + len];
        for z in 0..spec.nz {
            for yl in 0..nyl {
                for x in 0..spec.nx {
                    let v = match out.layout {
                        OutLayout::Zyx => slab[(z * nyl + yl) * spec.nx + x],
                        OutLayout::Yzx => slab[(yl * spec.nz + z) * spec.nx + x],
                    };
                    full[(x * spec.ny + (yoff + yl)) * spec.nz + z] = v;
                }
            }
        }
        offset += len;
    }
    full
}

/// Extracts this rank's x-slab (in `x-y-z` layout) from a full array —
/// the inverse of [`gather_full`]'s assembly, used to chain transforms.
pub fn extract_slab(full: &[Complex64], spec: &ProblemSpec, rank: usize) -> Vec<Complex64> {
    let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
    let nxl = decomp.x.count(rank);
    let xoff = decomp.x.offset(rank);
    let mut slab = Vec::with_capacity(nxl * spec.ny * spec.nz);
    for xl in 0..nxl {
        for y in 0..spec.ny {
            for z in 0..spec.nz {
                slab.push(full[((xoff + xl) * spec.ny + y) * spec.nz + z]);
            }
        }
    }
    slab
}

/// Angular wavenumber for bin `k` of an `n`-point DFT on a domain of
/// length `2π`: the symmetric frequency `k` or `k − n`.
pub fn wavenumber(k: usize, n: usize) -> f64 {
    if k <= n / 2 {
        k as f64
    } else {
        k as f64 - n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfft::planner::Rigor;
    use cfft::Direction;
    use fft3d::real_env::{fft3_dist, local_test_slab};
    use fft3d::serial::{fft3_serial, full_test_array};
    use fft3d::{TuningParams, Variant};

    #[test]
    fn gather_full_reassembles_the_reference() {
        let spec = ProblemSpec::cube(8, 2);
        let params = TuningParams::seed(&spec);
        let mut reference = full_test_array(8, 8, 8);
        fft3_serial(&mut reference, 8, 8, 8, Direction::Forward);

        let fulls = mpisim::run(spec.p, move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            let out = fft3_dist(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &input,
            );
            gather_full(&comm, &spec, &out)
        });
        for full in fulls {
            let err = cfft::complex::max_abs_diff(&full, &reference);
            assert!(err < 1e-8, "err={err}");
        }
    }

    #[test]
    fn extract_slab_inverts_generation() {
        let spec = ProblemSpec::cube(6, 3);
        let full = full_test_array(6, 6, 6);
        for r in 0..spec.p {
            let slab = extract_slab(&full, &spec, r);
            assert_eq!(slab, local_test_slab(&spec, r));
        }
    }

    #[test]
    fn wavenumbers_are_symmetric() {
        assert_eq!(wavenumber(0, 8), 0.0);
        assert_eq!(wavenumber(4, 8), 4.0);
        assert_eq!(wavenumber(5, 8), -3.0);
        assert_eq!(wavenumber(7, 8), -1.0);
    }
}
