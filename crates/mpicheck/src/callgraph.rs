//! Workspace call graph and transitive effect closure.
//!
//! Summaries ([`FnSummary`]) give each function's *direct* operations and
//! call edges; the checks need to know what a call site does
//! *transitively* — `ladder.wait_recover(env, tile, req)` completes a
//! request because `wait_recover`'s body (eventually) calls `.wait(…)`,
//! and `cancel_all(env, &mut inflight, e)` disposes of every in-flight
//! request two frames down.
//!
//! Resolution is by bare name against the set of workspace functions:
//! same-named functions (trait methods, the two backends' `post_a2a`)
//! merge their effects. That is deliberately conservative in the
//! *suppressing* direction — a call that might wait/cancel/free counts as
//! doing so, so the path checks under-report rather than false-positive
//! across naming collisions.

use crate::summary::{Event, FnSummary, Node, OpKind};
use std::collections::{BTreeSet, HashMap};

/// Transitive effect set of a function (or merged set of same-named
/// functions): every [`OpKind`] reachable from its body through workspace
/// calls.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Effects {
    /// Reachable operation kinds.
    pub ops: BTreeSet<OpKind>,
}

impl Effects {
    /// Does the effect set include `kind`?
    pub fn has(&self, kind: OpKind) -> bool {
        self.ops.contains(&kind)
    }

    /// Reachable collective kinds (the SL006 comparison set).
    pub fn collectives(&self) -> BTreeSet<OpKind> {
        self.ops
            .iter()
            .copied()
            .filter(|k| k.is_collective())
            .collect()
    }
}

/// Name-keyed transitive effects for the whole workspace.
#[derive(Debug, Default)]
pub struct CallGraph {
    effects: HashMap<String, Effects>,
}

impl CallGraph {
    /// Effects of calling `name`; empty for functions outside the
    /// workspace (std, vendored shims), which contribute nothing.
    pub fn effects_of(&self, name: &str) -> Effects {
        self.effects.get(name).cloned().unwrap_or_default()
    }

    /// Number of distinct function names in the graph.
    pub fn len(&self) -> usize {
        self.effects.len()
    }

    /// `true` when the graph has no functions.
    pub fn is_empty(&self) -> bool {
        self.effects.is_empty()
    }
}

/// Collects direct ops and call edges from a body.
fn direct(node: &Node, ops: &mut BTreeSet<OpKind>, calls: &mut BTreeSet<String>) {
    match node {
        Node::Stmt(s) => {
            for e in &s.events {
                match e {
                    Event::Op { kind, .. } => {
                        ops.insert(*kind);
                    }
                    Event::Call { name, .. } => {
                        calls.insert(name.clone());
                    }
                    _ => {}
                }
            }
        }
        Node::Seq(items) => items.iter().for_each(|n| direct(n, ops, calls)),
        Node::Branch { cond, arms, .. } => {
            for e in &cond.events {
                match e {
                    Event::Op { kind, .. } => {
                        ops.insert(*kind);
                    }
                    Event::Call { name, .. } => {
                        calls.insert(name.clone());
                    }
                    _ => {}
                }
            }
            arms.iter().for_each(|n| direct(n, ops, calls));
        }
        Node::Loop { header, body } => {
            for e in &header.events {
                match e {
                    Event::Op { kind, .. } => {
                        ops.insert(*kind);
                    }
                    Event::Call { name, .. } => {
                        calls.insert(name.clone());
                    }
                    _ => {}
                }
            }
            direct(body, ops, calls);
        }
    }
}

/// Builds the transitive effect closure over every summary in the
/// workspace (tests included: a test helper shadowing a library name only
/// widens effects, which errs toward suppression, never toward a false
/// finding).
pub fn build(fns: &[FnSummary]) -> CallGraph {
    let mut ops_by_name: HashMap<String, BTreeSet<OpKind>> = HashMap::new();
    let mut calls_by_name: HashMap<String, BTreeSet<String>> = HashMap::new();
    for f in fns {
        let mut ops = BTreeSet::new();
        let mut calls = BTreeSet::new();
        direct(&f.body, &mut ops, &mut calls);
        ops_by_name.entry(f.name.clone()).or_default().extend(ops);
        calls_by_name
            .entry(f.name.clone())
            .or_default()
            .extend(calls);
    }
    // Fixpoint: propagate callee ops into callers until stable. Bounded by
    // (#names × #opkinds) insertions, so this always terminates quickly.
    let names: Vec<String> = ops_by_name.keys().cloned().collect();
    loop {
        let mut changed = false;
        for name in &names {
            let callees = calls_by_name.get(name).cloned().unwrap_or_default();
            let mut add = BTreeSet::new();
            for callee in &callees {
                if callee == name {
                    continue;
                }
                if let Some(callee_ops) = ops_by_name.get(callee) {
                    add.extend(callee_ops.iter().copied());
                }
            }
            if let Some(own) = ops_by_name.get_mut(name) {
                let before = own.len();
                own.extend(add);
                changed |= own.len() != before;
            }
        }
        if !changed {
            break;
        }
    }
    CallGraph {
        effects: ops_by_name
            .into_iter()
            .map(|(name, ops)| (name, Effects { ops }))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::summary::summarize;

    fn graph_of(src: &str) -> CallGraph {
        let lexed = lex(src);
        build(&summarize("x.rs", &lexed))
    }

    #[test]
    fn direct_effects_are_collected() {
        let g = graph_of("fn f(c: &C) { c.barrier(); c.agree(1); }");
        let e = g.effects_of("f");
        assert!(e.has(OpKind::Barrier));
        assert!(e.has(OpKind::Agree));
        assert!(!e.has(OpKind::Post));
    }

    #[test]
    fn effects_propagate_through_calls() {
        let g = graph_of(
            "fn leaf(c: &C) { c.wait(0, r); }\n\
             fn mid(c: &C) { leaf(c); }\n\
             fn top(c: &C) { mid(c); }",
        );
        assert!(g.effects_of("top").has(OpKind::Wait));
        assert!(g.effects_of("mid").has(OpKind::Wait));
    }

    #[test]
    fn recursion_terminates() {
        let g = graph_of("fn a(c: &C) { b(c); c.barrier(); }\nfn b(c: &C) { a(c); }");
        assert!(g.effects_of("b").has(OpKind::Barrier));
    }

    #[test]
    fn same_name_merges_conservatively() {
        let g = graph_of("fn go(c: &C) { c.wait(0, r); }\nfn go2(c: &C) { go(c); }");
        assert!(g.effects_of("go2").has(OpKind::Wait));
    }

    #[test]
    fn unknown_callee_contributes_nothing() {
        let g = graph_of("fn f() { println(x); }");
        assert!(g.effects_of("f").ops.is_empty());
        assert!(g.effects_of("no_such_fn").ops.is_empty());
    }
}
