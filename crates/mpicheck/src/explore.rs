//! Deterministic schedule exploration.
//!
//! Replays a closure over the mpisim runtime under many delivery
//! interleavings. Two schedule families:
//!
//! * **Random**: [`SchedConfig::random`] seeds — each delivery defers with
//!   probability `defer_prob`, decided by a hash of
//!   `(seed, src, dst, tag, nth-on-edge)`. Broad, cheap coverage.
//! * **Systematic** (DPOR-lite): [`SchedConfig::systematic`] — delivery
//!   decisions hash into `bits` classes; sweeping the deferral mask over
//!   `0..2^bits` enumerates every bounded combination of per-class delays,
//!   including patterns random sampling is unlikely to hit (e.g. "defer
//!   every round-3 message but nothing else").
//!
//! Determinism claim, stated precisely: the *perturbation pattern* — which
//! deliveries are deferred, and for how many receiver yield points — is a
//! pure function of the schedule descriptor, independent of thread timing.
//! The OS still interleaves threads underneath, so a descriptor denotes a
//! family of closely-related executions rather than a single one; in
//! practice a race surfaced by a descriptor re-surfaces under it, which is
//! what exploration needs.

use mpisim::{
    run_with_config, Backoff, CheckConfig, Comm, Finding, RunConfig, SchedConfig, Severity,
};
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::time::Instant;

/// What to explore and how hard.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// World size for every schedule.
    pub ranks: usize,
    /// Random-mode seeds to run.
    pub random_seeds: Range<u64>,
    /// Systematic-mode decision classes; all `2^bits` masks are swept.
    /// 0 disables the systematic pass.
    pub systematic_bits: u32,
    /// Deferral probability of the random schedules.
    pub defer_prob: f64,
    /// Maximum hold (receiver yield-point visits) per deferred delivery.
    pub max_hold: u32,
}

impl ExploreConfig {
    /// The acceptance-gate configuration: 4 ranks, 136 random seeds plus a
    /// full 6-bit systematic sweep (64 masks) — 200 schedules.
    pub fn quick() -> Self {
        ExploreConfig {
            ranks: 4,
            random_seeds: 0..136,
            systematic_bits: 6,
            defer_prob: 0.35,
            max_hold: 3,
        }
    }

    /// Number of schedules this configuration runs.
    pub fn schedules(&self) -> u64 {
        let random = self
            .random_seeds
            .end
            .saturating_sub(self.random_seeds.start);
        let systematic = if self.systematic_bits == 0 {
            0
        } else {
            1u64 << self.systematic_bits
        };
        random + systematic
    }

    /// Every schedule of the plan, in run order (random seeds first).
    pub fn plan(&self) -> Vec<SchedConfig> {
        let mut out: Vec<SchedConfig> = self
            .random_seeds
            .clone()
            .map(|seed| {
                let mut s = SchedConfig::random(seed);
                s.defer_prob = self.defer_prob;
                s.max_hold = self.max_hold;
                s
            })
            .collect();
        if self.systematic_bits > 0 {
            for mask in 0..(1u64 << self.systematic_bits) {
                let mut s = SchedConfig::systematic(mask, self.systematic_bits);
                s.max_hold = self.max_hold;
                out.push(s);
            }
        }
        out
    }
}

/// One schedule that did not come back clean.
#[derive(Debug)]
pub struct ScheduleFailure {
    /// Reproducible descriptor (`random(seed=…)` / `systematic(mask=…)`).
    pub schedule: String,
    /// Error-severity findings of the run.
    pub findings: Vec<Finding>,
    /// Panic message, when the run panicked rather than reporting.
    pub panic: Option<String>,
    /// Worst numerical deviation reported by the workload, if it measures
    /// one.
    pub max_err: Option<f64>,
}

/// Aggregate result of an exploration sweep.
#[derive(Debug)]
pub struct ExploreReport {
    /// Schedules executed.
    pub schedules_run: u64,
    /// Schedules that panicked, reported an error-severity finding, or
    /// exceeded the workload's numerical tolerance.
    pub failures: Vec<ScheduleFailure>,
    /// Info-severity findings observed across clean schedules (surfaced,
    /// not fatal — e.g. MC004 wildcard nondeterminism).
    pub info_findings: usize,
    /// Wall-clock of the sweep in seconds.
    pub wall: f64,
}

impl ExploreReport {
    /// `true` when every schedule came back clean.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    e.downcast_ref::<String>()
        .cloned()
        .or_else(|| e.downcast_ref::<&str>().map(|s| (*s).to_owned()))
        .unwrap_or_else(|| "opaque panic payload".to_owned())
}

/// Runs `workload` once per schedule in `cfg`'s plan, under mpisim's
/// checked mode, and collects every non-clean schedule. The workload
/// returns an optional per-rank "numerical error" which is compared against
/// `tolerance` (pass `f64::INFINITY` for correctness-by-panic workloads).
/// `progress` is called after every schedule with `(done, total)`.
pub fn explore<W>(
    cfg: &ExploreConfig,
    tolerance: f64,
    workload: W,
    progress: impl FnMut(u64, u64),
) -> ExploreReport
where
    W: Fn(Comm) -> Option<f64> + Send + Sync,
{
    let plan: Vec<(SchedConfig, faultplan::FaultPlan, String)> = cfg
        .plan()
        .into_iter()
        .map(|s| {
            let d = s.describe();
            (s, faultplan::FaultPlan::none(), d)
        })
        .collect();
    explore_impl(cfg.ranks, plan, tolerance, workload, progress)
}

/// The engine behind [`explore`] and [`explore_crash_recovery`]: one run
/// per `(schedule, fault plan)` entry, each validated the same way.
/// `expect_crashes` is the set of world ranks the plan is expected to kill;
/// a mismatch (e.g. a crash fault that never fired) fails the schedule.
fn explore_impl<W>(
    ranks: usize,
    plan: Vec<(SchedConfig, faultplan::FaultPlan, String)>,
    tolerance: f64,
    workload: W,
    mut progress: impl FnMut(u64, u64),
) -> ExploreReport
where
    W: Fn(Comm) -> Option<f64> + Send + Sync,
{
    let started = Instant::now();
    let total = plan.len() as u64;
    let mut failures = Vec::new();
    let mut info_findings = 0usize;
    for (i, (sched, faults, descriptor)) in plan.into_iter().enumerate() {
        let expect_crashes: Vec<usize> = (0..ranks)
            .filter_map(|r| faults.crash_at(r).map(|_| r))
            .collect();
        let run_cfg = RunConfig {
            faults,
            backoff: Backoff::checked(),
            check: Some(CheckConfig::with_sched(sched)),
        };
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_with_config(ranks, run_cfg, &workload)
        }));
        match outcome {
            Ok(out) => {
                let errors: Vec<Finding> = out.report.errors().cloned().collect();
                info_findings += out
                    .report
                    .findings
                    .iter()
                    .filter(|f| f.severity == Severity::Info)
                    .count();
                let max_err = out.results.as_ref().and_then(|rs| {
                    rs.iter()
                        .flatten()
                        .cloned()
                        .fold(None, |a: Option<f64>, b| Some(a.map_or(b, |a| a.max(b))))
                });
                let numerically_bad = max_err.is_some_and(|e| e > tolerance);
                let hung = out.results.is_none();
                let wrong_deaths = (out.crashed != expect_crashes).then(|| {
                    format!(
                        "injected-crash mismatch: expected dead ranks {expect_crashes:?}, \
                         observed {:?}",
                        out.crashed
                    )
                });
                if !errors.is_empty() || numerically_bad || hung || wrong_deaths.is_some() {
                    failures.push(ScheduleFailure {
                        schedule: descriptor,
                        findings: errors,
                        panic: wrong_deaths,
                        max_err,
                    });
                }
            }
            Err(e) => {
                failures.push(ScheduleFailure {
                    schedule: descriptor,
                    findings: Vec::new(),
                    panic: Some(panic_message(e)),
                    max_err: None,
                });
            }
        }
        progress(i as u64 + 1, total);
    }
    ExploreReport {
        schedules_run: total,
        failures,
        info_findings,
        wall: started.elapsed().as_secs_f64(),
    }
}

/// The acceptance workload: the paper's full overlapped pipeline (NEW
/// variant) on a small grid, every rank validating its output slab against
/// the serial reference transform. This is the workload `cargo xtask check`
/// sweeps ≥ 200 schedules over.
pub fn explore_pipeline(
    cfg: &ExploreConfig,
    grid: usize,
    progress: impl FnMut(u64, u64),
) -> ExploreReport {
    use cfft::planner::Rigor;
    use cfft::Direction;
    use fft3d::real_env::{compare_with_serial, local_test_slab, try_fft3_dist, Variant};
    use fft3d::serial::{fft3_serial, full_test_array};
    use fft3d::{ProblemSpec, TuningParams};
    use std::sync::Arc;

    let spec = ProblemSpec::cube(grid, cfg.ranks);
    // Two worker threads per rank so the schedule sweep also exercises the
    // intra-rank parallel kernels (their joins must stay race-free under
    // every interleaving, not just the default sequential path).
    let mut params = TuningParams::seed(&spec);
    params.threads = 2;
    let mut reference = full_test_array(spec.nx, spec.ny, spec.nz);
    fft3_serial(
        &mut reference,
        spec.nx,
        spec.ny,
        spec.nz,
        Direction::Forward,
    );
    let reference = Arc::new(reference);
    let tolerance = 1e-9 * (spec.len() as f64).max(1.0);

    explore(
        cfg,
        tolerance,
        move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            let out = try_fft3_dist(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &input,
            )
            .unwrap_or_else(|e| panic!("pipeline fault under exploration: {e}"));
            Some(compare_with_serial(&spec, comm.rank(), &out, &reference))
        },
        progress,
    )
}

/// The persistent-plan acceptance sweep: the session path — per-tile
/// `alltoallv_init`, then repeated start/test/wait cycles over the *same*
/// registered schedules, then `free` — under every delivery interleaving.
/// Each run executes one [`fft3d::FftSession`] three times: the first
/// execution initialises the plans, the later two reuse them, so every
/// schedule stresses execution restarts on long-lived collective state
/// (generation tagging, staging reuse, backoff reset). Checked mode rides
/// along: a plan dropped without `free` would surface MC006 and fail the
/// schedule, as would a steady-state execution that re-negotiated setup.
pub fn explore_persistent(
    cfg: &ExploreConfig,
    grid: usize,
    progress: impl FnMut(u64, u64),
) -> ExploreReport {
    use cfft::planner::Rigor;
    use cfft::Direction;
    use fft3d::real_env::{compare_with_serial, local_test_slab, Variant};
    use fft3d::serial::{fft3_serial, full_test_array};
    use fft3d::{FftSession, ProblemSpec, TuningParams};
    use std::sync::Arc;

    let spec = ProblemSpec::cube(grid, cfg.ranks);
    let params = TuningParams::seed(&spec);
    let mut reference = full_test_array(spec.nx, spec.ny, spec.nz);
    fft3_serial(
        &mut reference,
        spec.nx,
        spec.ny,
        spec.nz,
        Direction::Forward,
    );
    let reference = Arc::new(reference);
    let tolerance = 1e-9 * (spec.len() as f64).max(1.0);

    explore(
        cfg,
        tolerance,
        move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            let mut session = FftSession::new(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
            );
            let mut worst = 0.0f64;
            for exec in 0..3 {
                let out = session.execute(&input).unwrap_or_else(|e| {
                    panic!("persistent execution {exec} faulted under exploration: {e}")
                });
                if exec > 0 && out.exchange_setups != 0 {
                    panic!(
                        "execution {exec} re-negotiated {} exchange setups",
                        out.exchange_setups
                    );
                }
                worst = worst.max(compare_with_serial(&spec, comm.rank(), &out, &reference));
            }
            session.free();
            Some(worst)
        },
        progress,
    )
}

/// The pencil acceptance workload: the overlapped 2-D pencil backend on a
/// small grid — row *and* column subcommunicator `Ialltoall`s in flight
/// under every delivery interleaving — with each rank validating its
/// output pencil against the serial reference transform. Checked mode
/// rides along, so an unmatched post, a rank-divergent collective on a
/// subcommunicator, or a deadlock across the two exchange rounds surfaces
/// as an MC001–MC007 finding and fails the schedule.
pub fn explore_pencil(
    cfg: &ExploreConfig,
    grid_n: usize,
    progress: impl FnMut(u64, u64),
) -> ExploreReport {
    use cfft::Direction;
    use fft3d::serial::{fft3_serial, full_test_array};
    use fft3d::{
        compare_pencil_with_serial, pencil_seed, pencil_test_input, try_fft3_pencil_overlapped,
        PencilGrid, ProblemSpec,
    };
    use std::sync::Arc;

    let spec = ProblemSpec::cube(grid_n, cfg.ranks);
    let grid = PencilGrid::near_square(cfg.ranks);
    // Force a multi-tile window so both exchange rounds keep several
    // subcommunicator all-to-alls in flight per schedule.
    let mut params = pencil_seed(&spec, grid);
    params.t = 1;
    let mut reference = full_test_array(spec.nx, spec.ny, spec.nz);
    fft3_serial(
        &mut reference,
        spec.nx,
        spec.ny,
        spec.nz,
        Direction::Forward,
    );
    let reference = Arc::new(reference);
    let tolerance = 1e-9 * (spec.len() as f64).max(1.0);

    explore(
        cfg,
        tolerance,
        move |comm| {
            let input = pencil_test_input(&spec, grid, comm.rank());
            let out =
                try_fft3_pencil_overlapped(&comm, spec, grid, params, Direction::Forward, &input)
                    .unwrap_or_else(|e| panic!("pencil pipeline fault under exploration: {e}"));
            Some(compare_pencil_with_serial(
                &spec,
                grid,
                comm.rank(),
                &out.output,
                &reference,
            ))
        },
        progress,
    )
}

/// The pencil persistent-plan sweep: one [`fft3d::PencilSession`] executed
/// three times per schedule — per-tile `alltoallv_init` on the row *and*
/// column subcommunicators during the first execution, plan reuse on the
/// later two, then `free` — under every delivery interleaving. A
/// steady-state execution that re-negotiates setup, a plan leaked without
/// `free` (MC006), or an output that deviates from the serial oracle fails
/// the schedule.
pub fn explore_pencil_persistent(
    cfg: &ExploreConfig,
    grid_n: usize,
    progress: impl FnMut(u64, u64),
) -> ExploreReport {
    use cfft::Direction;
    use fft3d::serial::{fft3_serial, full_test_array};
    use fft3d::{
        compare_pencil_with_serial, pencil_seed, pencil_test_input, PencilGrid, PencilSession,
        ProblemSpec,
    };
    use std::sync::Arc;

    let spec = ProblemSpec::cube(grid_n, cfg.ranks);
    let grid = PencilGrid::near_square(cfg.ranks);
    let mut params = pencil_seed(&spec, grid);
    params.t = 1;
    let mut reference = full_test_array(spec.nx, spec.ny, spec.nz);
    fft3_serial(
        &mut reference,
        spec.nx,
        spec.ny,
        spec.nz,
        Direction::Forward,
    );
    let reference = Arc::new(reference);
    let tolerance = 1e-9 * (spec.len() as f64).max(1.0);

    explore(
        cfg,
        tolerance,
        move |comm| {
            let input = pencil_test_input(&spec, grid, comm.rank());
            let mut session = PencilSession::new(&comm, spec, grid, params, Direction::Forward)
                .unwrap_or_else(|e| panic!("pencil session refused under exploration: {e}"));
            let mut worst = 0.0f64;
            for exec in 0..3 {
                let out = session.execute(&input).unwrap_or_else(|e| {
                    panic!("pencil persistent execution {exec} faulted under exploration: {e}")
                });
                if exec > 0 && out.exchange_setups != 0 {
                    panic!(
                        "pencil execution {exec} re-negotiated {} exchange setups",
                        out.exchange_setups
                    );
                }
                worst = worst.max(compare_pencil_with_serial(
                    &spec,
                    grid,
                    comm.rank(),
                    &out.output,
                    &reference,
                ));
            }
            session.free();
            Some(worst)
        },
        progress,
    )
}

/// The recovery acceptance sweep: for every schedule in `cfg`'s plan, kill
/// `victim` at the first, middle, and last tile boundary (three fault plans
/// per schedule) and require the survivors to recover elastically — agree
/// on exactly `{victim}` dead, shrink to `ranks − 1`, re-decompose, and
/// produce a spectrum that is serial-exact on every surviving slab. A
/// survivor that hangs, mis-names the dead rank, or returns a wrong
/// spectrum fails the schedule; so does a crash fault that never fired.
pub fn explore_crash_recovery(
    cfg: &ExploreConfig,
    grid: usize,
    victim: usize,
    progress: impl FnMut(u64, u64),
) -> ExploreReport {
    use cfft::planner::Rigor;
    use cfft::Direction;
    use fft3d::real_env::{compare_with_serial, Variant};
    use fft3d::serial::{fft3_serial, full_test_array};
    use fft3d::trace::NoopRecorder;
    use fft3d::{run_recoverable, ProblemSpec, RecoverConfig, ReplicaSource, TuningParams};
    use std::sync::Arc;

    assert!(victim < cfg.ranks, "victim must be a world rank");
    let spec = ProblemSpec::cube(grid, cfg.ranks);
    let params = TuningParams::seed(&spec);
    let tiles = params.tiles(&spec);
    let mut crash_tiles = vec![0, tiles / 2, tiles.saturating_sub(1)];
    crash_tiles.dedup();

    // The survivors re-fetch the victim's lost input from a full replica;
    // the serial transform of that same replica is the oracle.
    let input = Arc::new(full_test_array(spec.nx, spec.ny, spec.nz));
    let source = ReplicaSource::new(Arc::clone(&input));
    let mut reference = (*input).clone();
    fft3_serial(
        &mut reference,
        spec.nx,
        spec.ny,
        spec.nz,
        Direction::Forward,
    );
    let reference = Arc::new(reference);
    let tolerance = 1e-9 * (spec.len() as f64).max(1.0);

    let mut plan = Vec::new();
    for (i, sched) in cfg.plan().into_iter().enumerate() {
        for &at_tile in &crash_tiles {
            let descriptor = format!("{}+crash(rank={victim},tile={at_tile})", sched.describe());
            let faults =
                faultplan::FaultPlan::seeded(0x5eed + i as u64).with_rank_crash(victim, at_tile);
            plan.push((sched, faults, descriptor));
        }
    }

    explore_impl(
        cfg.ranks,
        plan,
        tolerance,
        move |comm| {
            let mut recorder = NoopRecorder;
            let outcome = run_recoverable(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &source,
                &RecoverConfig::default(),
                &mut recorder,
            )
            .unwrap_or_else(|e| panic!("recovery failed under exploration: {e}"));
            assert_eq!(
                outcome.lost,
                vec![victim],
                "agreed failure set names the victim"
            );
            assert_eq!(outcome.spec.p, spec.p - 1, "world shrank by exactly one");
            Some(compare_with_serial(
                &outcome.spec,
                outcome.rank,
                &outcome.output,
                &reference,
            ))
        },
        progress,
    )
}

/// The data-integrity acceptance sweep: for every schedule in `cfg`'s plan,
/// run the overlapped pipeline under three fault families — no faults (the
/// control), seeded payload corruption on the wire (healed transparently by
/// the checksum-verified retransmit protocol), and a silent memory bit-flip
/// in `victim`'s packed staging buffer at the first, middle, and last tile
/// (caught by the resident hash and healed by re-packing from the pristine
/// input at the post point). The gate is *zero undetected corruptions*: a
/// rank whose spectrum deviates from the serial oracle, a bit-flip victim
/// that reports no heal, a clean rank that reports one, or an integrity
/// error that escapes healing all fail the schedule.
pub fn explore_corruption(
    cfg: &ExploreConfig,
    grid: usize,
    victim: usize,
    progress: impl FnMut(u64, u64),
) -> ExploreReport {
    use cfft::planner::Rigor;
    use cfft::Direction;
    use fft3d::real_env::{compare_with_serial, local_test_slab, try_fft3_dist_traced, Variant};
    use fft3d::serial::{fft3_serial, full_test_array};
    use fft3d::trace::NoopRecorder;
    use fft3d::{DegradeAction, ProblemSpec, Resilience, TuningParams};
    use std::sync::Arc;

    assert!(victim < cfg.ranks, "victim must be a world rank");
    let spec = ProblemSpec::cube(grid, cfg.ranks);
    let params = TuningParams::seed(&spec);
    let tiles = params.tiles(&spec);
    let mut flip_tiles = vec![0, tiles / 2, tiles.saturating_sub(1)];
    flip_tiles.dedup();

    let mut reference = full_test_array(spec.nx, spec.ny, spec.nz);
    fft3_serial(
        &mut reference,
        spec.nx,
        spec.ny,
        spec.nz,
        Direction::Forward,
    );
    let reference = Arc::new(reference);
    let tolerance = 1e-9 * (spec.len() as f64).max(1.0);

    let mut plan = Vec::new();
    for (i, sched) in cfg.plan().into_iter().enumerate() {
        let seed = 0xc0de + i as u64;
        plan.push((
            sched,
            faultplan::FaultPlan::none(),
            format!("{}+clean", sched.describe()),
        ));
        plan.push((
            sched,
            faultplan::FaultPlan::seeded(seed).with_payload_corruption(0.15, 8),
            format!("{}+payload(p=0.15)", sched.describe()),
        ));
        for &at_tile in &flip_tiles {
            plan.push((
                sched,
                faultplan::FaultPlan::seeded(seed).with_memory_bitflip(victim, at_tile),
                format!("{}+bitflip(rank={victim},tile={at_tile})", sched.describe()),
            ));
        }
    }

    explore_impl(
        cfg.ranks,
        plan,
        tolerance,
        move |comm| {
            // Side-effect-free plan probe: am I the bit-flip victim here?
            let flipped = (0..tiles).any(|t| comm.bitflip_point(t).is_some());
            let input = local_test_slab(&spec, comm.rank());
            let mut recorder = NoopRecorder;
            let out = try_fft3_dist_traced(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &input,
                &Resilience::default(),
                &mut recorder,
            )
            .unwrap_or_else(|e| panic!("integrity fault escaped healing: {e}"));
            if flipped {
                assert!(
                    out.recovery.corruptions_healed >= 1,
                    "bit-flip victim reported no heal"
                );
                assert!(
                    out.recovery
                        .actions
                        .iter()
                        .any(|a| matches!(a, DegradeAction::Retransmit)),
                    "victim healed without a retransmit: {:?}",
                    out.recovery.actions
                );
            } else {
                assert_eq!(
                    out.recovery.corruptions_healed, 0,
                    "clean rank reported a heal"
                );
            }
            Some(compare_with_serial(&spec, comm.rank(), &out, &reference))
        },
        progress,
    )
}

/// The service acceptance sweep: the co-scheduling shape of
/// `fft3d::service` on real collectives — a same-geometry job train
/// through one [`fft3d::FftSession`] (the shared persistent-plan path)
/// with a *foreign-geometry* tenant job (`try_fft3_dist` on a different
/// problem shape) interleaved between the train's executions, all on one
/// communicator under every delivery interleaving. Checked mode rides
/// along: cross-tenant plan interference (a foreign exchange matched
/// against a registered schedule), a leaked plan, or an output deviating
/// from either serial oracle fails the schedule.
pub fn explore_service(
    cfg: &ExploreConfig,
    grid: usize,
    progress: impl FnMut(u64, u64),
) -> ExploreReport {
    use cfft::planner::Rigor;
    use cfft::Direction;
    use fft3d::real_env::{compare_with_serial, local_test_slab, try_fft3_dist, Variant};
    use fft3d::serial::{fft3_serial, full_test_array};
    use fft3d::{FftSession, ProblemSpec, TuningParams};
    use std::sync::Arc;

    // Tenant A's job train: a cube, run twice through one session.
    let spec_a = ProblemSpec::cube(grid, cfg.ranks);
    let params_a = TuningParams::seed(&spec_a);
    // Tenant B's foreign geometry: double the z extent, so its tile
    // schedule and exchange volumes share nothing with A's plans.
    let spec_b = ProblemSpec {
        nz: 2 * grid,
        ..spec_a
    };
    let params_b = TuningParams::seed(&spec_b);
    let reference = |spec: &ProblemSpec| {
        let mut r = full_test_array(spec.nx, spec.ny, spec.nz);
        fft3_serial(&mut r, spec.nx, spec.ny, spec.nz, Direction::Forward);
        Arc::new(r)
    };
    let ref_a = reference(&spec_a);
    let ref_b = reference(&spec_b);
    let tolerance = 1e-9 * (spec_a.len().max(spec_b.len()) as f64).max(1.0);

    explore(
        cfg,
        tolerance,
        move |comm| {
            let input_a = local_test_slab(&spec_a, comm.rank());
            let mut session = FftSession::new(
                &comm,
                spec_a,
                Variant::New,
                params_a,
                Direction::Forward,
                Rigor::Estimate,
            );
            let mut worst = 0.0f64;
            let first = session
                .execute(&input_a)
                .unwrap_or_else(|e| panic!("job-train execution 1 faulted: {e}"));
            worst = worst.max(compare_with_serial(&spec_a, comm.rank(), &first, &ref_a));
            // The foreign tenant's job runs while A's plans stay
            // registered — the cross-tenant interleaving of the service.
            let input_b = local_test_slab(&spec_b, comm.rank());
            let other = try_fft3_dist(
                &comm,
                spec_b,
                Variant::New,
                params_b,
                Direction::Forward,
                Rigor::Estimate,
                &input_b,
            )
            .unwrap_or_else(|e| panic!("foreign-tenant job faulted: {e}"));
            worst = worst.max(compare_with_serial(&spec_b, comm.rank(), &other, &ref_b));
            let second = session
                .execute(&input_a)
                .unwrap_or_else(|e| panic!("job-train execution 2 faulted: {e}"));
            if second.exchange_setups != 0 {
                panic!(
                    "job train re-negotiated {} exchange setups after the foreign job",
                    second.exchange_setups
                );
            }
            worst = worst.max(compare_with_serial(&spec_a, comm.rank(), &second, &ref_a));
            session.free();
            Some(worst)
        },
        progress,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_counts_random_plus_systematic() {
        let cfg = ExploreConfig::quick();
        assert_eq!(cfg.schedules(), 200);
        assert_eq!(cfg.plan().len(), 200);
        let no_sys = ExploreConfig {
            systematic_bits: 0,
            ..ExploreConfig::quick()
        };
        assert_eq!(no_sys.schedules(), 136);
    }

    #[test]
    fn explore_smoke_allreduce_is_clean() {
        let cfg = ExploreConfig {
            ranks: 3,
            random_seeds: 0..6,
            systematic_bits: 2,
            defer_prob: 0.4,
            max_hold: 3,
        };
        let report = explore(
            &cfg,
            1e-12,
            |comm| {
                let sum = comm.allreduce_sum(&[comm.rank() as f64]);
                Some((sum[0] - 3.0).abs())
            },
            |_, _| {},
        );
        assert_eq!(report.schedules_run, 10);
        assert!(report.is_clean(), "{:?}", report.failures);
    }

    #[test]
    fn crash_recovery_sweep_is_clean_on_a_small_plan() {
        let cfg = ExploreConfig {
            ranks: 4,
            random_seeds: 0..2,
            systematic_bits: 0,
            defer_prob: 0.3,
            max_hold: 2,
        };
        let report = explore_crash_recovery(&cfg, 8, 1, |_, _| {});
        // 2 schedules × crash at {first, middle, last} tile.
        assert_eq!(report.schedules_run, 6);
        assert!(report.is_clean(), "{:?}", report.failures);
    }

    #[test]
    fn corruption_sweep_is_clean_on_a_small_plan() {
        let cfg = ExploreConfig {
            ranks: 4,
            random_seeds: 0..2,
            systematic_bits: 0,
            defer_prob: 0.3,
            max_hold: 2,
        };
        let report = explore_corruption(&cfg, 8, 1, |_, _| {});
        // 2 schedules × (clean + payload + bit-flip at {first, middle,
        // last} tile).
        assert_eq!(report.schedules_run, 10);
        assert!(report.is_clean(), "{:?}", report.failures);
    }

    #[test]
    fn persistent_sweep_is_clean_on_a_small_plan() {
        let cfg = ExploreConfig {
            ranks: 3,
            random_seeds: 0..3,
            systematic_bits: 1,
            defer_prob: 0.35,
            max_hold: 2,
        };
        let report = explore_persistent(&cfg, 6, |_, _| {});
        assert_eq!(report.schedules_run, 5);
        assert!(report.is_clean(), "{:?}", report.failures);
    }

    #[test]
    fn pencil_sweep_is_clean_on_a_small_plan() {
        let cfg = ExploreConfig {
            ranks: 4,
            random_seeds: 0..3,
            systematic_bits: 1,
            defer_prob: 0.35,
            max_hold: 2,
        };
        let report = explore_pencil(&cfg, 8, |_, _| {});
        assert_eq!(report.schedules_run, 5);
        assert!(report.is_clean(), "{:?}", report.failures);
    }

    #[test]
    fn pencil_persistent_sweep_is_clean_on_a_small_plan() {
        let cfg = ExploreConfig {
            ranks: 4,
            random_seeds: 0..3,
            systematic_bits: 1,
            defer_prob: 0.35,
            max_hold: 2,
        };
        let report = explore_pencil_persistent(&cfg, 8, |_, _| {});
        assert_eq!(report.schedules_run, 5);
        assert!(report.is_clean(), "{:?}", report.failures);
    }

    #[test]
    fn service_interleaving_survives_a_small_sweep() {
        let cfg = ExploreConfig {
            ranks: 4,
            random_seeds: 0..3,
            systematic_bits: 1,
            defer_prob: 0.35,
            max_hold: 2,
        };
        let report = explore_service(&cfg, 6, |_, _| {});
        assert_eq!(report.schedules_run, 5);
        assert!(report.is_clean(), "{:?}", report.failures);
    }

    #[test]
    fn explore_catches_an_unmatched_post() {
        let cfg = ExploreConfig {
            ranks: 2,
            random_seeds: 0..1,
            systematic_bits: 0,
            defer_prob: 0.0,
            max_hold: 1,
        };
        let report = explore(
            &cfg,
            f64::INFINITY,
            |comm| {
                if comm.rank() == 0 {
                    comm.send(&[1u8], 1, 9); // deliberately never received
                }
                comm.barrier();
                None
            },
            |_, _| {},
        );
        assert_eq!(report.failures.len(), 1);
        let f = &report.failures[0];
        assert!(f.findings.iter().any(|f| f.id.code() == "MC001"), "{f:?}");
    }
}
