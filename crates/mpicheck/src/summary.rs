//! Per-function collective-operation summaries.
//!
//! A lightweight recursive-descent pass over the [`lexer`](crate::lexer)
//! token stream that extracts, for every `fn` in a file, an ordered tree of
//! the things the path-sensitive checks reason about:
//!
//! * **collective operations** — `post_a2a` / `ialltoall(v)` posts,
//!   `wait` / `wait_timeout`, `cancel`, persistent `alltoallv_init` /
//!   `start` / `free`, `agree`, `revoke`, `shrink`, `barrier` — plus
//!   `rank()` reads (for rank-divergence taint);
//! * **branch structure** — `if` / `else` chains and `match` arms, with
//!   exhaustiveness, and loops (modelled as may-run-zero-times);
//! * **early exits** — `return` and the `?` operator;
//! * **call edges** — every `name(...)` / `.name(...)` call site, resolved
//!   against the workspace function set by the
//!   [`callgraph`](crate::callgraph) pass;
//! * **bindings and mentions** — `let x = …` bindings and later uses of
//!   `x`, which drive the request-obligation escape analysis (a request
//!   pushed into a window deque is someone else's to wait on; a request
//!   that is never mentioned again is leaked).
//!
//! The parser is forgiving by design: statements it cannot shape (nested
//! `mod` items, exotic macros) degrade to a linear scan of their tokens,
//! which still surfaces every operation and exit — only the intra-statement
//! branch structure is lost. It never panics on malformed input.

use crate::lexer::{Lexed, TokKind, Token};

/// A collective (or analysis-relevant) operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Non-blocking all-to-all post: `.post_a2a(`, `.ialltoall(`,
    /// `.ialltoallv(`.
    Post,
    /// Completion: `.wait(`, `.wait_timeout(`.
    Wait,
    /// Disposal of an in-flight request: `.cancel(`.
    Cancel,
    /// Persistent-plan setup: `.alltoallv_init(`, `.alltoall_init(`.
    Init,
    /// Persistent-plan execution: `.start(`.
    Start,
    /// Persistent-plan release: `.free(`.
    Free,
    /// Blocking barrier.
    Barrier,
    /// ULFM-style agreement (blocking collective).
    Agree,
    /// Communicator revocation (deliberately callable by a subset).
    Revoke,
    /// Communicator shrink (blocking collective).
    Shrink,
    /// `comm.rank()` read — the rank-divergence taint source.
    RankRead,
}

impl OpKind {
    /// Operations that are collective communication: every live rank of
    /// the communicator must execute them in the same order. `Revoke` is
    /// excluded (it is *designed* to be called by the subset that detects
    /// a failure), as is the local `RankRead`.
    pub fn is_collective(self) -> bool {
        !matches!(self, OpKind::Revoke | OpKind::RankRead)
    }

    /// Operations that block until every peer participates — issuing one
    /// while a non-blocking request is provably in flight on the same
    /// communicator is the classic static deadlock shape (SL009).
    pub fn is_blocking(self) -> bool {
        matches!(self, OpKind::Barrier | OpKind::Agree | OpKind::Shrink)
    }
}

/// One event inside a statement, in token order.
#[derive(Debug, Clone)]
pub enum Event {
    /// A recognised operation. `depth0` is true when the call site sits at
    /// the top level of the statement's expression (not nested inside
    /// another call's arguments or a struct literal), which is what makes
    /// a `let` binding of its result trackable.
    Op {
        /// Which operation.
        kind: OpKind,
        /// 1-based source line.
        line: usize,
        /// Top-level within the statement expression?
        depth0: bool,
    },
    /// A call site `name(...)` or `.name(...)`; resolved against the
    /// workspace function set later.
    Call {
        /// Callee name as written.
        name: String,
        /// 1-based source line.
        line: usize,
        /// Top-level within the statement expression?
        depth0: bool,
    },
    /// An identifier use (binding mentions drive escape analysis).
    Mention {
        /// Identifier text.
        name: String,
    },
    /// The `?` operator: the enclosing function may return here.
    MaybeExit {
        /// 1-based source line.
        line: usize,
    },
    /// A `return`: the enclosing function definitely returns (emitted at
    /// the end of its statement, after the returned expression's events).
    Return {
        /// 1-based source line.
        line: usize,
    },
}

/// One statement, linearised into events.
#[derive(Debug, Clone, Default)]
pub struct Stmt {
    /// Events in token order.
    pub events: Vec<Event>,
    /// `Some(name)` for a simple `let [mut] name = …;` binding.
    pub let_binding: Option<String>,
    /// `true` when the statement is a block's tail expression (no `;`):
    /// its value is the block's value, so a produced request escapes to
    /// the caller rather than being dropped.
    pub is_tail: bool,
    /// `true` when the statement contains a plain `=` assignment (the
    /// value is stored somewhere that outlives the statement).
    pub has_assign: bool,
    /// 1-based line of the statement's first token.
    pub line: usize,
}

/// A node of a function body.
#[derive(Debug, Clone)]
pub enum Node {
    /// Straight-line statement.
    Stmt(Stmt),
    /// Statement sequence / block.
    Seq(Vec<Node>),
    /// `if` / `match` branching. `cond` carries the condition or
    /// scrutinee's events (taint + operations); `exhaustive` is true when
    /// every path goes through some arm (`match`, or `if` with a final
    /// `else`).
    Branch {
        /// Condition / scrutinee events.
        cond: Stmt,
        /// Arm bodies.
        arms: Vec<Node>,
        /// Does some arm always run?
        exhaustive: bool,
        /// 1-based line of the `if` / `match` keyword.
        line: usize,
    },
    /// `for` / `while` / `loop` body: may run zero times. The header's
    /// events (iterator calls, conditions) are in `header`.
    Loop {
        /// Loop-header events.
        header: Stmt,
        /// Body.
        body: Box<Node>,
    },
}

/// Summary of one function.
#[derive(Debug, Clone)]
pub struct FnSummary {
    /// Function name as written (methods included, paths stripped).
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Parsed body.
    pub body: Node,
    /// Declared at or below the file's `#[cfg(test)]` boundary?
    pub is_test: bool,
}

/// Extracts every function summary from a lexed file.
pub fn summarize(file: &str, lexed: &Lexed) -> Vec<FnSummary> {
    let mut out = Vec::new();
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            if let Some(next) = parse_fn(file, lexed, i, &mut out) {
                i = next;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parses one `fn` starting at index `at` (the `fn` token). Returns the
/// index just past the body on success; `None` for `fn`-pointer types and
/// bodyless trait declarations (caller advances by one token).
fn parse_fn(file: &str, lexed: &Lexed, at: usize, out: &mut Vec<FnSummary>) -> Option<usize> {
    let toks = &lexed.tokens;
    let name_tok = toks.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None; // `fn(` pointer type
    }
    let name = name_tok.text.clone();
    let line = toks[at].line;
    // Scan to the body `{` (or `;` for a bodyless declaration) at
    // paren/bracket depth 0. Generics, arguments, return type, and where
    // clauses are skipped; const-generic braces inside <> are rare enough
    // to ignore.
    let mut j = at + 2;
    let mut depth = 0i32;
    loop {
        let t = toks.get(j)?;
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => break,
            ";" if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    let mut cur = j;
    let body = parse_block(file, lexed, &mut cur, out, 0);
    out.push(FnSummary {
        name,
        file: file.to_owned(),
        line,
        body,
        is_test: lexed.in_test(line),
    });
    Some(cur)
}

/// Recursion guard: beyond this nesting the parser degrades to linear
/// token consumption (no real code is this deep).
const MAX_DEPTH: usize = 64;

/// Parses a `{ … }` block; `cur` is at the `{` and ends just past the
/// matching `}`.
fn parse_block(
    file: &str,
    lexed: &Lexed,
    cur: &mut usize,
    fns: &mut Vec<FnSummary>,
    depth: usize,
) -> Node {
    let toks = &lexed.tokens;
    debug_assert!(toks.get(*cur).is_some_and(|t| t.is_punct("{")));
    *cur += 1; // `{`
    let mut items = Vec::new();
    while let Some(t) = toks.get(*cur) {
        if t.is_punct("}") {
            *cur += 1;
            return Node::Seq(items);
        }
        if t.is_punct(";") {
            *cur += 1;
            continue;
        }
        if depth >= MAX_DEPTH {
            items.push(parse_stmt(toks, cur));
            continue;
        }
        if t.is_punct("#") {
            skip_attribute(toks, cur);
            continue;
        }
        if t.is_ident("if") {
            items.push(parse_if(file, lexed, cur, fns, depth + 1));
            continue;
        }
        if t.is_ident("match") {
            items.push(parse_match(file, lexed, cur, fns, depth + 1));
            continue;
        }
        if t.is_ident("while") || t.is_ident("for") {
            let header = collect_until_block(toks, cur);
            if toks.get(*cur).is_some_and(|t| t.is_punct("{")) {
                let body = parse_block(file, lexed, cur, fns, depth + 1);
                items.push(Node::Loop {
                    header,
                    body: Box::new(body),
                });
            } else {
                items.push(Node::Stmt(header));
            }
            continue;
        }
        if t.is_ident("loop") {
            *cur += 1;
            if toks.get(*cur).is_some_and(|t| t.is_punct("{")) {
                let body = parse_block(file, lexed, cur, fns, depth + 1);
                items.push(Node::Loop {
                    header: Stmt::default(),
                    body: Box::new(body),
                });
            }
            continue;
        }
        if t.is_ident("unsafe") && toks.get(*cur + 1).is_some_and(|t| t.is_punct("{")) {
            *cur += 1;
            items.push(parse_block(file, lexed, cur, fns, depth + 1));
            continue;
        }
        if t.is_punct("{") {
            items.push(parse_block(file, lexed, cur, fns, depth + 1));
            continue;
        }
        if t.is_ident("fn") {
            // Nested function: its own summary, invisible to this body.
            match parse_fn(file, lexed, *cur, fns) {
                Some(next) => *cur = next,
                None => *cur += 1,
            }
            continue;
        }
        items.push(parse_stmt(toks, cur));
    }
    Node::Seq(items) // unterminated block: EOF recovery
}

/// Skips `#[…]` / `#![…]` attributes.
fn skip_attribute(toks: &[Token], cur: &mut usize) {
    *cur += 1; // `#`
    if toks.get(*cur).is_some_and(|t| t.is_punct("!")) {
        *cur += 1;
    }
    if toks.get(*cur).is_some_and(|t| t.is_punct("[")) {
        let mut depth = 0i32;
        while let Some(t) = toks.get(*cur) {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        *cur += 1;
                        return;
                    }
                }
                _ => {}
            }
            *cur += 1;
        }
    }
}

/// Parses `if cond { … } [else if …]* [else { … }]`.
fn parse_if(
    file: &str,
    lexed: &Lexed,
    cur: &mut usize,
    fns: &mut Vec<FnSummary>,
    depth: usize,
) -> Node {
    let toks = &lexed.tokens;
    let line = toks[*cur].line;
    *cur += 1; // `if`
    let cond = collect_until_block(toks, cur);
    let mut arms = Vec::new();
    let mut exhaustive = false;
    if toks.get(*cur).is_some_and(|t| t.is_punct("{")) {
        arms.push(parse_block(file, lexed, cur, fns, depth));
    }
    if toks.get(*cur).is_some_and(|t| t.is_ident("else")) {
        *cur += 1;
        if toks.get(*cur).is_some_and(|t| t.is_ident("if")) {
            let nested = parse_if(file, lexed, cur, fns, depth);
            if let Node::Branch {
                exhaustive: inner, ..
            } = &nested
            {
                exhaustive = *inner;
            }
            arms.push(nested);
        } else if toks.get(*cur).is_some_and(|t| t.is_punct("{")) {
            arms.push(parse_block(file, lexed, cur, fns, depth));
            exhaustive = true;
        }
    }
    Node::Branch {
        cond,
        arms,
        exhaustive,
        line,
    }
}

/// Parses `match scrutinee { pat => body, … }`.
fn parse_match(
    file: &str,
    lexed: &Lexed,
    cur: &mut usize,
    fns: &mut Vec<FnSummary>,
    depth: usize,
) -> Node {
    let toks = &lexed.tokens;
    let line = toks[*cur].line;
    *cur += 1; // `match`
    let cond = collect_until_block(toks, cur);
    let mut arms = Vec::new();
    if toks.get(*cur).is_some_and(|t| t.is_punct("{")) {
        *cur += 1;
        while let Some(t) = toks.get(*cur) {
            if t.is_punct("}") {
                *cur += 1;
                break;
            }
            if t.is_punct(",") || t.is_punct("|") {
                *cur += 1;
                continue;
            }
            // Pattern (may contain struct braces): skip to `=>` at depth 0.
            let mut pdepth = 0i32;
            let mut ok = false;
            while let Some(t) = toks.get(*cur) {
                match t.text.as_str() {
                    "(" | "[" | "{" => pdepth += 1,
                    ")" | "]" => pdepth -= 1,
                    "}" if pdepth > 0 => pdepth -= 1,
                    "}" => break, // stray close: match body end
                    "=>" if pdepth == 0 => {
                        *cur += 1;
                        ok = true;
                        break;
                    }
                    _ => {}
                }
                *cur += 1;
            }
            if !ok {
                break;
            }
            // Arm body: block, or expression up to `,` at depth 0.
            if toks.get(*cur).is_some_and(|t| t.is_punct("{")) {
                arms.push(parse_block(file, lexed, cur, fns, depth));
            } else {
                arms.push(Node::Stmt(collect_expr_arm(toks, cur)));
            }
        }
    }
    Node::Branch {
        cond,
        arms,
        exhaustive: true,
        line,
    }
}

/// Collects tokens up to (not including) the next `{` at paren/bracket
/// depth 0 — an `if`/`while`/`for`/`match` header — as a linearised Stmt.
fn collect_until_block(toks: &[Token], cur: &mut usize) -> Stmt {
    let start = *cur;
    let mut depth = 0i32;
    while let Some(t) = toks.get(*cur) {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth <= 0 => break,
            "{" => depth += 1,
            "}" => depth -= 1,
            _ => {}
        }
        *cur += 1;
    }
    linearize(&toks[start..*cur], false)
}

/// Collects an expression match arm: tokens up to `,` at depth 0 or the
/// closing `}` of the match body (not consumed).
fn collect_expr_arm(toks: &[Token], cur: &mut usize) -> Stmt {
    let start = *cur;
    let mut depth = 0i32;
    while let Some(t) = toks.get(*cur) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" if depth > 0 => depth -= 1,
            "}" => break,
            "," if depth == 0 => break,
            _ => {}
        }
        *cur += 1;
    }
    linearize(&toks[start..*cur], false)
}

/// Collects one statement: tokens up to `;` at overall depth 0 (consumed)
/// or the enclosing block's `}` (not consumed — a tail expression).
/// Embedded block expressions (`let x = if … { … };`) are swallowed
/// whole and linearised.
fn parse_stmt(toks: &[Token], cur: &mut usize) -> Node {
    let start = *cur;
    let mut depth = 0i32;
    let mut tail = true;
    while let Some(t) = toks.get(*cur) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" if depth > 0 => depth -= 1,
            "}" => break, // enclosing block ends: tail expression
            ";" if depth == 0 => {
                tail = false;
                break;
            }
            _ => {}
        }
        *cur += 1;
    }
    let stmt = linearize(&toks[start..*cur], tail);
    if toks.get(*cur).is_some_and(|t| t.is_punct(";")) {
        *cur += 1;
    }
    Node::Stmt(stmt)
}

/// Operation name table for `.name(` method patterns.
fn method_op(name: &str) -> Option<OpKind> {
    Some(match name {
        "post_a2a" | "ialltoall" | "ialltoallv" => OpKind::Post,
        "wait" | "wait_timeout" => OpKind::Wait,
        "cancel" => OpKind::Cancel,
        "alltoallv_init" | "alltoall_init" => OpKind::Init,
        "start" => OpKind::Start,
        "free" => OpKind::Free,
        "barrier" => OpKind::Barrier,
        "agree" => OpKind::Agree,
        "revoke" => OpKind::Revoke,
        "shrink" => OpKind::Shrink,
        "rank" => OpKind::RankRead,
        _ => return None,
    })
}

/// Keywords never emitted as mentions or call names.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "mut"
            | "if"
            | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "in"
            | "return"
            | "break"
            | "continue"
            | "fn"
            | "move"
            | "ref"
            | "as"
            | "use"
            | "pub"
            | "self"
            | "Self"
            | "super"
            | "crate"
            | "where"
            | "impl"
            | "dyn"
            | "unsafe"
            | "await"
            | "async"
            | "const"
            | "static"
            | "struct"
            | "enum"
            | "trait"
            | "mod"
            | "type"
            | "true"
            | "false"
    )
}

/// Linearises a token slice into a [`Stmt`]: operations, call edges,
/// mentions, and exits, in token order (with `return` moved after its
/// expression's events, matching evaluation order).
fn linearize(toks: &[Token], is_tail: bool) -> Stmt {
    let mut stmt = Stmt {
        is_tail,
        line: toks.first().map(|t| t.line).unwrap_or(0),
        ..Stmt::default()
    };
    // Simple `let [mut] name = …` binding?
    let mut rhs_from = 0usize;
    if toks.first().is_some_and(|t| t.is_ident("let")) {
        let mut j = 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        if let Some(name_tok) = toks.get(j) {
            if name_tok.kind == TokKind::Ident && !is_keyword(&name_tok.text) {
                // Accept `= …` directly or after a `: Type` annotation
                // (skip to `=` at depth 0; `==` is fused so no ambiguity).
                let mut k = j + 1;
                let mut depth = 0i32;
                while let Some(t) = toks.get(k) {
                    match t.text.as_str() {
                        "(" | "[" | "{" | "<" => depth += 1,
                        ")" | "]" | "}" | ">" => depth -= 1,
                        "=" if depth == 0 => {
                            stmt.let_binding = Some(name_tok.text.clone());
                            rhs_from = k + 1;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
    }

    let mut return_line = None;
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth = (depth - 1).max(0),
            _ => {}
        }
        // Expression-top-level = paren depth 0 within the binding's RHS
        // (or the whole statement when there is no binding).
        let at_top = depth == 0 && i >= rhs_from;
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "return" => {
                    return_line = Some(t.line);
                    i += 1;
                    continue;
                }
                "=" => {}
                _ => {}
            }
            if is_keyword(&t.text) {
                i += 1;
                continue;
            }
            let prev_dot = i > 0 && toks[i - 1].is_punct(".");
            let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
            if next_paren {
                // `.name(` → possible operation + call edge; `name(` →
                // call edge only.
                if prev_dot {
                    if let Some(kind) = method_op(&t.text) {
                        // `rank` only counts with an empty argument list
                        // (`.rank()`), so `Range { .. }.rank(x)`-style
                        // homonyms don't taint.
                        let is_rank = kind == OpKind::RankRead;
                        if !is_rank || toks.get(i + 2).is_some_and(|n| n.is_punct(")")) {
                            stmt.events.push(Event::Op {
                                kind,
                                line: t.line,
                                depth0: at_top,
                            });
                        }
                    }
                }
                stmt.events.push(Event::Call {
                    name: t.text.clone(),
                    line: t.line,
                    depth0: at_top,
                });
            } else if t.text == "Instant" || t.text == "SystemTime" {
                stmt.events.push(Event::Mention {
                    name: t.text.clone(),
                });
            } else if !prev_dot {
                // Field accesses (`x.start`) are not mentions of `start`;
                // plain identifier uses are.
                stmt.events.push(Event::Mention {
                    name: t.text.clone(),
                });
            }
        } else if t.is_punct("?") {
            stmt.events.push(Event::MaybeExit { line: t.line });
        } else if t.is_punct("=")
            && i >= rhs_from
            && stmt.let_binding.is_none()
            && toks.get(i + 1).map(|n| n.text.as_str()) != Some("=")
        {
            stmt.has_assign = true;
        }
        i += 1;
    }
    if let Some(line) = return_line {
        stmt.events.push(Event::Return { line });
    }
    // The binding name itself is a definition, not a use: drop mention
    // events for it that came from the pattern position.
    if let Some(b) = stmt.let_binding.clone() {
        let mut seen_rhs = false;
        stmt.events.retain(|e| {
            if seen_rhs {
                return true;
            }
            if let Event::Mention { name } = e {
                if *name == b {
                    return false;
                }
            }
            seen_rhs = matches!(e, Event::Op { .. } | Event::Call { .. });
            true
        });
    }
    stmt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn one_fn(src: &str) -> FnSummary {
        let lexed = lex(src);
        let fns = summarize("x.rs", &lexed);
        assert!(!fns.is_empty(), "no fn parsed from {src}");
        fns.into_iter().next().expect("checked non-empty")
    }

    fn flat_ops(node: &Node, out: &mut Vec<OpKind>) {
        match node {
            Node::Stmt(s) => {
                for e in &s.events {
                    if let Event::Op { kind, .. } = e {
                        out.push(*kind);
                    }
                }
            }
            Node::Seq(items) => items.iter().for_each(|n| flat_ops(n, out)),
            Node::Branch { cond, arms, .. } => {
                for e in &cond.events {
                    if let Event::Op { kind, .. } = e {
                        out.push(*kind);
                    }
                }
                arms.iter().for_each(|n| flat_ops(n, out));
            }
            Node::Loop { header, body } => {
                for e in &header.events {
                    if let Event::Op { kind, .. } = e {
                        out.push(*kind);
                    }
                }
                flat_ops(body, out);
            }
        }
    }

    #[test]
    fn ops_are_extracted_in_order() {
        let f = one_fn(
            "fn f(env: &mut E) { let r = env.post_a2a(0); env.wait(0, r); comm.barrier(); }",
        );
        let mut ops = Vec::new();
        flat_ops(&f.body, &mut ops);
        assert_eq!(ops, vec![OpKind::Post, OpKind::Wait, OpKind::Barrier]);
    }

    #[test]
    fn let_binding_and_mentions() {
        let f = one_fn("fn f(env: &mut E) { let req = env.post_a2a(0); win.push(req); }");
        let Node::Seq(items) = &f.body else {
            panic!("expected Seq");
        };
        let Node::Stmt(s0) = &items[0] else {
            panic!("expected Stmt");
        };
        assert_eq!(s0.let_binding.as_deref(), Some("req"));
        let Node::Stmt(s1) = &items[1] else {
            panic!("expected Stmt");
        };
        assert!(s1
            .events
            .iter()
            .any(|e| matches!(e, Event::Mention { name } if name == "req")));
    }

    #[test]
    fn if_else_branch_structure() {
        let f = one_fn("fn f(c: &C) { if c.rank() == 0 { c.barrier(); } else { c.agree(1); } }");
        let Node::Seq(items) = &f.body else {
            panic!("expected Seq");
        };
        let Node::Branch {
            cond,
            arms,
            exhaustive,
            ..
        } = &items[0]
        else {
            panic!("expected Branch, got {:?}", items[0]);
        };
        assert!(*exhaustive);
        assert_eq!(arms.len(), 2);
        assert!(cond.events.iter().any(|e| matches!(
            e,
            Event::Op {
                kind: OpKind::RankRead,
                ..
            }
        )));
    }

    #[test]
    fn if_without_else_is_not_exhaustive() {
        let f = one_fn("fn f(c: &C) { if x { c.barrier(); } }");
        let Node::Seq(items) = &f.body else {
            panic!("expected Seq");
        };
        let Node::Branch { exhaustive, .. } = &items[0] else {
            panic!("expected Branch");
        };
        assert!(!exhaustive);
    }

    #[test]
    fn match_arms_parse_including_struct_patterns() {
        let f = one_fn(
            "fn f(c: &C, e: E) { match e { E::A { x, .. } => { c.barrier(); } E::B(y) => c.agree(y), _ => {} } }",
        );
        let Node::Seq(items) = &f.body else {
            panic!("expected Seq");
        };
        let Node::Branch {
            arms, exhaustive, ..
        } = &items[0]
        else {
            panic!("expected Branch");
        };
        assert!(*exhaustive);
        assert_eq!(arms.len(), 3);
        let mut ops = Vec::new();
        flat_ops(&arms[1], &mut ops);
        assert_eq!(ops, vec![OpKind::Agree]);
    }

    #[test]
    fn question_mark_and_return_are_exits() {
        let f = one_fn("fn f(env: &mut E) -> R<()> { env.step(0)?; return Ok(()); }");
        let Node::Seq(items) = &f.body else {
            panic!("expected Seq");
        };
        let Node::Stmt(s0) = &items[0] else {
            panic!("expected Stmt");
        };
        assert!(s0
            .events
            .iter()
            .any(|e| matches!(e, Event::MaybeExit { .. })));
        let Node::Stmt(s1) = &items[1] else {
            panic!("expected Stmt");
        };
        assert!(matches!(s1.events.last(), Some(Event::Return { .. })));
    }

    #[test]
    fn tail_expression_is_marked() {
        let f = one_fn("fn f(env: &mut E) -> Req { env.post_a2a(0) }");
        let Node::Seq(items) = &f.body else {
            panic!("expected Seq");
        };
        let Node::Stmt(s) = &items[0] else {
            panic!("expected Stmt");
        };
        assert!(s.is_tail);
    }

    #[test]
    fn nested_call_is_not_depth0() {
        let f = one_fn("fn f(env: &mut E) { win.push((0, env.post_a2a(0))); }");
        let Node::Seq(items) = &f.body else {
            panic!("expected Seq");
        };
        let Node::Stmt(s) = &items[0] else {
            panic!("expected Stmt");
        };
        let post = s
            .events
            .iter()
            .find_map(|e| match e {
                Event::Op {
                    kind: OpKind::Post,
                    depth0,
                    ..
                } => Some(*depth0),
                _ => None,
            })
            .expect("post op present");
        assert!(!post);
    }

    #[test]
    fn loops_wrap_bodies() {
        let f =
            one_fn("fn f(c: &C) { for i in 0..k { c.barrier(); } while go() { } loop { break; } }");
        let Node::Seq(items) = &f.body else {
            panic!("expected Seq");
        };
        assert!(matches!(items[0], Node::Loop { .. }));
        assert!(matches!(items[1], Node::Loop { .. }));
        assert!(matches!(items[2], Node::Loop { .. }));
    }

    #[test]
    fn field_access_start_is_not_an_op() {
        let f = one_fn("fn f(r: Range) -> usize { let s = r.start; s }");
        let mut ops = Vec::new();
        flat_ops(&f.body, &mut ops);
        assert!(ops.is_empty());
    }

    #[test]
    fn nested_fn_gets_its_own_summary() {
        let lexed = lex("fn outer() { fn inner(c: &C) { c.barrier(); } inner(); }");
        let fns = summarize("x.rs", &lexed);
        assert_eq!(fns.len(), 2);
        let inner = fns.iter().find(|f| f.name == "inner").expect("inner fn");
        let mut ops = Vec::new();
        flat_ops(&inner.body, &mut ops);
        assert_eq!(ops, vec![OpKind::Barrier]);
        let outer = fns.iter().find(|f| f.name == "outer").expect("outer fn");
        let mut ops = Vec::new();
        flat_ops(&outer.body, &mut ops);
        assert!(ops.is_empty());
    }

    #[test]
    fn test_boundary_marks_fns() {
        let lexed = lex("fn a() {}\n#[cfg(test)]\nmod tests { fn b() {} }\n");
        let fns = summarize("x.rs", &lexed);
        assert!(!fns.iter().find(|f| f.name == "a").expect("a").is_test);
        assert!(fns.iter().find(|f| f.name == "b").expect("b").is_test);
    }
}
