//! # mpicheck — verification harness for the mpisim runtime and the
//! overlapped 3-D FFT pipeline
//!
//! Three cooperating passes (DESIGN.md §12):
//!
//! 1. **Deterministic schedule exploration** ([`explore`]): replays a world
//!    under many message-delivery interleavings — seeded random schedules
//!    plus a bounded systematic (DPOR-lite) mask sweep — using mpisim's
//!    virtual scheduler. A failing schedule is identified by a descriptor
//!    (`random(seed=…)` / `systematic(mask=…)`) that reproduces it exactly.
//! 2. **Happens-before verification**: runs inherit mpisim's checked mode —
//!    vector clocks, wait-for-graph deadlock detection naming the cycle of
//!    ranks, and the runtime lint catalogue `MC001`–`MC005`.
//! 3. **Source lints** ([`srclint`]): a token-aware, path-sensitive static
//!    analysis of the workspace's non-test code enforcing project
//!    invariants `SL001`–`SL014` — a real [`lexer`] feeds per-function
//!    collective-operation [`summary`]s and a workspace [`callgraph`], on
//!    which interprocedural checks (rank-divergent collectives, leaked
//!    posts/plans, static deadlock shapes) run at `cargo xtask lint` time.
//!
//! The exploration pass also sweeps *faulty* worlds: [`explore_crash_recovery`]
//! kills one rank per run (at the first, middle, and last tile boundary,
//! across every schedule) and requires the survivors' ULFM-style
//! revoke/shrink/agree recovery to come back serial-exact.
//!
//! Driven by `cargo xtask check` (see README); CI runs the exploration
//! suite over a seed matrix.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod callgraph;
pub mod explore;
pub mod lexer;
pub mod srclint;
pub mod summary;

pub use explore::{
    explore, explore_corruption, explore_crash_recovery, explore_pencil, explore_pencil_persistent,
    explore_persistent, explore_pipeline, explore_service, ExploreConfig, ExploreReport,
    ScheduleFailure,
};
pub use mpisim::{
    Backoff, CheckConfig, CheckOutcome, CheckReport, Finding, LintId, SchedConfig, SchedMode,
    Severity,
};
pub use srclint::{
    lint_sources, lint_workspace, render_json, render_sarif, render_text, update_baseline,
    LintReport, LintSeverity, SrcFinding, SrcLintId, ALL_LINTS,
};
