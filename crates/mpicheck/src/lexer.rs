//! A small, dependency-free Rust lexer feeding the source-lint analysis.
//!
//! The line-regex lints of earlier revisions matched inside string literals
//! and comments; everything downstream (the per-function summaries, the
//! call graph, the `SL0xx` checks) now consumes this token stream instead,
//! so prose like "call `.unwrap()` here" can never fire a lint again.
//!
//! The lexer handles the parts of the grammar that matter for *not
//! mis-tokenizing*: line and (nested) block comments, string / raw-string /
//! byte-string literals with escapes, char literals vs. lifetimes
//! (`'a'` vs. `'a`), numeric literals with suffixes, raw identifiers, and
//! multi-character operators. It is deliberately lossy about everything
//! else — downstream passes see identifiers, literals, and punctuation
//! with 1-based line numbers, which is all the checks need.
//!
//! Comments are not discarded: they are scanned for `mpicheck:allow(...)`
//! suppression directives (see [`AllowDirective`]), which since this
//! revision must carry a trailing justification.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `wait`, `r#match`, …).
    Ident,
    /// Lifetime (`'a`, `'static`), quote stripped.
    Lifetime,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`); text is
    /// not retained.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Integer literal, original text retained (`42`, `0xfe_u32`).
    Int,
    /// Float literal, original text retained (`1.0`, `2e-3`).
    Float,
    /// Punctuation; multi-character operators the checks care about
    /// (`::`, `==`, `!=`, `=>`, `->`, `..`) are fused into one token.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Source text (empty for `Str`/`Char`, whose content is irrelevant).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Token {
    /// `true` for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` for punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A `mpicheck:allow(...)` directive found in a comment.
///
/// Syntax: `mpicheck:allow(SL0xx)` or `mpicheck:allow(SL0xx, SL0yy):
/// justification text` (with real lint codes — placeholders here keep this
/// doc comment from parsing as a directive). The justification is whatever non-empty text
/// follows the closing parenthesis (leading `:`, `—`, `-`, `.` separators
/// stripped); an allow without one is itself reported (`SL013`). A
/// directive suppresses matching findings on its own line and the line
/// below. Comments whose parenthesised list contains no well-formed
/// `SLnnn` code (prose like `SL00x`) are not directives at all.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// The `SLnnn` codes listed, e.g. `["SL001", "SL007"]`.
    pub codes: Vec<String>,
    /// 1-based line the directive text sits on.
    pub line: usize,
    /// Trailing justification, if any.
    pub justification: Option<String>,
}

/// Output of [`lex`]: the token stream plus the comment-derived metadata
/// the lint driver needs.
#[derive(Debug)]
pub struct Lexed {
    /// Every token, in source order.
    pub tokens: Vec<Token>,
    /// Every well-formed suppression directive found in comments.
    pub allows: Vec<AllowDirective>,
    /// 1-based line of the file's first `#[cfg(test)]` line (the repo
    /// convention keeps test modules at the end of a file); everything at
    /// or below it is test code. `usize::MAX` when absent.
    pub test_boundary: usize,
}

impl Lexed {
    /// `true` when `line` is at or below the test-module boundary.
    pub fn in_test(&self, line: usize) -> bool {
        line >= self.test_boundary
    }
}

/// Two-character operators fused into a single `Punct` token.
const TWO_CHAR_OPS: &[&str] = &["::", "==", "!=", "=>", "->", "..", "&&", "||", "<=", ">="];

/// Lexes `src` into tokens, allow directives, and the test boundary.
/// Malformed input (unterminated strings/comments) never panics; the lexer
/// consumes to end-of-file and returns what it has.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut allows = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    let test_boundary = src
        .lines()
        .position(|l| l.trim() == "#[cfg(test)]")
        .map(|p| p + 1)
        .unwrap_or(usize::MAX);

    while i < chars.len() {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            scan_comment(&text, line, &mut allows);
            continue;
        }
        // Block comment (nested).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            let text: String = chars[start..i.min(chars.len())].iter().collect();
            scan_comment(&text, start_line, &mut allows);
            continue;
        }
        // String literals, including raw/byte prefixes. A prefix ident
        // (`r`, `b`, `br`, `c`, `cr`) is only a prefix when hashes/quote
        // follow directly.
        if c == '"' {
            i = consume_string(&chars, i, &mut line);
            tokens.push(Token {
                kind: TokKind::Str,
                text: String::new(),
                line,
            });
            continue;
        }
        if (c == 'r' || c == 'b' || c == 'c') && is_string_prefix(&chars, i) {
            let start_line = line;
            i = consume_prefixed_string(&chars, i, &mut line);
            tokens.push(Token {
                kind: TokKind::Str,
                text: String::new(),
                line: start_line,
            });
            continue;
        }
        // Byte-char literal b'x'.
        if c == 'b' && chars.get(i + 1) == Some(&'\'') {
            i = consume_char_literal(&chars, i + 1);
            tokens.push(Token {
                kind: TokKind::Char,
                text: String::new(),
                line,
            });
            continue;
        }
        // Raw identifier r#ident.
        if c == 'r' && chars.get(i + 1) == Some(&'#') && ident_start(chars.get(i + 2)) {
            let start = i + 2;
            i = start;
            while i < chars.len() && ident_continue(chars[i]) {
                i += 1;
            }
            tokens.push(Token {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Identifier / keyword.
        if ident_start(Some(&c)) {
            let start = i;
            while i < chars.len() && ident_continue(chars[i]) {
                i += 1;
            }
            tokens.push(Token {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if chars.get(i + 1) == Some(&'\\')
                || (chars.get(i + 1).is_some() && chars.get(i + 2) == Some(&'\''))
            {
                i = consume_char_literal(&chars, i);
                tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
            } else {
                let start = i + 1;
                i = start;
                while i < chars.len() && ident_continue(chars[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let (end, kind) = consume_number(&chars, i);
            tokens.push(Token {
                kind,
                text: chars[i..end].iter().collect(),
                line,
            });
            i = end;
            continue;
        }
        // Punctuation; fuse the two-char operators the checks match on.
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        if TWO_CHAR_OPS.contains(&two.as_str()) {
            // `..=` — extend the range token so `=` isn't orphaned.
            let text = if two == ".." && chars.get(i + 2) == Some(&'=') {
                i += 3;
                "..=".to_owned()
            } else {
                i += 2;
                two
            };
            tokens.push(Token {
                kind: TokKind::Punct,
                text,
                line,
            });
            continue;
        }
        tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }

    Lexed {
        tokens,
        allows,
        test_boundary,
    }
}

fn ident_start(c: Option<&char>) -> bool {
    c.is_some_and(|&c| c.is_alphabetic() || c == '_')
}

fn ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// `true` when the ident starting at `i` is a string prefix (`r"`, `r#"`,
/// `b"`, `br"`, `c"`, …) rather than a plain identifier.
fn is_string_prefix(chars: &[char], i: usize) -> bool {
    let mut j = i;
    while j < chars.len() && matches!(chars[j], 'r' | 'b' | 'c') && j - i < 2 {
        j += 1;
    }
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    // At least one of r/b/c consumed, then optional hashes, then a quote —
    // and raw strings require the hashes to belong to an r/br/cr prefix.
    chars.get(j) == Some(&'"') && j > i
}

/// Consumes a plain `"…"` string starting at the opening quote; returns
/// the index past the closing quote. Tracks newlines in `line`.
fn consume_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i
}

/// Consumes a prefixed string (`r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, …)
/// starting at the prefix; returns the index past the closing delimiter.
fn consume_prefixed_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    let mut raw = false;
    while i < chars.len() && matches!(chars[i], 'r' | 'b' | 'c') {
        raw |= chars[i] == 'r';
        i += 1;
    }
    let mut hashes = 0usize;
    while i < chars.len() && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return i; // not actually a string; give up gracefully
    }
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' if !raw => i += 2,
            '"' => {
                let mut j = i + 1;
                let mut seen = 0usize;
                while seen < hashes && chars.get(j) == Some(&'#') {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    return j;
                }
                i += 1;
            }
            c => {
                if c == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i
}

/// Consumes a char literal starting at the opening `'`; returns the index
/// past the closing `'`.
fn consume_char_literal(chars: &[char], mut i: usize) -> usize {
    i += 1; // opening quote
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Consumes a numeric literal starting at a digit; returns (end index,
/// Int/Float classification). Handles `0x…`, separators, `1.5`, `2e-3`,
/// and type suffixes (`1.0f32`, `42u64`).
fn consume_number(chars: &[char], start: usize) -> (usize, TokKind) {
    let mut i = start;
    let mut float = false;
    // Radix prefix: everything after it is ident-class.
    if chars[i] == '0' && matches!(chars.get(i + 1), Some('x') | Some('o') | Some('b')) {
        i += 2;
        while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
        return (i, TokKind::Int);
    }
    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
        i += 1;
    }
    // Fractional part — but not `1..2` (range) or `1.method()`.
    if chars.get(i) == Some(&'.')
        && chars.get(i + 1) != Some(&'.')
        && chars.get(i + 1).is_none_or(|c| !ident_start(Some(c)))
    {
        float = true;
        i += 1;
        while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
            i += 1;
        }
    }
    // Exponent.
    if matches!(chars.get(i), Some('e') | Some('E')) {
        let mut j = i + 1;
        if matches!(chars.get(j), Some('+') | Some('-')) {
            j += 1;
        }
        if chars.get(j).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            i = j;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                i += 1;
            }
        }
    }
    // Type suffix (`u32`, `f64`, …).
    let suffix_start = i;
    while i < chars.len() && ident_continue(chars[i]) {
        i += 1;
    }
    let suffix: String = chars[suffix_start..i].iter().collect();
    if suffix.starts_with('f') {
        float = true;
    }
    (i, if float { TokKind::Float } else { TokKind::Int })
}

/// Scans one comment's text for `mpicheck:allow(...)` directives. The
/// directive's line accounts for newlines inside block comments.
fn scan_comment(text: &str, first_line: usize, out: &mut Vec<AllowDirective>) {
    let mut rest = text;
    let mut consumed = 0usize;
    const MARKER: &str = "mpicheck:allow(";
    while let Some(pos) = rest.find(MARKER) {
        let abs = consumed + pos;
        let line = first_line + text[..abs].matches('\n').count();
        let after = &rest[pos + MARKER.len()..];
        let Some(close) = after.find(')') else {
            break;
        };
        let codes: Vec<String> = after[..close]
            .split(',')
            .map(|c| c.trim().to_owned())
            .filter(|c| is_lint_code(c))
            .collect();
        if !codes.is_empty() {
            let tail = after[close + 1..]
                .lines()
                .next()
                .unwrap_or("")
                .trim_start_matches(|c: char| {
                    c.is_whitespace() || matches!(c, ':' | '-' | '.' | '—' | '–')
                })
                .trim();
            let justification = if tail.is_empty() {
                None
            } else {
                Some(tail.to_owned())
            };
            out.push(AllowDirective {
                codes,
                line,
                justification,
            });
        }
        let advance = pos + MARKER.len() + close + 1;
        consumed += advance;
        rest = &rest[advance..];
    }
}

/// `true` for a well-formed `SLnnn` lint code.
fn is_lint_code(s: &str) -> bool {
    s.len() == 5 && s.starts_with("SL") && s[2..].chars().all(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_idents() {
        let src = "// prose .unwrap() here\nlet s = \".unwrap()\"; /* nested /* .unwrap() */ */";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_and_hashes_are_opaque() {
        let src = "let s = r#\"contains \" and .unwrap()\"#; f();";
        assert!(idents(src).contains(&"f".to_owned()));
        assert!(!idents(src).contains(&"unwrap".to_owned()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }";
        let lx = lex(src);
        let lifetimes: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let lx = lex("let a = 42u32; let b = 1.5; let c = 2e-3; let d = 0..n; let e = 1f64;");
        let kinds: Vec<TokKind> = lx
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Int,
                TokKind::Float,
                TokKind::Float,
                TokKind::Int,
                TokKind::Float
            ]
        );
    }

    #[test]
    fn operators_fuse() {
        let lx = lex("a == b != c => d -> e :: f .. g ..= h");
        let puncts: Vec<String> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "=>", "->", "::", "..", "..="]);
    }

    #[test]
    fn lines_track_through_comments_and_strings() {
        let src = "a\n/* two\nlines */ b\n\"str\nacross\" c";
        let lx = lex(src);
        let find = |name: &str| {
            lx.tokens
                .iter()
                .find(|t| t.is_ident(name))
                .map(|t| t.line)
                .expect("token present")
        };
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 3);
        assert_eq!(find("c"), 5);
    }

    #[test]
    fn allow_directive_with_and_without_justification() {
        let lx = lex("// mpicheck:allow(SL001): fixture pattern\nx();\n// mpicheck:allow(SL002)\n");
        assert_eq!(lx.allows.len(), 2);
        assert_eq!(lx.allows[0].codes, vec!["SL001"]);
        assert_eq!(
            lx.allows[0].justification.as_deref(),
            Some("fixture pattern")
        );
        assert_eq!(lx.allows[0].line, 1);
        assert_eq!(lx.allows[1].line, 3);
        assert!(lx.allows[1].justification.is_none());
    }

    #[test]
    fn prose_codes_are_not_directives() {
        let lx = lex("//! suppressed with `mpicheck:allow(SL00x)` on the line\n");
        assert!(lx.allows.is_empty());
    }

    #[test]
    fn multi_code_directive_parses() {
        let lx = lex("// mpicheck:allow(SL001, SL007): both are fixture literals\n");
        assert_eq!(lx.allows[0].codes, vec!["SL001", "SL007"]);
    }

    #[test]
    fn test_boundary_is_found() {
        let lx = lex("fn a() {}\n#[cfg(test)]\nmod tests {}\n");
        assert_eq!(lx.test_boundary, 2);
        assert!(!lx.in_test(1));
        assert!(lx.in_test(2));
    }
}
