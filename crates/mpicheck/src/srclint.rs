//! Source-level lint pass (`SL001`–`SL014`): token-aware, path-sensitive,
//! and interprocedural.
//!
//! The pass is a pipeline (DESIGN.md §17):
//!
//! 1. [`lexer`](crate::lexer) tokenizes every first-party source file.
//!    Comments and string literals become opaque — prose can never fire a
//!    lint — and `mpicheck:allow` directives are collected together with
//!    their (now mandatory) justifications.
//! 2. [`summary`](crate::summary) parses each function into an ordered
//!    tree of collective operations, branches, loops, early exits, and
//!    call edges.
//! 3. [`callgraph`](crate::callgraph) closes the call edges into
//!    transitive effect sets (calling `wait_recover` eventually `wait`s;
//!    `cancel_all` disposes of requests two frames down).
//! 4. This module walks the token stream (SL001–SL005, SL010–SL012) and
//!    the summaries plus call graph (SL006–SL009), then applies
//!    suppressions, severities, and the checked-in baseline.
//!
//! ## Catalogue
//!
//! * **SL001** (error) — bare `.unwrap()` outside test code.
//! * **SL002** (error) — `thread::sleep` with a hardcoded duration
//!   literal; pauses come from configuration (`Backoff` / `FaultPlan`).
//! * **SL003** (error) — a file posts non-blocking exchanges but contains
//!   no completion path (`wait`/`cancel`) at all. File-level backstop;
//!   SL008 does the per-path reasoning.
//! * **SL004** (error) — direct `Planner::new` outside `crates/cfft/src`;
//!   consumers must draw plans from `PlanCache::global()`. Every transform
//!   entry point is in scope, the pencil family (`try_fft3_pencil*`,
//!   `PencilSession`) as much as the slab `fft3_dist*` paths.
//! * **SL005** (error) — `.expect(` in a recovery-path or service module
//!   (path contains `recover` or `service`): recovery code must degrade,
//!   never die, and the multi-tenant service scheduler must never take
//!   every tenant down with one job's panic. Covers the pencil backend's
//!   two-round degradation ladder, the slab ladder, and the
//!   admission/scheduling layer.
//! * **SL006** (error) — rank-divergent collective: a collective reachable
//!   only under control flow derived from `.rank()` (the ParCoach-style
//!   mismatch shape). The mpisim/simnet runtime itself is exempt — it
//!   *implements* the rank-asymmetric internals of the collectives.
//! * **SL007** (error) — persistent `_init` without a `free` on some path
//!   (static complement of the runtime lint MC006).
//! * **SL008** (error) — a posted request not dominated by a
//!   `wait`/`cancel` on an early-return (`?`/`return`) or fall-through
//!   path.
//! * **SL009** (error) — a blocking collective (`barrier`/`agree`/
//!   `shrink`) issued while a non-blocking request is provably in flight
//!   on every path: the static deadlock shape.
//! * **SL010** (error) — `Instant::now`/`SystemTime::now` inside the
//!   deterministic simulation core; virtual time only, so schedules
//!   replay exactly.
//! * **SL011** (warning) — an `as` cast to a ≤ 32-bit integer applied to
//!   exchange-geometry arithmetic (counts, displacements, sizes) that can
//!   silently truncate.
//! * **SL012** (warning) — float `==`/`!=` on spectrum data outside
//!   tests; compare against a tolerance.
//! * **SL013** (error) — an `mpicheck:allow` without a trailing
//!   justification (the finding is still suppressed; the directive itself
//!   is reported).
//! * **SL014** (warning) — a justified `mpicheck:allow` that no longer
//!   matches any finding (dead suppression).
//!
//! A deliberate exception is suppressed in place with
//! `// mpicheck:allow(SL0xx): reason` on the offending line or the line
//! above. The meta-lints SL013/SL014 are not themselves suppressible.
//!
//! Grandfathered findings live in `mpicheck.baseline` at the workspace
//! root (regenerate with `cargo xtask lint --update-baseline`). Baseline
//! entries are fingerprinted over code, file, and the *trimmed text* of
//! the offending line, so they survive line-number churn but expire when
//! the line itself changes.

use crate::callgraph::{build as build_callgraph, CallGraph};
use crate::lexer::{lex, Lexed, TokKind};
use crate::summary::{summarize, Event, FnSummary, Node, OpKind, Stmt};
use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Severity of a lint: errors gate CI; warnings inform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintSeverity {
    /// Advisory; reported but does not by itself fail `is_clean` checks
    /// that only count errors (the repo gate counts both).
    Warning,
    /// Must be fixed, allowed with justification, or baselined.
    Error,
}

impl fmt::Display for LintSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LintSeverity::Warning => "warning",
            LintSeverity::Error => "error",
        })
    }
}

/// Source lint identifiers (DESIGN.md §17 catalogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SrcLintId {
    /// `SL001` — bare `.unwrap()` in non-test code.
    BareUnwrap,
    /// `SL002` — `thread::sleep` with a hardcoded duration literal.
    HardcodedSleep,
    /// `SL003` — non-blocking post in a file with no completion path.
    PostWithoutWait,
    /// `SL004` — direct `Planner::new` outside the `cfft` crate.
    PlannerOutsideCache,
    /// `SL005` — `.expect(` in a recovery-path or service module.
    ExpectInRecovery,
    /// `SL006` — collective guarded by rank-dependent control flow.
    RankDivergentCollective,
    /// `SL007` — persistent `_init` without a `free` on some path.
    InitWithoutFree,
    /// `SL008` — posted request not dominated by wait/cancel on a path.
    PostNotDominated,
    /// `SL009` — blocking collective while a request is in flight.
    BlockingWhileInFlight,
    /// `SL010` — wall-clock read inside deterministic simulation code.
    WallClockInSim,
    /// `SL011` — truncating `as` cast in exchange-geometry arithmetic.
    TruncatingCastInGeometry,
    /// `SL012` — float `==`/`!=` on spectrum data outside tests.
    FloatEqOnSpectrum,
    /// `SL013` — `mpicheck:allow` without a justification.
    UnjustifiedAllow,
    /// `SL014` — `mpicheck:allow` matching no finding (dead suppression).
    DeadAllow,
}

/// Every lint, in catalogue order (drives the SARIF rules array).
pub const ALL_LINTS: [SrcLintId; 14] = [
    SrcLintId::BareUnwrap,
    SrcLintId::HardcodedSleep,
    SrcLintId::PostWithoutWait,
    SrcLintId::PlannerOutsideCache,
    SrcLintId::ExpectInRecovery,
    SrcLintId::RankDivergentCollective,
    SrcLintId::InitWithoutFree,
    SrcLintId::PostNotDominated,
    SrcLintId::BlockingWhileInFlight,
    SrcLintId::WallClockInSim,
    SrcLintId::TruncatingCastInGeometry,
    SrcLintId::FloatEqOnSpectrum,
    SrcLintId::UnjustifiedAllow,
    SrcLintId::DeadAllow,
];

impl SrcLintId {
    /// Stable code, e.g. `"SL001"`.
    pub fn code(&self) -> &'static str {
        match self {
            SrcLintId::BareUnwrap => "SL001",
            SrcLintId::HardcodedSleep => "SL002",
            SrcLintId::PostWithoutWait => "SL003",
            SrcLintId::PlannerOutsideCache => "SL004",
            SrcLintId::ExpectInRecovery => "SL005",
            SrcLintId::RankDivergentCollective => "SL006",
            SrcLintId::InitWithoutFree => "SL007",
            SrcLintId::PostNotDominated => "SL008",
            SrcLintId::BlockingWhileInFlight => "SL009",
            SrcLintId::WallClockInSim => "SL010",
            SrcLintId::TruncatingCastInGeometry => "SL011",
            SrcLintId::FloatEqOnSpectrum => "SL012",
            SrcLintId::UnjustifiedAllow => "SL013",
            SrcLintId::DeadAllow => "SL014",
        }
    }

    /// Severity class of the lint.
    pub fn severity(&self) -> LintSeverity {
        match self {
            SrcLintId::TruncatingCastInGeometry
            | SrcLintId::FloatEqOnSpectrum
            | SrcLintId::DeadAllow => LintSeverity::Warning,
            _ => LintSeverity::Error,
        }
    }

    /// One-line rule description (the SARIF `shortDescription`).
    pub fn summary(&self) -> &'static str {
        match self {
            SrcLintId::BareUnwrap => "bare `.unwrap()` in non-test code",
            SrcLintId::HardcodedSleep => "thread::sleep with a hardcoded duration literal",
            SrcLintId::PostWithoutWait => "non-blocking post in a file with no completion path",
            SrcLintId::PlannerOutsideCache => "direct Planner::new outside the cfft crate",
            SrcLintId::ExpectInRecovery => ".expect( in a recovery-path or service module",
            SrcLintId::RankDivergentCollective => {
                "collective guarded by rank-dependent control flow"
            }
            SrcLintId::InitWithoutFree => "persistent _init without a free on some path",
            SrcLintId::PostNotDominated => {
                "posted request not dominated by wait/cancel on an exit path"
            }
            SrcLintId::BlockingWhileInFlight => {
                "blocking collective while a non-blocking request is in flight"
            }
            SrcLintId::WallClockInSim => "wall-clock read inside deterministic simulation code",
            SrcLintId::TruncatingCastInGeometry => {
                "truncating `as` cast in exchange-geometry arithmetic"
            }
            SrcLintId::FloatEqOnSpectrum => "float ==/!= on spectrum data",
            SrcLintId::UnjustifiedAllow => "mpicheck:allow without a justification",
            SrcLintId::DeadAllow => "mpicheck:allow matching no finding",
        }
    }
}

/// One source-lint finding.
#[derive(Debug, Clone)]
pub struct SrcFinding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which lint fired.
    pub id: SrcLintId,
    /// Human-readable detail.
    pub message: String,
}

impl SrcFinding {
    /// Severity of the finding (delegates to the lint).
    pub fn severity(&self) -> LintSeverity {
        self.id.severity()
    }
}

impl fmt::Display for SrcFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.file,
            self.line,
            self.id.code(),
            self.severity(),
            self.message
        )
    }
}

/// Outcome of a full workspace run: active findings, what the baseline
/// absorbed, and what the baseline still lists but the code no longer has.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Active (non-baselined, non-suppressed) findings.
    pub findings: Vec<SrcFinding>,
    /// Findings matched and absorbed by `mpicheck.baseline`.
    pub baselined: Vec<SrcFinding>,
    /// Baseline entries that matched nothing (fix landed — remove them).
    pub stale_baseline: Vec<String>,
    /// Number of source files scanned.
    pub files: usize,
    /// Number of function summaries analysed.
    pub functions: usize,
}

impl LintReport {
    /// Clean means zero active findings (warnings included) and zero
    /// stale baseline entries.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale_baseline.is_empty()
    }
}

// ---------------------------------------------------------------------------
// File walking
// ---------------------------------------------------------------------------

/// Directories never walked below a scan root.
const SKIP_DIRS: &[&str] = &["vendor", "target", "tests", "benches", ".git"];

/// Collects the `.rs` files in scope: `<root>/src`, `<root>/examples`, and
/// every `<root>/crates/*/src` and `<root>/crates/*/examples`, recursively
/// (which includes `src/bin/`), excluding [`SKIP_DIRS`].
fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut roots = vec![root.join("src"), root.join("examples")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            roots.push(e.path().join("src"));
            roots.push(e.path().join("examples"));
        }
    }
    for r in roots {
        walk(&r, &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            let name = e.file_name();
            let skip = name
                .to_str()
                .map(|n| SKIP_DIRS.contains(&n))
                .unwrap_or(true);
            if !skip {
                walk(&p, out);
            }
        } else if p.extension().and_then(|x| x.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

// ---------------------------------------------------------------------------
// Token lints (SL001–SL005, SL010–SL012)
// ---------------------------------------------------------------------------

/// Narrow integer types an `as` cast can truncate into on a 64-bit host.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifiers that mark a value as exchange geometry (counts,
/// displacements, extents) for SL011.
fn is_geometry_ident(s: &str) -> bool {
    s.contains("count")
        || s.contains("displ")
        || s.contains("offset")
        || matches!(
            s,
            "len"
                | "size"
                | "extent"
                | "extents"
                | "total"
                | "bytes"
                | "elems"
                | "nelems"
                | "n_elems"
        )
}

/// Files whose determinism SL010 protects: the simulated network, the
/// checker, and the simulation overlap environment. (The real-time stall
/// watchdog in mpisim's NBC engine is deliberately out of scope.)
fn in_deterministic_scope(rel: &str) -> bool {
    rel.starts_with("crates/simnet/src")
        || rel == "crates/mpisim/src/check.rs"
        || rel == "crates/core/src/sim_env.rs"
}

fn push(out: &mut Vec<SrcFinding>, rel: &str, line: usize, id: SrcLintId, message: String) {
    out.push(SrcFinding {
        file: rel.to_owned(),
        line,
        id,
        message,
    });
}

/// Runs the purely token-local lints over one lexed file.
fn token_lints(rel: &str, lx: &Lexed, out: &mut Vec<SrcFinding>) {
    let toks = &lx.tokens;
    let ident_at = |i: usize, s: &str| toks.get(i).is_some_and(|t| t.is_ident(s));
    let punct_at = |i: usize, s: &str| toks.get(i).is_some_and(|t| t.is_punct(s));

    // SL003 support: completion idents anywhere in the file (test helpers
    // that drain requests count — this is a file-level backstop only).
    let has_completion = toks.iter().any(|t| {
        t.kind == TokKind::Ident && (t.text.contains("wait") || t.text.contains("cancel"))
    });
    let mut first_post: Option<usize> = None;

    for i in 0..toks.len() {
        let t = &toks[i];
        if lx.in_test(t.line) {
            continue;
        }
        // SL001 — exact `.unwrap()` token sequence; `.unwrap_or(…)` is a
        // different identifier and never matches.
        if t.is_punct(".")
            && ident_at(i + 1, "unwrap")
            && punct_at(i + 2, "(")
            && punct_at(i + 3, ")")
        {
            push(
                out,
                rel,
                toks[i + 1].line,
                SrcLintId::BareUnwrap,
                "bare `unwrap()` call in non-test code; use a typed error or a diagnostic \
                 `expect(..)`"
                    .to_owned(),
            );
        }
        // SL002 — `thread::sleep(… Duration::from_*(<literal>) …)`.
        if t.is_ident("sleep") && i >= 2 && punct_at(i - 1, "::") && ident_at(i - 2, "thread") {
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut literal = false;
            while let Some(tj) = toks.get(j) {
                match tj.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth <= 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if tj.is_ident("Duration")
                    && punct_at(j + 1, "::")
                    && toks
                        .get(j + 2)
                        .is_some_and(|n| n.kind == TokKind::Ident && n.text.starts_with("from_"))
                    && punct_at(j + 3, "(")
                    && toks
                        .get(j + 4)
                        .is_some_and(|n| matches!(n.kind, TokKind::Int | TokKind::Float))
                {
                    literal = true;
                }
                j += 1;
            }
            if literal {
                push(
                    out,
                    rel,
                    t.line,
                    SrcLintId::HardcodedSleep,
                    "thread::sleep with a hardcoded duration literal in library code; take \
                     the pause from configuration (Backoff/FaultPlan)"
                        .to_owned(),
                );
            }
        }
        // SL003 — remember the first post call site.
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "post_a2a" | "ialltoall" | "ialltoallv")
            && i > 0
            && punct_at(i - 1, ".")
            && punct_at(i + 1, "(")
            && first_post.is_none()
        {
            first_post = Some(t.line);
        }
        // SL004 — `Planner::new(` outside cfft.
        if t.is_ident("Planner")
            && punct_at(i + 1, "::")
            && ident_at(i + 2, "new")
            && punct_at(i + 3, "(")
            && !rel.starts_with("crates/cfft/src")
        {
            push(
                out,
                rel,
                t.line,
                SrcLintId::PlannerOutsideCache,
                "direct `Planner::new` outside cfft; draw plans from the shared \
                 `PlanCache::global()` so repeat transforms never replan"
                    .to_owned(),
            );
        }
        // SL005 — `.expect(` in recovery-path and service/admission
        // modules. The service scheduler answers to every tenant at once:
        // a panic there is a cluster-wide outage, not a failed job, so the
        // same degrade-don't-die policy applies.
        if t.is_punct(".")
            && ident_at(i + 1, "expect")
            && punct_at(i + 2, "(")
            && (rel.contains("recover") || rel.contains("service"))
        {
            push(
                out,
                rel,
                toks[i + 1].line,
                SrcLintId::ExpectInRecovery,
                "`.expect(` in a recovery-path or service module; this code must return \
                 typed errors — a panic here kills a survivor or the whole service"
                    .to_owned(),
            );
        }
        // SL010 — wall-clock reads in the deterministic core.
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && punct_at(i + 1, "::")
            && ident_at(i + 2, "now")
            && in_deterministic_scope(rel)
        {
            push(
                out,
                rel,
                t.line,
                SrcLintId::WallClockInSim,
                format!(
                    "`{}::now` inside deterministic simulation code; derive time from the \
                     virtual clock so schedules replay exactly",
                    t.text
                ),
            );
        }
        // SL011 — `<geometry> … as u32`-style narrowing.
        if t.is_ident("as") {
            if let Some(ty) = toks.get(i + 1) {
                if ty.kind == TokKind::Ident && NARROW_INTS.contains(&ty.text.as_str()) {
                    let from = i.saturating_sub(8);
                    let near = toks[from..i]
                        .iter()
                        .rev()
                        .find(|p| p.kind == TokKind::Ident && is_geometry_ident(&p.text));
                    if let Some(g) = near {
                        push(
                            out,
                            rel,
                            t.line,
                            SrcLintId::TruncatingCastInGeometry,
                            format!(
                                "`as {}` near exchange-geometry value `{}` can silently \
                                 truncate; use `try_into` or widen the type",
                                ty.text, g.text
                            ),
                        );
                    }
                }
            }
        }
        // SL012 — float equality: a float literal or a `.re`/`.im` field
        // on either side of `==` / `!=`.
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            let float_prev = i >= 1 && toks[i - 1].kind == TokKind::Float;
            let float_next = toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Float);
            let reim = |s: &str| s == "re" || s == "im";
            let field_prev = i >= 2
                && punct_at(i - 2, ".")
                && toks
                    .get(i - 1)
                    .is_some_and(|n| n.kind == TokKind::Ident && reim(&n.text));
            let field_next = toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
                && punct_at(i + 2, ".")
                && toks
                    .get(i + 3)
                    .is_some_and(|n| n.kind == TokKind::Ident && reim(&n.text))
                && !punct_at(i + 4, ".");
            if float_prev || float_next || field_prev || field_next {
                push(
                    out,
                    rel,
                    t.line,
                    SrcLintId::FloatEqOnSpectrum,
                    "float `==`/`!=` on spectrum data; compare against a tolerance \
                     (absolute or ULP) instead"
                        .to_owned(),
                );
            }
        }
    }

    if let Some(line) = first_post {
        if !has_completion {
            push(
                out,
                rel,
                line,
                SrcLintId::PostWithoutWait,
                "posts a non-blocking exchange but the file has no wait or cancel path at \
                 all; in-flight requests must be completed on every path"
                    .to_owned(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Path-sensitive checks (SL006–SL009)
// ---------------------------------------------------------------------------

/// An outstanding obligation along a path: a posted request that still
/// needs a `wait`/`cancel` (SL008/SL009), or an initialised persistent
/// plan that still needs a `free` (SL007).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Ob {
    /// `true` for a posted request; `false` for a persistent plan.
    post: bool,
    /// The `let` binding holding it, when trackable.
    binding: Option<String>,
    /// Line of the creating operation (where leaks are reported).
    line: usize,
    /// Creating-statement identity (for merges at join points).
    id: usize,
    /// Held on *every* path into the current point (drives SL009).
    must: bool,
}

/// Abstract state flowed through a function body.
#[derive(Debug, Clone, Default)]
struct PathState {
    obs: Vec<Ob>,
    /// Bindings whose value derives from `.rank()`.
    taints: BTreeSet<String>,
}

struct FnCtx<'a> {
    file: &'a str,
    graph: &'a CallGraph,
    findings: &'a mut Vec<SrcFinding>,
    next_id: usize,
    /// SL006 applies (not inside the mpisim/simnet runtime).
    sl006_scope: bool,
}

fn merge_states(states: Vec<PathState>) -> PathState {
    let n = states.len();
    let mut taints = BTreeSet::new();
    let mut merged: Vec<Ob> = Vec::new();
    let mut present: Vec<usize> = Vec::new();
    let mut musts: Vec<usize> = Vec::new();
    for st in &states {
        taints.extend(st.taints.iter().cloned());
        for o in &st.obs {
            if let Some(k) = merged.iter().position(|m| m.id == o.id && m.post == o.post) {
                present[k] += 1;
                if o.must {
                    musts[k] += 1;
                }
            } else {
                merged.push(o.clone());
                present.push(1);
                musts.push(usize::from(o.must));
            }
        }
    }
    for (k, m) in merged.iter_mut().enumerate() {
        m.must = present[k] == n && musts[k] == n;
    }
    PathState {
        obs: merged,
        taints,
    }
}

/// Reports one leaked obligation.
fn report_leak(cx: &mut FnCtx<'_>, o: &Ob, exit: &str) {
    let (id, message) = if o.post {
        (
            SrcLintId::PostNotDominated,
            format!(
                "non-blocking request posted here is not dominated by a wait/cancel on \
                 {exit}; the in-flight exchange leaks on that path"
            ),
        )
    } else {
        (
            SrcLintId::InitWithoutFree,
            format!(
                "persistent plan initialised here is not freed on {exit}; pair every \
                 `_init` with a `free` (setup-once/execute-many, cf. runtime MC006)"
            ),
        )
    };
    push(cx.findings, cx.file, o.line, id, message);
}

/// Executes one linearised statement against the path state. Order
/// matters: blocking-while-in-flight, then discharges, then escapes, then
/// exits, then obligation creation, then taint propagation.
fn exec_stmt(s: &Stmt, mut st: PathState, cx: &mut FnCtx<'_>) -> PathState {
    let id = cx.next_id;
    cx.next_id += 1;

    let mut eff: BTreeSet<OpKind> = BTreeSet::new();
    let mut direct_ops: Vec<(OpKind, usize, bool)> = Vec::new();
    let mut has_drop_call = false;
    let mut mentions: BTreeSet<&str> = BTreeSet::new();
    let mut exit_line: Option<usize> = None;
    let mut has_return = false;
    for e in &s.events {
        match e {
            Event::Op { kind, line, depth0 } => {
                eff.insert(*kind);
                direct_ops.push((*kind, *line, *depth0));
            }
            Event::Call { name, .. } => {
                has_drop_call |= name == "drop";
                eff.extend(cx.graph.effects_of(name).ops);
            }
            Event::Mention { name } => {
                mentions.insert(name.as_str());
            }
            Event::MaybeExit { line } => exit_line = exit_line.or(Some(*line)),
            Event::Return { line } => {
                has_return = true;
                exit_line = exit_line.or(Some(*line));
            }
        }
    }

    // SL009 — a *directly issued* blocking collective while some request
    // is in flight on every path into this statement.
    for (kind, line, _) in &direct_ops {
        if kind.is_blocking() {
            if let Some(o) = st.obs.iter().find(|o| o.post && o.must) {
                push(
                    cx.findings,
                    cx.file,
                    *line,
                    SrcLintId::BlockingWhileInFlight,
                    format!(
                        "blocking collective issued while the request posted at line {} is \
                         still in flight; peers stuck here can never complete the exchange \
                         (deadlock shape)",
                        o.line
                    ),
                );
                break;
            }
        }
    }

    // Discharges: the statement (directly or through callees) waits,
    // cancels, or frees. A mention of a tracked binding targets just that
    // obligation; otherwise every matching obligation is conservatively
    // discharged (e.g. `cancel_all(env, &mut inflight, e)`).
    if eff.contains(&OpKind::Wait) || eff.contains(&OpKind::Cancel) {
        let targeted = st
            .obs
            .iter()
            .any(|o| o.post && o.binding.as_deref().is_some_and(|b| mentions.contains(b)));
        st.obs.retain(|o| {
            if !o.post {
                return true;
            }
            if targeted {
                !o.binding.as_deref().is_some_and(|b| mentions.contains(b))
            } else {
                false
            }
        });
    }
    if eff.contains(&OpKind::Free) {
        let targeted = st
            .obs
            .iter()
            .any(|o| !o.post && o.binding.as_deref().is_some_and(|b| mentions.contains(b)));
        st.obs.retain(|o| {
            if o.post {
                return true;
            }
            if targeted {
                !o.binding.as_deref().is_some_and(|b| mentions.contains(b))
            } else {
                false
            }
        });
    }

    // Escapes: a tracked binding mentioned by a later statement leaves
    // local ownership (pushed into a window, stored, returned) — except
    // `drop(req)`, which is a silent leak, and except `plan.start(…)` /
    // `plan.wait(…)`, which use a plan without surrendering it.
    let keeps_ownership = direct_ops
        .iter()
        .any(|(k, _, _)| matches!(k, OpKind::Start | OpKind::Wait));
    if !has_drop_call {
        st.obs.retain(|o| {
            let Some(b) = o.binding.as_deref() else {
                return true;
            };
            if !mentions.contains(b) {
                return true;
            }
            // A mentioned Post escapes outright; a mentioned Init escapes
            // unless this statement is itself a start/wait on the plan.
            !o.post && keeps_ownership
        });
    }

    // Exits: everything still outstanding leaks on this path.
    if let Some(l) = exit_line {
        let exit = if has_return {
            format!("the return at line {l}")
        } else {
            format!("the `?` exit at line {l}")
        };
        let leaked: Vec<Ob> = st.obs.drain(..).collect();
        for o in &leaked {
            report_leak(cx, o, &exit);
        }
    }

    // Creation: a *direct*, statement-top-level post/init whose value is
    // locally held. Tail expressions and `return`ed values escape to the
    // caller; plain `=` assignments store into something that outlives the
    // statement and are untracked (e.g. `plans[t] = Some(comm._init(…))`).
    if !s.is_tail && !has_return {
        for (kind, line, depth0) in &direct_ops {
            if !depth0 {
                continue;
            }
            let post = match kind {
                OpKind::Post => true,
                OpKind::Init => false,
                _ => continue,
            };
            if post && (eff.contains(&OpKind::Wait) || eff.contains(&OpKind::Cancel)) {
                continue;
            }
            if !post && eff.contains(&OpKind::Free) {
                continue;
            }
            let binding = match (&s.let_binding, s.has_assign) {
                (Some(b), _) => Some(b.clone()),
                (None, true) => continue,
                (None, false) => None,
            };
            st.obs.push(Ob {
                post,
                binding,
                line: *line,
                id,
                must: true,
            });
        }
    }

    // Taint: `let r = comm.rank()` (or any binding derived from a tainted
    // mention) marks the binding rank-dependent.
    if let Some(b) = &s.let_binding {
        let reads_rank = direct_ops.iter().any(|(k, _, _)| *k == OpKind::RankRead);
        if reads_rank || mentions.iter().any(|m| st.taints.contains(*m)) {
            st.taints.insert(b.clone());
        }
    }
    st
}

/// Collectives reachable from a node: direct collective ops plus the
/// transitive collective effects of every call site.
fn reachable_collectives(node: &Node, graph: &CallGraph, out: &mut BTreeSet<OpKind>) {
    let scan_stmt = |s: &Stmt, out: &mut BTreeSet<OpKind>| {
        for e in &s.events {
            match e {
                Event::Op { kind, .. } if kind.is_collective() => {
                    out.insert(*kind);
                }
                Event::Call { name, .. } => {
                    out.extend(graph.effects_of(name).collectives());
                }
                _ => {}
            }
        }
    };
    match node {
        Node::Stmt(s) => scan_stmt(s, out),
        Node::Seq(items) => items
            .iter()
            .for_each(|n| reachable_collectives(n, graph, out)),
        Node::Branch { cond, arms, .. } => {
            scan_stmt(cond, out);
            arms.iter()
                .for_each(|n| reachable_collectives(n, graph, out));
        }
        Node::Loop { header, body } => {
            scan_stmt(header, out);
            reachable_collectives(body, graph, out);
        }
    }
}

/// First directly written collective op in a node, for anchoring SL006.
fn first_collective(node: &Node) -> Option<(OpKind, usize)> {
    let scan_stmt = |s: &Stmt| {
        s.events.iter().find_map(|e| match e {
            Event::Op { kind, line, .. } if kind.is_collective() => Some((*kind, *line)),
            _ => None,
        })
    };
    match node {
        Node::Stmt(s) => scan_stmt(s),
        Node::Seq(items) => items.iter().find_map(first_collective),
        Node::Branch { cond, arms, .. } => {
            scan_stmt(cond).or_else(|| arms.iter().find_map(first_collective))
        }
        Node::Loop { header, body } => scan_stmt(header).or_else(|| first_collective(body)),
    }
}

/// SL006 — arms of a rank-tainted branch must reach identical collective
/// sets (non-exhaustive branches add an implicit empty arm).
fn check_rank_divergence(arms: &[Node], exhaustive: bool, line: usize, cx: &mut FnCtx<'_>) {
    let mut sets: Vec<BTreeSet<OpKind>> = arms
        .iter()
        .map(|a| {
            let mut s = BTreeSet::new();
            reachable_collectives(a, cx.graph, &mut s);
            s
        })
        .collect();
    if !exhaustive {
        sets.push(BTreeSet::new());
    }
    let divergent = sets.windows(2).any(|w| w[0] != w[1]);
    if !divergent {
        return;
    }
    let (anchor_kind, anchor_line) = arms
        .iter()
        .find_map(first_collective)
        .unwrap_or((OpKind::Barrier, line));
    push(
        cx.findings,
        cx.file,
        anchor_line,
        SrcLintId::RankDivergentCollective,
        format!(
            "collective `{anchor_kind:?}` is reachable only under rank-dependent control \
             flow (branch at line {line}); every live rank must issue the same collective \
             sequence"
        ),
    );
}

fn stmt_reads_rank(s: &Stmt) -> bool {
    s.events.iter().any(|e| {
        matches!(
            e,
            Event::Op {
                kind: OpKind::RankRead,
                ..
            }
        )
    })
}

fn stmt_mentions_tainted(s: &Stmt, taints: &BTreeSet<String>) -> bool {
    s.events.iter().any(|e| {
        if let Event::Mention { name } = e {
            taints.contains(name)
        } else {
            false
        }
    })
}

fn walk_node(node: &Node, st: PathState, cx: &mut FnCtx<'_>) -> PathState {
    match node {
        Node::Stmt(s) => exec_stmt(s, st, cx),
        Node::Seq(items) => items.iter().fold(st, |acc, n| walk_node(n, acc, cx)),
        Node::Branch {
            cond,
            arms,
            exhaustive,
            line,
        } => {
            let tainted = stmt_reads_rank(cond) || stmt_mentions_tainted(cond, &st.taints);
            let st = exec_stmt(cond, st, cx);
            if arms.is_empty() {
                return st;
            }
            if tainted && cx.sl006_scope {
                check_rank_divergence(arms, *exhaustive, *line, cx);
            }
            let mut states: Vec<PathState> =
                arms.iter().map(|a| walk_node(a, st.clone(), cx)).collect();
            if !*exhaustive {
                states.push(st);
            }
            merge_states(states)
        }
        Node::Loop { header, body } => {
            let st = exec_stmt(header, st, cx);
            let after = walk_node(body, st.clone(), cx);
            merge_states(vec![st, after])
        }
    }
}

/// Runs the path-sensitive checks over one non-test function.
fn check_fn(f: &FnSummary, graph: &CallGraph, findings: &mut Vec<SrcFinding>) {
    let sl006_scope =
        !(f.file.starts_with("crates/mpisim/src") || f.file.starts_with("crates/simnet/src"));
    let mut cx = FnCtx {
        file: &f.file,
        graph,
        findings,
        next_id: 0,
        sl006_scope,
    };
    let end = walk_node(&f.body, PathState::default(), &mut cx);
    let leaked: Vec<Ob> = end.obs;
    for o in &leaked {
        report_leak(&mut cx, o, "the fall-through function end");
    }
}

// ---------------------------------------------------------------------------
// Driver: analysis over in-memory sources, suppressions, ordering
// ---------------------------------------------------------------------------

/// Lints a set of in-memory `(workspace-relative path, contents)` sources:
/// token lints, path-sensitive checks over the cross-file call graph, and
/// suppression handling. No baseline is applied (that is [`run`]'s job).
pub fn lint_sources(sources: &[(String, String)]) -> Vec<SrcFinding> {
    analyze(sources).0
}

fn analyze(sources: &[(String, String)]) -> (Vec<SrcFinding>, usize) {
    let lexed: Vec<(&str, Lexed)> = sources
        .iter()
        .map(|(rel, text)| (rel.as_str(), lex(text)))
        .collect();
    let mut fns: Vec<FnSummary> = Vec::new();
    for (rel, lx) in &lexed {
        fns.extend(summarize(rel, lx));
    }
    let graph = build_callgraph(&fns);

    let mut findings = Vec::new();
    for (rel, lx) in &lexed {
        token_lints(rel, lx, &mut findings);
    }
    for f in &fns {
        if !f.is_test {
            check_fn(f, &graph, &mut findings);
        }
    }

    // One finding per (lint, file, line).
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.id.code()).cmp(&(b.file.as_str(), b.line, b.id.code()))
    });
    findings.dedup_by(|a, b| a.id == b.id && a.file == b.file && a.line == b.line);

    for (rel, lx) in &lexed {
        apply_allows(rel, lx, &mut findings);
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.id.code()).cmp(&(b.file.as_str(), b.line, b.id.code()))
    });
    (findings, fns.len())
}

/// Applies one file's suppression directives, then reports the
/// meta-findings: SL013 for unjustified directives (which still suppress,
/// so a missing justification never doubles the noise) and SL014 for
/// justified directives that matched nothing. Directives inside test code
/// are ignored entirely. SL013/SL014 are not themselves suppressible.
fn apply_allows(rel: &str, lx: &Lexed, findings: &mut Vec<SrcFinding>) {
    let dirs: Vec<_> = lx.allows.iter().filter(|d| !lx.in_test(d.line)).collect();
    if dirs.is_empty() {
        return;
    }
    let mut used = vec![false; dirs.len()];
    findings.retain(|f| {
        if f.file != rel || matches!(f.id, SrcLintId::UnjustifiedAllow | SrcLintId::DeadAllow) {
            return true;
        }
        for (k, d) in dirs.iter().enumerate() {
            if (d.line == f.line || d.line + 1 == f.line)
                && d.codes.iter().any(|c| c == f.id.code())
            {
                used[k] = true;
                return false;
            }
        }
        true
    });
    for (k, d) in dirs.iter().enumerate() {
        let codes = d.codes.join(", ");
        if d.justification.is_none() {
            push(
                findings,
                rel,
                d.line,
                SrcLintId::UnjustifiedAllow,
                format!(
                    "mpicheck:allow({codes}) without a justification; append `: reason` \
                     explaining why the exception is sound"
                ),
            );
        } else if !used[k] {
            push(
                findings,
                rel,
                d.line,
                SrcLintId::DeadAllow,
                format!(
                    "mpicheck:allow({codes}) no longer matches any finding; remove the \
                     stale suppression"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// Name of the checked-in baseline file at the workspace root.
pub const BASELINE_FILE: &str = "mpicheck.baseline";

fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable fingerprint of a finding: lint code, file, and the trimmed text
/// of the offending line — line-number churn does not invalidate it, a
/// change to the line itself does.
fn fingerprint(code: &str, file: &str, line_text: &str) -> u64 {
    fnv1a64(&format!("{code}|{file}|{}", line_text.trim()))
}

fn line_text(contents: &str, line: usize) -> &str {
    contents.lines().nth(line.saturating_sub(1)).unwrap_or("")
}

/// One parsed baseline entry: `CODE FILE HEXHASH [-- excerpt]`.
#[derive(Debug)]
struct BaselineEntry {
    code: String,
    file: String,
    hash: u64,
    raw: String,
}

fn load_baseline(path: &Path) -> Vec<BaselineEntry> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let (Some(code), Some(file), Some(hex)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        let Ok(hash) = u64::from_str_radix(hex, 16) else {
            continue;
        };
        out.push(BaselineEntry {
            code: code.to_owned(),
            file: file.to_owned(),
            hash,
            raw: t.to_owned(),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Workspace entry points
// ---------------------------------------------------------------------------

fn load_sources(root: &Path) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for path in source_files(root) {
        let Ok(contents) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        out.push((rel, contents));
    }
    out
}

/// Runs the full lint pass over the workspace rooted at `root`, applying
/// the checked-in baseline.
pub fn run(root: &Path) -> LintReport {
    let sources = load_sources(root);
    let files = sources.len();
    let (all, functions) = analyze(&sources);
    let baseline = load_baseline(&root.join(BASELINE_FILE));
    let mut matched = vec![false; baseline.len()];
    let mut findings = Vec::new();
    let mut baselined = Vec::new();
    for f in all {
        let text = sources
            .iter()
            .find(|(rel, _)| *rel == f.file)
            .map(|(_, c)| line_text(c, f.line))
            .unwrap_or("");
        let fp = fingerprint(f.id.code(), &f.file, text);
        let hit = baseline
            .iter()
            .position(|b| b.code == f.id.code() && b.file == f.file && b.hash == fp);
        match hit {
            Some(k) => {
                matched[k] = true;
                baselined.push(f);
            }
            None => findings.push(f),
        }
    }
    let stale_baseline = baseline
        .iter()
        .zip(&matched)
        .filter(|(_, m)| !**m)
        .map(|(b, _)| b.raw.clone())
        .collect();
    LintReport {
        findings,
        baselined,
        stale_baseline,
        files,
        functions,
    }
}

/// Back-compat shim: active findings only (baseline applied).
pub fn lint_workspace(root: &Path) -> Vec<SrcFinding> {
    run(root).findings
}

/// Regenerates `mpicheck.baseline` from the current findings (suppressions
/// respected, previous baseline ignored). Returns the number of entries
/// written.
pub fn update_baseline(root: &Path) -> std::io::Result<usize> {
    let sources = load_sources(root);
    let (all, _) = analyze(&sources);
    let mut out = String::from(
        "# mpicheck source-lint baseline — grandfathered findings.\n\
         # Format: CODE FILE FNV1A64-OF(code|file|trimmed-line) -- excerpt\n\
         # Regenerate with `cargo xtask lint --update-baseline`; entries go\n\
         # stale (and are reported) once the offending line changes.\n",
    );
    for f in &all {
        let text = sources
            .iter()
            .find(|(rel, _)| *rel == f.file)
            .map(|(_, c)| line_text(c, f.line))
            .unwrap_or("");
        let fp = fingerprint(f.id.code(), &f.file, text);
        let excerpt: String = text.trim().chars().take(60).collect();
        out.push_str(&format!(
            "{} {} {fp:016x} -- {excerpt}\n",
            f.id.code(),
            f.file
        ));
    }
    fs::write(root.join(BASELINE_FILE), &out)?;
    Ok(all.len())
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Human-readable report: one line per finding, then a summary line.
pub fn render_text(r: &LintReport) -> String {
    let mut out = String::new();
    for f in &r.findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    for s in &r.stale_baseline {
        out.push_str(&format!(
            "stale baseline entry (fix landed — remove it): {s}\n"
        ));
    }
    if r.is_clean() {
        out.push_str(&format!(
            "lint: clean ({} lints over {} files, {} functions; {} baselined finding(s))\n",
            ALL_LINTS.len(),
            r.files,
            r.functions,
            r.baselined.len()
        ));
    } else {
        let errors = r
            .findings
            .iter()
            .filter(|f| f.severity() == LintSeverity::Error)
            .count();
        out.push_str(&format!(
            "lint: {} finding(s) ({} error(s), {} warning(s)), {} stale baseline entry(ies)\n",
            r.findings.len(),
            errors,
            r.findings.len() - errors,
            r.stale_baseline.len()
        ));
    }
    out
}

/// Machine-readable JSON report (hand-rolled; the workspace is
/// dependency-free by policy).
pub fn render_json(r: &LintReport) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"clean\":{},\"files\":{},\"functions\":{},\"baselined\":{},",
        r.is_clean(),
        r.files,
        r.functions,
        r.baselined.len()
    ));
    out.push_str("\"findings\":[");
    for (i, f) in r.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            f.id.code(),
            f.severity(),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    out.push_str("],\"stale_baseline\":[");
    for (i, s) in r.stale_baseline.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", json_escape(s)));
    }
    out.push_str("]}");
    out
}

/// SARIF 2.1.0 report (one run, one rule per lint) for code-scanning UIs.
pub fn render_sarif(r: &LintReport) -> String {
    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"mpicheck-srclint\",\"rules\":[",
    );
    for (i, id) in ALL_LINTS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let level = match id.severity() {
            LintSeverity::Error => "error",
            LintSeverity::Warning => "warning",
        };
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\
             \"defaultConfiguration\":{{\"level\":\"{level}\"}}}}",
            id.code(),
            json_escape(id.summary())
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in r.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let level = match f.severity() {
            LintSeverity::Error => "error",
            LintSeverity::Warning => "warning",
        };
        out.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"level\":\"{level}\",\"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{}}}}}}}]}}",
            f.id.code(),
            json_escape(&f.message),
            json_escape(&f.file),
            f.line
        ));
    }
    out.push_str("]}]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(rel: &str, src: &str) -> Vec<SrcFinding> {
        lint_sources(&[(rel.to_owned(), src.to_owned())])
    }

    fn codes(findings: &[SrcFinding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.id.code()).collect()
    }

    #[test]
    fn bare_unwrap_is_flagged_but_not_unwrap_or() {
        let src = "fn f() {\n  let x = g().unwrap();\n  let y = g().unwrap_or(0);\n}\n";
        let f = lint_one("x.rs", src);
        assert_eq!(codes(&f), vec!["SL001"]);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].severity(), LintSeverity::Error);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "// prose: call .unwrap() then thread::sleep(Duration::from_millis(5))\n\
                   fn f() {\n  let s = \".unwrap()\";\n  let p = \"Planner::new(\";\n\
                   /* .expect( in a block comment */\n}\n";
        assert!(lint_one("crates/core/src/recover_doc.rs", src).is_empty());
    }

    #[test]
    fn test_module_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n  fn g() { h().unwrap(); }\n}\n";
        assert!(lint_one("x.rs", src).is_empty());
    }

    #[test]
    fn justified_allow_suppresses_cleanly() {
        let src = "// mpicheck:allow(SL001): fixture literal, never executed\n\
                   fn f() { let x = g().unwrap(); }\n";
        assert!(lint_one("x.rs", src).is_empty());
        let inline = "fn f() { let x = g().unwrap(); } // mpicheck:allow(SL001): fixture\n";
        assert!(lint_one("x.rs", inline).is_empty());
    }

    #[test]
    fn unjustified_allow_suppresses_but_reports_sl013() {
        let src = "// mpicheck:allow(SL001)\nfn f() { let x = g().unwrap(); }\n";
        let f = lint_one("x.rs", src);
        assert_eq!(codes(&f), vec!["SL013"]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn dead_allow_reports_sl014() {
        let src = "// mpicheck:allow(SL001): this no longer matches anything\nfn f() {}\n";
        let f = lint_one("x.rs", src);
        assert_eq!(codes(&f), vec!["SL014"]);
        assert_eq!(f[0].severity(), LintSeverity::Warning);
    }

    #[test]
    fn hardcoded_sleep_is_flagged_variable_sleep_is_not() {
        let bad = "fn f() { std::thread::sleep(Duration::from_millis(50)); }\n";
        assert_eq!(codes(&lint_one("x.rs", bad)), vec!["SL002"]);
        let wrapped = "fn f() { std::thread::sleep(\n  Duration::from_millis(50)); }\n";
        assert_eq!(codes(&lint_one("x.rs", wrapped)), vec!["SL002"]);
        let good = "fn f() { std::thread::sleep(plan.recv_delay); }\n";
        assert!(lint_one("x.rs", good).is_empty());
    }

    #[test]
    fn post_with_no_completion_path_at_all_is_sl003() {
        let bad = "fn f(env: &mut E) { env.post_a2a(0); }\n";
        let f = lint_one("x.rs", bad);
        assert!(codes(&f).contains(&"SL003"), "got {f:?}");
        // Any completion ident in the file downgrades to per-path SL008
        // reasoning only.
        let good = "fn f(env: &mut E) { let r = env.post_a2a(0); env.wait(0, r); }\n";
        assert!(lint_one("x.rs", good).is_empty());
    }

    #[test]
    fn planner_new_outside_cfft_is_flagged_but_cfft_is_exempt() {
        let src = "fn f() { let p = Planner::new(Rigor::Estimate); }\n";
        let f = lint_one("crates/core/src/real_env.rs", src);
        assert_eq!(codes(&f), vec!["SL004"]);
        assert!(lint_one("crates/cfft/src/cache.rs", src).is_empty());
        let cached = "fn f() { let p = PlanCache::global().plan(8, dir, rigor); }\n";
        assert!(lint_one("crates/core/src/real_env.rs", cached).is_empty());
    }

    #[test]
    fn expect_in_recovery_module_is_flagged_elsewhere_is_not() {
        let src = "fn f() { let x = g().expect(\"slab present\"); }\n";
        let f = lint_one("crates/core/src/recover.rs", src);
        assert_eq!(codes(&f), vec!["SL005"]);
        // The multi-tenant service is under the same degrade-don't-die
        // policy: a panic in admission or scheduling is an outage.
        let s = lint_one("crates/core/src/service.rs", src);
        assert_eq!(codes(&s), vec!["SL005"]);
        assert!(lint_one("crates/core/src/real_env.rs", src).is_empty());
    }

    #[test]
    fn sl006_rank_guarded_collective_fires() {
        let bad = "fn f(c: &C) { if c.rank() == 0 { c.barrier(); } }\n";
        let f = lint_one("crates/core/src/pipeline2.rs", bad);
        assert_eq!(codes(&f), vec!["SL006"]);
        // Same collectives on both arms: no divergence.
        let balanced = "fn f(c: &C) { if c.rank() == 0 { c.barrier(); } else { c.barrier(); } }\n";
        assert!(lint_one("crates/core/src/pipeline2.rs", balanced).is_empty());
        // Rank-guarded local work is fine.
        let local = "fn f(c: &C) { let r = c.rank(); if r == 0 { log(r); } c.barrier(); }\n";
        assert!(lint_one("crates/core/src/pipeline2.rs", local).is_empty());
    }

    #[test]
    fn sl006_taint_propagates_through_bindings() {
        let bad = "fn f(c: &C) { let me = c.rank(); let lead = me == 0; \
                   if lead { c.agree(1); } }\n";
        assert_eq!(codes(&lint_one("crates/core/src/a.rs", bad)), vec!["SL006"]);
    }

    #[test]
    fn sl006_sees_collectives_through_calls() {
        let bad = "fn helper(c: &C) { c.barrier(); }\n\
                   fn f(c: &C) { if c.rank() == 0 { helper(c); } }\n";
        assert_eq!(codes(&lint_one("crates/core/src/a.rs", bad)), vec!["SL006"]);
    }

    #[test]
    fn sl006_exempts_the_runtime_itself() {
        // mpisim's own collective implementations are legitimately
        // rank-asymmetric inside.
        let src = "fn bcast(c: &C) { if c.rank() == root { c.barrier(); } }\n";
        assert!(lint_one("crates/mpisim/src/coll.rs", src).is_empty());
        assert!(lint_one("crates/simnet/src/net.rs", src).is_empty());
    }

    #[test]
    fn sl007_init_without_free_fires_and_free_silences() {
        let bad = "fn f(c: &C) { let plan = c.alltoallv_init(s); plan.start(); plan.wait(); }\n";
        let f = lint_one("crates/core/src/a.rs", bad);
        assert_eq!(codes(&f), vec!["SL007"]);
        assert_eq!(f[0].line, 1);
        let good = "fn f(c: &C) { let plan = c.alltoallv_init(s); plan.start(); \
                    plan.wait(); plan.free(); }\n";
        assert!(lint_one("crates/core/src/a.rs", good).is_empty());
    }

    #[test]
    fn sl007_assignment_into_slot_is_untracked() {
        // `plans[t] = Some(comm.alltoallv_init(…))` stores the plan in a
        // structure that outlives the statement — the session's teardown
        // owns the free.
        let src = "fn f(c: &C, plans: &mut Vec<Option<P>>, t: usize) { \
                   plans[t] = Some(c.alltoallv_init(s)); }\n";
        assert!(lint_one("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn sl008_early_question_mark_leaks_posted_request() {
        let bad = "fn f(env: &mut E) -> R<()> { let req = env.post_a2a(0); \
                   env.step(0)?; env.wait(0, req)?; Ok(()) }\n";
        let f = lint_one("crates/core/src/a.rs", bad);
        assert_eq!(codes(&f), vec!["SL008"]);
        let good = "fn f(env: &mut E) -> R<()> { let req = env.post_a2a(0); \
                    env.wait(0, req)?; env.step(0)?; Ok(()) }\n";
        assert!(lint_one("crates/core/src/a.rs", good).is_empty());
    }

    #[test]
    fn sl008_fall_through_leak_and_silent_drop() {
        let bad = "fn f(env: &mut E) { let r = env.post_a2a(0); drop(r); env.cancel_noop(); }\n";
        let f = lint_one("crates/core/src/a.rs", bad);
        assert_eq!(codes(&f), vec!["SL008"]);
    }

    #[test]
    fn sl008_escape_into_window_is_someone_elses_obligation() {
        let src = "fn f(env: &mut E, win: &mut Vec<(usize, Req)>) -> R<()> { \
                   let req = env.post_a2a(0); win.push((0, req)); env.step(0)?; Ok(()) }\n\
                   fn drain(env: &mut E, win: &mut Vec<(usize, Req)>) { \
                   while let Some((t, r)) = win.pop() { env.wait(t, r); } }\n";
        assert!(lint_one("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn sl008_tail_return_escapes_to_caller() {
        let src = "fn post(env: &mut E) -> Req { env.post_a2a(0) }\n\
                   fn f(env: &mut E) { let r = post(env); env.wait(0, r); }\n";
        assert!(lint_one("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn sl008_cancel_on_error_arm_discharges() {
        let src = "fn f(env: &mut E) -> R<()> { let req = env.post_a2a(0); \
                   match env.step(0) { Ok(v) => v, Err(e) => { env.cancel(0, req); \
                   return Err(e); } } env.wait(0, req)?; Ok(()) }\n";
        assert!(lint_one("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn sl008_discharge_through_callee_wait() {
        // `wait_recover` transitively waits, so calling it completes the
        // request — the call graph must see through the wrapper.
        let src = "fn wait_recover(env: &mut E, r: Req) -> R<()> { env.wait(0, r) }\n\
                   fn f(env: &mut E) -> R<()> { let req = env.post_a2a(0); \
                   wait_recover(env, req)?; Ok(()) }\n";
        assert!(lint_one("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn sl009_blocking_collective_over_inflight_request() {
        let bad = "fn f(c: &C, env: &mut E) { let r = env.post_a2a(0); c.barrier(); \
                   env.wait(0, r); }\n";
        let f = lint_one("crates/core/src/a.rs", bad);
        assert_eq!(codes(&f), vec!["SL009"]);
        let good = "fn f(c: &C, env: &mut E) { let r = env.post_a2a(0); env.wait(0, r); \
                    c.barrier(); }\n";
        assert!(lint_one("crates/core/src/a.rs", good).is_empty());
    }

    #[test]
    fn sl009_needs_must_in_flight() {
        // Posted on only one path: not *provably* in flight at the barrier.
        let src = "fn f(c: &C, env: &mut E, go: bool) { \
                   if go { env.post_a2a(0); } c.barrier(); c.wait_all(); }\n";
        let f = lint_one("crates/core/src/a.rs", src);
        assert!(!codes(&f).contains(&"SL009"), "got {f:?}");
    }

    #[test]
    fn sl010_wall_clock_in_sim_scope_only() {
        let src = "fn f() -> Instant { Instant::now() }\n";
        assert_eq!(
            codes(&lint_one("crates/simnet/src/latency.rs", src)),
            vec!["SL010"]
        );
        assert_eq!(
            codes(&lint_one("crates/mpisim/src/check.rs", src)),
            vec!["SL010"]
        );
        // The NBC stall watchdog and bench timing legitimately read real
        // time.
        assert!(lint_one("crates/mpisim/src/nbc.rs", src).is_empty());
        assert!(lint_one("crates/bench/src/main.rs", src).is_empty());
    }

    #[test]
    fn sl011_truncating_geometry_cast() {
        let bad = "fn f(counts: &[usize]) -> u32 { counts[0] as u32 }\n";
        let f = lint_one("crates/core/src/a.rs", bad);
        assert_eq!(codes(&f), vec!["SL011"]);
        assert_eq!(f[0].severity(), LintSeverity::Warning);
        // Widening or non-geometry casts are fine.
        let widen = "fn f(counts: &[usize]) -> u64 { counts[0] as u64 }\n";
        assert!(lint_one("crates/core/src/a.rs", widen).is_empty());
        let color = "fn f(pixel: u64) -> u8 { pixel as u8 }\n";
        assert!(lint_one("crates/core/src/a.rs", color).is_empty());
    }

    #[test]
    fn sl012_float_equality_variants() {
        let lit = "fn f(x: f64) -> bool { x == 0.5 }\n";
        assert_eq!(codes(&lint_one("x.rs", lit)), vec!["SL012"]);
        let field = "fn f(a: C, b: C) -> bool { a.re == b.re }\n";
        assert_eq!(codes(&lint_one("x.rs", field)), vec!["SL012"]);
        // Integer equality and bit-exact comparisons stay silent.
        let int = "fn f(x: usize) -> bool { x == 5 }\n";
        assert!(lint_one("x.rs", int).is_empty());
        let bits = "fn f(a: f64, b: f64) -> bool { a.to_bits() == b.to_bits() }\n";
        assert!(lint_one("x.rs", bits).is_empty());
    }

    #[test]
    fn display_carries_code_and_severity() {
        let f = SrcFinding {
            file: "a.rs".to_owned(),
            line: 3,
            id: SrcLintId::BareUnwrap,
            message: "m".to_owned(),
        };
        assert_eq!(f.to_string(), "a.rs:3: [SL001/error] m");
    }

    #[test]
    fn fingerprint_survives_line_churn_not_edits() {
        let a = fingerprint("SL001", "a.rs", "  let x = g().unwrap();  ");
        let b = fingerprint("SL001", "a.rs", "let x = g().unwrap();");
        assert_eq!(a, b, "trimmed text makes the fingerprint line-shift proof");
        let c = fingerprint("SL001", "a.rs", "let y = g().unwrap();");
        assert_ne!(a, c);
        let d = fingerprint("SL002", "a.rs", "let x = g().unwrap();");
        assert_ne!(a, d);
    }

    #[test]
    fn renderers_are_well_formed() {
        let report = LintReport {
            findings: vec![SrcFinding {
                file: "crates/a/src/b.rs".to_owned(),
                line: 7,
                id: SrcLintId::PostNotDominated,
                message: "leak \"quoted\"".to_owned(),
            }],
            baselined: Vec::new(),
            stale_baseline: vec!["SL001 old.rs 0123456789abcdef".to_owned()],
            files: 1,
            functions: 2,
        };
        let text = render_text(&report);
        assert!(text.contains("[SL008/error]"));
        assert!(text.contains("stale baseline entry"));
        let json = render_json(&report);
        assert!(json.contains("\"code\":\"SL008\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"clean\":false"));
        let sarif = render_sarif(&report);
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"ruleId\":\"SL008\""));
        assert!(sarif.contains("\"startLine\":7"));
        // Every lint appears in the rules array.
        for id in ALL_LINTS {
            assert!(sarif.contains(&format!("\"id\":\"{}\"", id.code())));
        }
    }

    #[test]
    fn baseline_absorbs_and_reports_stale() {
        let dir =
            std::env::temp_dir().join(format!("mpicheck-baseline-test-{}", std::process::id()));
        let src_dir = dir.join("src");
        fs::create_dir_all(&src_dir).expect("create temp src dir");
        fs::write(src_dir.join("lib.rs"), "fn f() { g().unwrap(); }\n").expect("write temp source");
        // No baseline: one active finding.
        let r = run(&dir);
        assert_eq!(codes(&r.findings), vec!["SL001"]);
        assert!(r.baselined.is_empty());
        // Baseline it: absorbed.
        let n = update_baseline(&dir).expect("write baseline");
        assert_eq!(n, 1);
        let r = run(&dir);
        assert!(r.findings.is_empty());
        assert_eq!(codes(&r.baselined), vec!["SL001"]);
        assert!(r.stale_baseline.is_empty());
        assert!(r.is_clean());
        // Fix the code: the entry goes stale and the run is dirty again.
        fs::write(src_dir.join("lib.rs"), "fn f() -> R<()> { g() }\n")
            .expect("rewrite temp source");
        let r = run(&dir);
        assert!(r.findings.is_empty());
        assert_eq!(r.stale_baseline.len(), 1);
        assert!(!r.is_clean());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn workspace_is_currently_clean() {
        // The repo's own source must pass its own lints — errors *and*
        // warnings, with zero stale baseline entries. This is the
        // regression gate that keeps future findings out of HEAD.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/mpicheck has a workspace root two levels up");
        let report = run(root);
        assert!(report.files > 10, "walker found too few files");
        assert!(report.functions > 100, "summariser found too few functions");
        assert!(
            report.is_clean(),
            "source lints found:\n{}",
            render_text(&report)
        );
    }
}
