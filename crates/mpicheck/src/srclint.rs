//! Source-level lint pass (`SL001`–`SL005`).
//!
//! A small, dependency-free walk of the workspace's first-party source
//! (`crates/*/src` plus the root package's `src/`; `vendor/`, `target/`,
//! `tests/`, `benches/` and `examples/` are out of scope) enforcing project
//! invariants that clippy does not cover:
//!
//! * **SL001** — no bare `.unwrap()` outside test code. Non-test code must
//!   surface typed errors or panic with a diagnostic `expect`.
//! * **SL002** — no `thread::sleep` with a hardcoded duration literal in
//!   library code. Pauses must come from configuration (a [`FaultPlan`],
//!   the world's `Backoff`) so checked runs and tests can tighten them.
//! * **SL003** — a file that posts non-blocking exchanges (`.post_a2a(` /
//!   `.ialltoall`) must also contain a `wait` and a `cancel` path, so no
//!   call site can leak an in-flight request on success *or* error.
//! * **SL004** — no direct `Planner::new` outside `crates/cfft/src`. Every
//!   consumer must draw plans from the process-wide `PlanCache` (via
//!   `PlanCache::global()`), so identical transforms never replan; a
//!   per-call planner was exactly the hot-path bug this rule pins down.
//! * **SL005** — no `.expect(` in recovery-path modules (any source file
//!   whose path contains `recover`). Recovery code runs *after* something
//!   has already gone wrong; a panic there converts a survivable rank
//!   failure into a process death. It must return typed errors only.
//!
//! Test code is exempt: everything at or below the file's first
//! `#[cfg(test)]` line (the repo convention keeps test modules at the end
//! of each file). A deliberate exception is suppressed in place with
//! `// mpicheck:allow(SL00x)` on the offending line or the line above.
//!
//! [`FaultPlan`]: faultplan::FaultPlan

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Source lint identifiers (DESIGN.md §12 catalogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SrcLintId {
    /// `SL001` — bare `.unwrap()` in non-test code.
    BareUnwrap,
    /// `SL002` — `thread::sleep` with a hardcoded duration literal.
    HardcodedSleep,
    /// `SL003` — non-blocking post without a wait/cancel path in the file.
    PostWithoutWait,
    /// `SL004` — direct `Planner::new` outside the `cfft` crate.
    PlannerOutsideCache,
    /// `SL005` — `.expect(` in a recovery-path module.
    ExpectInRecovery,
}

impl SrcLintId {
    /// Stable code, e.g. `"SL001"`.
    pub fn code(&self) -> &'static str {
        match self {
            SrcLintId::BareUnwrap => "SL001",
            SrcLintId::HardcodedSleep => "SL002",
            SrcLintId::PostWithoutWait => "SL003",
            SrcLintId::PlannerOutsideCache => "SL004",
            SrcLintId::ExpectInRecovery => "SL005",
        }
    }
}

/// One source-lint finding.
#[derive(Debug, Clone)]
pub struct SrcFinding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which lint fired.
    pub id: SrcLintId,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for SrcFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.id.code(),
            self.message
        )
    }
}

/// Directories under a crate's `src/` never walked (and top-level dirs
/// skipped entirely).
const SKIP_DIRS: &[&str] = &["vendor", "target", "tests", "benches", "examples", ".git"];

/// Collects the `.rs` files in scope: `<root>/src` and every
/// `<root>/crates/*/src`, recursively, excluding [`SKIP_DIRS`].
fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut roots = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            roots.push(e.path().join("src"));
        }
    }
    for r in roots {
        walk(&r, &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            let name = e.file_name();
            let skip = name
                .to_str()
                .map(|n| SKIP_DIRS.contains(&n))
                .unwrap_or(true);
            if !skip {
                walk(&p, out);
            }
        } else if p.extension().and_then(|x| x.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

/// `true` when the line (or the previous line) carries a
/// `mpicheck:allow(<code>)` suppression.
fn allowed(lines: &[&str], idx: usize, code: &str) -> bool {
    let marker = format!("mpicheck:allow({code})");
    lines[idx].contains(&marker) || (idx > 0 && lines[idx - 1].contains(&marker))
}

/// `true` when the line is (or starts) comment-only.
fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("/*") || t.starts_with('*')
}

/// Does `window` (this line + next) contain a `Duration::from_*` call with
/// a *literal* argument?
fn has_literal_duration(window: &str) -> bool {
    let mut rest = window;
    while let Some(pos) = rest.find("Duration::from_") {
        let tail = &rest[pos..];
        if let Some(open) = tail.find('(') {
            let arg = tail[open + 1..].trim_start();
            if arg.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                return true;
            }
        }
        rest = &rest[pos + 1..];
    }
    false
}

/// Lints one file's contents; `rel` is the workspace-relative display path.
fn lint_file(rel: &str, contents: &str) -> Vec<SrcFinding> {
    let lines: Vec<&str> = contents.lines().collect();
    // Everything at or below the first #[cfg(test)] is test code.
    let test_boundary = lines
        .iter()
        .position(|l| l.trim() == "#[cfg(test)]")
        .unwrap_or(lines.len());
    let mut findings = Vec::new();
    let mut first_post: Option<usize> = None;

    for (idx, line) in lines.iter().enumerate().take(test_boundary) {
        if is_comment(line) {
            continue;
        }
        // SL001 — bare unwrap. `.unwrap_or*`/`.unwrap_err` do not contain
        // the exact token `.unwrap()`.
        // The pattern literal below is the lint itself. mpicheck:allow(SL001)
        if line.contains(".unwrap()") && !allowed(&lines, idx, "SL001") {
            findings.push(SrcFinding {
                file: rel.to_owned(),
                line: idx + 1,
                id: SrcLintId::BareUnwrap,
                message: "bare `unwrap()` call in non-test code; use a typed error or a \
                          diagnostic `expect(..)`"
                    .to_owned(),
            });
        }
        // SL002 — hardcoded sleep. The duration literal may sit on the
        // next line after rustfmt wraps the call.
        if line.contains("thread::sleep") && !allowed(&lines, idx, "SL002") {
            let mut window = (*line).to_owned();
            if let Some(next) = lines.get(idx + 1) {
                window.push_str(next);
            }
            if has_literal_duration(&window) {
                findings.push(SrcFinding {
                    file: rel.to_owned(),
                    line: idx + 1,
                    id: SrcLintId::HardcodedSleep,
                    message: "thread::sleep with a hardcoded duration literal in library \
                              code; take the pause from configuration (Backoff/FaultPlan)"
                        .to_owned(),
                });
            }
        }
        // SL004 — direct planner construction outside cfft. The cache
        // itself (and cfft's own internals/doctests) legitimately build
        // planners; everyone else must go through `PlanCache::global()`.
        // The pattern literal below is the lint itself. mpicheck:allow(SL004)
        if line.contains("Planner::new(")
            && !rel.starts_with("crates/cfft/src")
            && !allowed(&lines, idx, "SL004")
        {
            findings.push(SrcFinding {
                file: rel.to_owned(),
                line: idx + 1,
                id: SrcLintId::PlannerOutsideCache,
                message: "direct `Planner::new` outside cfft; draw plans from the shared \
                          `PlanCache::global()` so repeat transforms never replan"
                    .to_owned(),
            });
        }
        // SL005 — recovery modules must degrade, never die: `.expect(`
        // in a file whose path names recovery turns a survivable rank
        // failure into a process panic. (SL001 already bans `.unwrap()`
        // everywhere; this tightens recovery paths to typed errors only.)
        // The pattern literal below is the lint itself. mpicheck:allow(SL005)
        if line.contains(".expect(") && rel.contains("recover") && !allowed(&lines, idx, "SL005") {
            findings.push(SrcFinding {
                file: rel.to_owned(),
                line: idx + 1,
                id: SrcLintId::ExpectInRecovery,
                message: "`.expect(` in a recovery-path module; recovery code must \
                          return typed errors — a panic here kills a survivor"
                    .to_owned(),
            });
        }
        // SL003 — collect post call sites; verified after the scan.
        let posts = line.contains(".post_a2a(")
            || line.contains(".ialltoall(")
            || line.contains(".ialltoallv(");
        if posts && first_post.is_none() {
            first_post = Some(idx);
        }
    }

    if let Some(idx) = first_post {
        let has_wait = contents.contains("wait");
        let has_cancel = contents.contains("cancel");
        if (!has_wait || !has_cancel) && !allowed(&lines, idx, "SL003") {
            let missing = match (has_wait, has_cancel) {
                (false, false) => "wait or cancel path",
                (false, true) => "wait path",
                _ => "cancel path",
            };
            findings.push(SrcFinding {
                file: rel.to_owned(),
                line: idx + 1,
                id: SrcLintId::PostWithoutWait,
                message: format!(
                    "posts a non-blocking exchange but the file has no {missing}; \
                     in-flight requests must be waited or cancelled on every path"
                ),
            });
        }
    }
    findings
}

/// Runs the source lints over the workspace rooted at `root`; returns every
/// finding, ordered by file then line.
pub fn lint_workspace(root: &Path) -> Vec<SrcFinding> {
    let mut findings = Vec::new();
    for path in source_files(root) {
        let Ok(contents) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        findings.extend(lint_file(&rel, &contents));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_unwrap_is_flagged_but_not_unwrap_or() {
        let src = "fn f() {\n  let x = g().unwrap();\n  let y = g().unwrap_or(0);\n}\n";
        let f = lint_file("x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id.code(), "SL001");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn test_module_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n  fn g() { h().unwrap(); }\n}\n";
        assert!(lint_file("x.rs", src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "// mpicheck:allow(SL001)\nlet x = g().unwrap();\n";
        assert!(lint_file("x.rs", src).is_empty());
        let inline = "let x = g().unwrap(); // mpicheck:allow(SL001)\n";
        assert!(lint_file("x.rs", inline).is_empty());
    }

    #[test]
    fn hardcoded_sleep_is_flagged_variable_sleep_is_not() {
        let bad = "std::thread::sleep(Duration::from_millis(50));\n";
        let f = lint_file("x.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id.code(), "SL002");
        let wrapped = "std::thread::sleep(\n  Duration::from_millis(50));\n";
        assert_eq!(lint_file("x.rs", wrapped).len(), 1);
        let good = "std::thread::sleep(plan.recv_delay);\n";
        assert!(lint_file("x.rs", good).is_empty());
        let configured = "std::thread::sleep(delay);\n";
        assert!(lint_file("x.rs", configured).is_empty());
    }

    #[test]
    fn post_without_wait_or_cancel_is_flagged() {
        let bad = "fn f(env: &mut E) { let r = env.post_a2a(0); drop(r); }\n";
        let f = lint_file("x.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id.code(), "SL003");
        let good =
            "fn f(env: &mut E) {\n  let r = env.post_a2a(0);\n  env.wait(0, r); // or cancel\n}\n";
        assert!(lint_file("x.rs", good).is_empty());
    }

    #[test]
    fn planner_new_outside_cfft_is_flagged_but_cfft_is_exempt() {
        // mpicheck:allow(SL004) — pattern literal for the test fixture.
        let src = "fn f() { let p = Planner::new(Rigor::Estimate); }\n";
        let f = lint_file("crates/core/src/real_env.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id.code(), "SL004");
        assert!(lint_file("crates/cfft/src/cache.rs", src).is_empty());
        let cached = "fn f() { let p = PlanCache::global().plan(8, dir, rigor); }\n";
        assert!(lint_file("crates/core/src/real_env.rs", cached).is_empty());
    }

    #[test]
    fn expect_in_recovery_module_is_flagged_elsewhere_is_not() {
        // mpicheck:allow(SL005) — pattern literal for the test fixture.
        let src = "fn f() { let x = g().expect(\"slab present\"); }\n";
        let f = lint_file("crates/core/src/recover.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id.code(), "SL005");
        assert!(lint_file("crates/core/src/real_env.rs", src).is_empty());
        let typed = "fn f() -> Result<X, E> { g().ok_or(E::Gone) }\n";
        assert!(lint_file("crates/core/src/recover.rs", typed).is_empty());
    }

    #[test]
    fn comment_lines_are_skipped() {
        let src = "// this mentions .unwrap() in prose\nfn f() {}\n";
        assert!(lint_file("x.rs", src).is_empty());
    }

    #[test]
    fn workspace_is_currently_clean() {
        // The repo's own source must pass its own lints — this is the
        // regression gate that keeps future hardcoded sleeps/unwraps out.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/mpicheck has a workspace root two levels up");
        let findings = lint_workspace(root);
        assert!(
            findings.is_empty(),
            "source lints found:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
