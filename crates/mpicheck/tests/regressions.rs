//! Deliberately-broken MPI usage must be *caught, with names* — the
//! regression gate for the whole verification layer (ISSUE 3 acceptance:
//! an injected unmatched-post bug is reported with a lint ID, a deadlock
//! with the cycle of ranks).

use mpisim::{run_with_config, CheckConfig, EvKind, LintId, RunConfig, SchedConfig, Severity};

/// An injected unmatched post: rank 0 sends a message nobody ever receives.
/// The teardown scan must report MC001 against the destination mailbox.
#[test]
fn unmatched_post_is_caught_with_lint_id() {
    let outcome = run_with_config(4, RunConfig::checked(CheckConfig::default()), |comm| {
        if comm.rank() == 0 {
            comm.send(&[0xdeadbeefu64], 3, 42); // bug: rank 3 never receives
        }
        comm.barrier();
    });
    assert!(outcome.results.is_some(), "run itself completes");
    let f = outcome
        .report
        .findings
        .iter()
        .find(|f| f.id == LintId::UnmatchedSend)
        .expect("MC001 must be reported");
    assert_eq!(f.id.code(), "MC001");
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.rank, Some(3), "finding names the destination rank");
    assert!(!outcome.report.is_clean());
}

/// An injected request leak: every rank posts an IAlltoall and drops it
/// without wait or cancel. The Drop hook must report MC002.
#[test]
fn request_leak_is_caught_as_mc002() {
    let outcome = run_with_config(3, RunConfig::checked(CheckConfig::default()), |comm| {
        let send = vec![comm.rank() as i32; comm.size()];
        let req = comm.ialltoall(&send, 1, vec![0i32; comm.size()]);
        comm.barrier();
        drop(req); // bug: neither waited nor cancelled
        comm.barrier();
    });
    let leaks: Vec<_> = outcome
        .report
        .findings
        .iter()
        .filter(|f| f.id == LintId::RequestLeak)
        .collect();
    assert!(!leaks.is_empty(), "MC002 must be reported");
    assert!(leaks.iter().all(|f| f.id.code() == "MC002"));
    // The leaked rounds also surface as unmatched messages at teardown.
    assert!(!outcome.report.is_clean());
}

/// An injected deadlock: ranks 0 and 1 each block receiving from the other
/// with nobody sending. The detector must name the cycle and return
/// `results: None` instead of hanging or unwinding opaquely.
#[test]
fn mutual_recv_deadlock_names_the_cycle() {
    let outcome = run_with_config(2, RunConfig::checked(CheckConfig::default()), |comm| {
        let peer = 1 - comm.rank();
        let _ = comm.recv_vec::<u8>(peer, 5); // bug: no one sends
    });
    assert!(
        outcome.results.is_none(),
        "deadlocked runs return no results"
    );
    let f = outcome.report.deadlock().expect("MC005 must be reported");
    assert_eq!(f.id.code(), "MC005");
    let mut cycle = f.cycle.clone();
    cycle.sort_unstable();
    assert_eq!(cycle, vec![0, 1], "the cycle names both ranks: {f:?}");
    assert!(f.message.contains("rank 0") && f.message.contains("rank 1"));
}

/// A longer cycle: 0 waits on 1, 1 on 2, 2 on 0.
#[test]
fn three_rank_cycle_is_reported_in_full() {
    let outcome = run_with_config(3, RunConfig::checked(CheckConfig::default()), |comm| {
        let from = (comm.rank() + 1) % comm.size();
        let _ = comm.recv_vec::<u8>(from, 7);
    });
    assert!(outcome.results.is_none());
    let f = outcome.report.deadlock().expect("MC005 expected");
    let mut cycle = f.cycle.clone();
    cycle.sort_unstable();
    assert_eq!(cycle, vec![0, 1, 2]);
}

/// No false positive: the same wait pattern, but the messages do arrive
/// (after the receivers are already blocked).
#[test]
fn slow_but_live_run_is_not_a_deadlock() {
    let outcome = run_with_config(2, RunConfig::checked(CheckConfig::default()), |comm| {
        let peer = 1 - comm.rank();
        if comm.rank() == 0 {
            // Outwait the deadlock threshold before satisfying the peer.
            std::thread::sleep(std::time::Duration::from_millis(400)); // mpicheck:allow(SL002)
            comm.send(&[9u8], peer, 5);
            comm.recv_vec::<u8>(peer, 5)
        } else {
            comm.send(&[9u8], peer, 5);
            comm.recv_vec::<u8>(peer, 5)
        }
    });
    assert!(outcome.results.is_some(), "{:?}", outcome.report.findings);
    assert!(outcome.report.deadlock().is_none());
}

/// Vector clocks: a receive's clock must dominate the matching send's.
#[test]
fn recv_clock_dominates_send_clock() {
    let outcome = run_with_config(2, RunConfig::checked(CheckConfig::default()), |comm| {
        if comm.rank() == 0 {
            comm.send(&[1u32], 1, 8);
            comm.recv_vec::<u32>(1, 9)
        } else {
            let v = comm.recv_vec::<u32>(0, 8);
            comm.send(&v, 0, 9);
            v
        }
    });
    assert!(outcome.results.is_some());
    let events = &outcome.report.events;
    let send0 = events
        .iter()
        .find(|e| e.rank == 0 && e.kind == EvKind::Send)
        .expect("rank 0 sent");
    let recv1 = events
        .iter()
        .find(|e| e.rank == 1 && e.kind == EvKind::Recv)
        .expect("rank 1 received");
    assert!(
        mpisim::check::clock_le(&send0.clock, &recv1.clock),
        "send {:?} must happen-before recv {:?}",
        send0.clock,
        recv1.clock
    );
    // And the reply's receive dominates everything rank 1 did.
    let recv0 = events
        .iter()
        .find(|e| e.rank == 0 && e.kind == EvKind::Recv)
        .expect("rank 0 received the reply");
    assert!(mpisim::check::clock_le(&recv1.clock, &recv0.clock));
}

/// The wildcard-race lint (MC004, info severity): two concurrent senders
/// race into one wildcard receive. Explored schedules must eventually
/// observe the race without ever failing the run.
#[test]
fn wildcard_race_is_surfaced_as_info() {
    let mut observed = false;
    for seed in 0..24 {
        let outcome = run_with_config(
            3,
            RunConfig::checked(CheckConfig::with_sched(SchedConfig::random(seed))),
            |comm| {
                if comm.rank() > 0 {
                    comm.send(&[comm.rank() as u8], 0, 4);
                    0
                } else {
                    let (_, a) = comm.recv_any::<u8>(4);
                    let (_, b) = comm.recv_any::<u8>(4);
                    a[0] + b[0]
                }
            },
        );
        let results = outcome.results.expect("no deadlock");
        assert_eq!(results[0], 3, "both messages received, either order");
        assert!(
            outcome.report.is_clean(),
            "MC004 is info, not an error: {:?}",
            outcome.report.findings
        );
        if outcome
            .report
            .findings
            .iter()
            .any(|f| f.id == LintId::WildcardRace)
        {
            observed = true;
        }
    }
    assert!(
        observed,
        "24 schedules of a 2-sender race must surface MC004 at least once"
    );
}

/// Schedule determinism: the same descriptor produces the same
/// deferral statistics (the scheduler's decisions are a pure function of
/// the descriptor and the message coordinates).
#[test]
fn same_seed_same_schedule_statistics() {
    let run_once = |seed: u64| {
        let outcome = run_with_config(
            4,
            RunConfig::checked(CheckConfig::with_sched(SchedConfig::random(seed))),
            |comm| {
                let send: Vec<i64> = (0..comm.size())
                    .map(|d| (comm.rank() * 10 + d) as i64)
                    .collect();
                comm.ialltoall(&send, 1, vec![0i64; comm.size()])
                    .wait(&comm)
            },
        );
        let report = outcome.report;
        assert!(report.is_clean(), "{:?}", report.findings);
        (report.delivered, report.deferred, report.schedule)
    };
    let a = run_once(7);
    let b = run_once(7);
    assert_eq!(a, b, "same seed must defer the same deliveries");
    let c = run_once(8);
    assert_ne!(a.2, c.2, "different seed is a different descriptor");
}
