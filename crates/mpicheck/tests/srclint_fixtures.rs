//! Golden-fixture suite for the source lints.
//!
//! Every lint `SL001`–`SL012` is pinned by a pair of fixtures under
//! `tests/fixtures/`: `slNNN_bad.rs` is a minimal program that must fire
//! the lint at exactly the marked code/path/line, and `slNNN_good.rs` is
//! its corrected twin that must stay silent. `regress_opaque.rs` locks in
//! the token-stream upgrade: lint patterns inside comments and string
//! literals never fire.
//!
//! Fixture format: the first line is `//@ path: <workspace-relative
//! path>` (the virtual location the fixture is linted under — some lints
//! are path-scoped), and `//~ SLnnn [SLnnn …]` markers name every finding
//! expected on their own line. A fixture's findings must equal its
//! markers exactly — no extras, no misses, no line drift.

use mpicheck::lint_sources;
use std::fs;
use std::path::Path;

/// Sorted `(code, line)` pairs — one per expected or reported finding.
type Findings = Vec<(String, usize)>;

/// Loads a fixture, lints it under its virtual path, and returns
/// `(expected, got)` as sorted `(code, line)` pairs.
fn run_fixture(name: &str) -> (Findings, Findings) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let rel = text
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("//@ path:"))
        .map(str::trim)
        .unwrap_or_else(|| panic!("{name}: missing `//@ path:` header"))
        .to_owned();
    let mut expected = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if let Some(pos) = line.find("//~") {
            for code in line[pos + 3..].split_whitespace() {
                if code.starts_with("SL") {
                    expected.push((code.to_owned(), i + 1));
                }
            }
        }
    }
    let mut got: Vec<(String, usize)> = lint_sources(&[(rel, text)])
        .iter()
        .map(|f| (f.id.code().to_owned(), f.line))
        .collect();
    expected.sort();
    got.sort();
    (expected, got)
}

fn assert_fixture(name: &str) {
    let (expected, got) = run_fixture(name);
    assert_eq!(got, expected, "{name}: findings do not match `//~` markers");
}

fn assert_pair(stem: &str) {
    assert_fixture(&format!("{stem}_bad.rs"));
    assert_fixture(&format!("{stem}_good.rs"));
}

#[test]
fn sl001_bare_unwrap() {
    assert_pair("sl001");
}

#[test]
fn sl002_hardcoded_sleep() {
    assert_pair("sl002");
}

#[test]
fn sl003_post_without_completion() {
    assert_pair("sl003");
}

#[test]
fn sl004_planner_outside_cache() {
    assert_pair("sl004");
}

#[test]
fn sl005_expect_in_recovery() {
    assert_pair("sl005");
}

#[test]
fn sl006_rank_divergent_collective() {
    assert_pair("sl006");
}

#[test]
fn sl007_init_without_free() {
    assert_pair("sl007");
}

#[test]
fn sl008_post_not_dominated() {
    assert_pair("sl008");
}

#[test]
fn sl009_blocking_while_in_flight() {
    assert_pair("sl009");
}

#[test]
fn sl010_wall_clock_in_sim() {
    assert_pair("sl010");
}

#[test]
fn sl011_truncating_geometry_cast() {
    assert_pair("sl011");
}

#[test]
fn sl012_float_eq_on_spectrum() {
    assert_pair("sl012");
}

#[test]
fn lint_patterns_in_strings_and_comments_stay_silent() {
    assert_fixture("regress_opaque.rs");
}

#[test]
fn every_bad_fixture_marker_names_its_own_lint() {
    // Guard against a fixture drifting to test the wrong code: the
    // slNNN_bad fixture must include an SLnnn marker for its own N.
    for n in 1..=12 {
        let code = format!("SL{n:03}");
        let name = format!("sl{n:03}_bad.rs");
        let (expected, _) = run_fixture(&name);
        assert!(
            expected.iter().any(|(c, _)| *c == code),
            "{name} has no {code} marker"
        );
    }
}
