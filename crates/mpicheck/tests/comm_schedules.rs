//! `Comm::dup` / `Comm::split` matching under adversarial schedules
//! (ISSUE 3 satellite: tag isolation between parent and child
//! communicators, and concurrent splits from all ranks, must survive
//! arbitrary message-delivery delays without cross-talk or ctx collisions).

use mpisim::{run_with_config, CheckConfig, RunConfig, SchedConfig};

fn checked(sched: SchedConfig) -> RunConfig {
    RunConfig::checked(CheckConfig::with_sched(sched))
}

/// Parent and duplicated child exchange on the *same* tag number at the
/// same time. The ctx component of the internal tag must keep the two
/// traffic streams apart even when the scheduler delays one of them past
/// the other's receive.
#[test]
fn dup_isolates_identical_tags_under_adversarial_schedules() {
    for seed in 0..16 {
        let outcome = run_with_config(4, checked(SchedConfig::random(seed)), |comm| {
            let child = comm.dup();
            let to = (comm.rank() + 1) % comm.size();
            let from = (comm.rank() + comm.size() - 1) % comm.size();
            // Same tag (7) on both communicators, parent payload vs child
            // payload distinguishable.
            comm.send(&[100 + comm.rank() as u64], to, 7);
            child.send(&[200 + comm.rank() as u64], to, 7);
            // Receive child first: its message may arrive second — the
            // runtime must hold the parent's message for the parent comm.
            let c = child.recv_vec::<u64>(from, 7);
            let p = comm.recv_vec::<u64>(from, 7);
            (p[0], c[0])
        });
        let results = outcome.results.expect("no deadlock under dup traffic");
        assert!(
            outcome.report.is_clean(),
            "seed {seed}: {:?}",
            outcome.report.findings
        );
        for (rank, (p, c)) in results.iter().enumerate() {
            let from = (rank + 3) % 4;
            assert_eq!(*p, 100 + from as u64, "seed {seed}: parent stream crossed");
            assert_eq!(*c, 200 + from as u64, "seed {seed}: child stream crossed");
        }
    }
}

/// All ranks split into odd/even halves and exchange within the halves
/// while the parent communicator also carries traffic, under both random
/// and systematic schedules.
#[test]
fn split_halves_stay_isolated_under_adversarial_schedules() {
    let mut plans: Vec<SchedConfig> = (0..8).map(SchedConfig::random).collect();
    plans.extend((0..8).map(|m| SchedConfig::systematic(m, 3)));
    for sched in plans {
        let descriptor = sched.describe();
        let outcome = run_with_config(4, checked(sched), |comm| {
            let half = comm
                .split((comm.rank() % 2) as i64, comm.rank() as i64)
                .expect("all ranks keep a color");
            assert_eq!(half.size(), 2);
            // Parent ring exchange, tag 3.
            let to = (comm.rank() + 1) % comm.size();
            let from = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(&[10 + comm.rank() as u64], to, 3);
            // Intra-half exchange on the same tag number.
            let peer = 1 - half.rank();
            half.send(&[50 + comm.rank() as u64], peer, 3);
            let h = half.recv_vec::<u64>(peer, 3);
            let p = comm.recv_vec::<u64>(from, 3);
            (p[0], h[0])
        });
        let results = outcome
            .results
            .unwrap_or_else(|| panic!("{descriptor}: deadlocked"));
        assert!(
            outcome.report.is_clean(),
            "{descriptor}: {:?}",
            outcome.report.findings
        );
        for (rank, (p, h)) in results.iter().enumerate() {
            // Parent ring: message came from world rank-1.
            assert_eq!(*p, 10 + ((rank + 3) % 4) as u64, "{descriptor}");
            // Halves pair {0,2} and {1,3}: the other member of my parity.
            let half_peer = (rank + 2) % 4;
            assert_eq!(*h, 50 + half_peer as u64, "{descriptor}");
        }
    }
}

/// Two *concurrent* splits issued back-to-back from every rank must land
/// in distinct ctx spaces (no MC003), and nested children of children must
/// still match correctly when deliveries are reordered.
#[test]
fn concurrent_and_nested_splits_get_distinct_contexts() {
    for seed in [0u64, 3, 11, 20140216] {
        let outcome = run_with_config(4, checked(SchedConfig::random(seed)), |comm| {
            // Two splits in a row — same colors, different seq — then a
            // split of the child: three fresh contexts.
            let a = comm.split(0, comm.rank() as i64).expect("kept");
            let b = comm.split(0, comm.rank() as i64).expect("kept");
            let c = a
                .split((a.rank() % 2) as i64, a.rank() as i64)
                .expect("kept");
            // Same tag everywhere; payload encodes the communicator.
            let to_a = (a.rank() + 1) % a.size();
            let from_a = (a.rank() + a.size() - 1) % a.size();
            a.send(&[1000 + a.rank() as u64], to_a, 9);
            b.send(&[2000 + b.rank() as u64], to_a, 9);
            c.send(&[3000 + comm.rank() as u64], 1 - c.rank(), 9);
            let vc = c.recv_vec::<u64>(1 - c.rank(), 9);
            let vb = b.recv_vec::<u64>(from_a, 9);
            let va = a.recv_vec::<u64>(from_a, 9);
            (va[0], vb[0], vc[0])
        });
        let results = outcome.results.expect("no deadlock");
        assert!(
            outcome.report.is_clean(),
            "seed {seed}: {:?}",
            outcome.report.findings
        );
        for (rank, (va, vb, vc)) in results.iter().enumerate() {
            let from = (rank + 3) % 4;
            assert_eq!(*va, 1000 + from as u64, "seed {seed}");
            assert_eq!(*vb, 2000 + from as u64, "seed {seed}");
            let c_peer = (rank + 2) % 4; // pairs {0,2} / {1,3}
            assert_eq!(*vc, 3000 + c_peer as u64, "seed {seed}");
        }
    }
}

/// Non-blocking collectives on a duplicated communicator progress and
/// complete under deferral, while the parent runs its own ialltoall with
/// the same sequence numbers.
#[test]
fn nbc_on_dup_does_not_cross_with_parent_nbc() {
    for seed in 0..10 {
        let outcome = run_with_config(4, checked(SchedConfig::random(seed)), |comm| {
            let child = comm.dup();
            let n = comm.size();
            let ps: Vec<i64> = (0..n).map(|d| (comm.rank() * 10 + d) as i64).collect();
            let cs: Vec<i64> = (0..n).map(|d| -((comm.rank() * 10 + d) as i64)).collect();
            let preq = comm.ialltoall(&ps, 1, vec![0i64; n]);
            let creq = child.ialltoall(&cs, 1, vec![0i64; n]);
            let crecv = creq.wait(&child);
            let precv = preq.wait(&comm);
            (precv, crecv)
        });
        let results = outcome.results.expect("no deadlock");
        assert!(
            outcome.report.is_clean(),
            "seed {seed}: {:?}",
            outcome.report.findings
        );
        for (rank, (p, c)) in results.iter().enumerate() {
            for src in 0..4usize {
                assert_eq!(p[src], (src * 10 + rank) as i64, "seed {seed}");
                assert_eq!(c[src], -((src * 10 + rank) as i64), "seed {seed}");
            }
        }
    }
}
