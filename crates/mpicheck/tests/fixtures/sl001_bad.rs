//@ path: crates/demo/src/sl001.rs
fn fetch(g: Source) -> u32 {
    g.read().unwrap() //~ SL001
}
