//@ path: crates/demo/src/sl003.rs
fn exchange(env: &mut Env) {
    env.post_a2a(0); //~ SL003 SL008
}
