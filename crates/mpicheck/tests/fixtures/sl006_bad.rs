//@ path: crates/demo/src/sl006.rs
fn sync(c: &Comm) {
    if c.rank() == 0 {
        c.barrier(); //~ SL006
    }
}
