//@ path: crates/demo/src/sl011.rs
fn pack(counts: &[usize]) -> u32 {
    counts[0] as u32 //~ SL011
}
