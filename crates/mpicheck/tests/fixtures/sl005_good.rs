//@ path: crates/demo/src/recover.rs
fn heal(slabs: &Slabs, id: usize) -> Result<Slab, RecoverError> {
    slabs.get(id).ok_or(RecoverError::SlabGone(id))
}
