//@ path: crates/simnet/src/sl010.rs
fn stamp() -> std::time::Instant {
    std::time::Instant::now() //~ SL010
}
