//@ path: crates/demo/src/sl008.rs
fn overlap(env: &mut Env) -> Result<(), Error> {
    let req = env.post_a2a(0); //~ SL008
    env.compute_tile(0)?;
    env.wait(0, req)?;
    Ok(())
}
