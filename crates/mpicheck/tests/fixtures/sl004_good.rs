//@ path: crates/demo/src/sl004.rs
fn plan() -> Plan {
    PlanCache::global().plan(8, Dir::Fwd, Rigor::Estimate)
}
