//@ path: crates/demo/src/sl002.rs
fn backoff(plan: &FaultPlan) {
    std::thread::sleep(plan.recv_delay);
}
