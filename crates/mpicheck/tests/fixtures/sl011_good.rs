//@ path: crates/demo/src/sl011.rs
fn pack(counts: &[usize]) -> u64 {
    counts[0] as u64
}
