//@ path: crates/demo/src/sl007.rs
fn session(c: &Comm) {
    let plan = c.alltoallv_init(sched);
    plan.start();
    plan.wait();
    plan.free();
}
