//@ path: crates/demo/src/sl009.rs
fn ordered(c: &Comm, env: &mut Env) {
    let req = env.post_a2a(0);
    env.wait(0, req);
    c.barrier();
}
