//@ path: crates/simnet/src/sl010.rs
fn stamp(clock: &VirtualClock) -> SimTime {
    clock.now_virtual()
}
