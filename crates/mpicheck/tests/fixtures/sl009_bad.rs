//@ path: crates/demo/src/sl009.rs
fn deadlock(c: &Comm, env: &mut Env) {
    let req = env.post_a2a(0);
    c.barrier(); //~ SL009
    env.wait(0, req);
}
