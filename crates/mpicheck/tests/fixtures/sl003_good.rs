//@ path: crates/demo/src/sl003.rs
fn exchange(env: &mut Env) {
    let req = env.post_a2a(0);
    env.wait(0, req);
}
