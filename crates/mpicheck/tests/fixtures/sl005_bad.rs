//@ path: crates/demo/src/recover.rs
fn heal(slabs: &Slabs, id: usize) -> Slab {
    slabs.get(id).expect("slab present") //~ SL005
}
