//@ path: crates/demo/src/regress.rs
// Prose that once tripped the line-regex lints: .unwrap() and
// thread::sleep(Duration::from_millis(5)) and Planner::new( and .expect(
fn quoted() -> &'static str {
    let a = ".unwrap()";
    let b = "thread::sleep(Duration::from_millis(5))";
    let c = "Planner::new(Rigor::Estimate)";
    let d = r#"env.post_a2a(0) and .expect("x") and Instant::now()"#;
    a
}
