//@ path: crates/demo/src/sl012.rs
fn dc_mode(x: f64) -> bool {
    x == 0.5 //~ SL012
}
