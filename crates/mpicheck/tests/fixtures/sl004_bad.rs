//@ path: crates/demo/src/sl004.rs
fn plan() -> Plan {
    let p = Planner::new(Rigor::Estimate); //~ SL004
    p.plan(8)
}
