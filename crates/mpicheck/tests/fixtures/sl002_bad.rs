//@ path: crates/demo/src/sl002.rs
fn backoff() {
    std::thread::sleep(std::time::Duration::from_millis(50)); //~ SL002
}
