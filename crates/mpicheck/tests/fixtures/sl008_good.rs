//@ path: crates/demo/src/sl008.rs
fn overlap(env: &mut Env) -> Result<(), Error> {
    let req = env.post_a2a(0);
    match env.compute_tile(0) {
        Ok(()) => {}
        Err(e) => {
            env.cancel(0, req);
            return Err(e);
        }
    }
    env.wait(0, req)?;
    Ok(())
}
