//! Property-based tests of the message-passing runtime: the alltoall
//! permutation identity, ordering semantics, and collective algebra over
//! randomly drawn sizes and payloads.

use proptest::prelude::*;

/// alltoall is the block-transpose permutation: recv[s][j] on rank r equals
/// send[r][j] on rank s.
fn alltoall_permutes(p: usize, count: usize, salt: u64) {
    mpisim::run(p, move |comm| {
        let me = comm.rank() as u64;
        let send: Vec<u64> = (0..p * count)
            .map(|i| {
                let dest = (i / count) as u64;
                let j = (i % count) as u64;
                (me * 1_000_003) ^ dest.wrapping_mul(7919) ^ j.wrapping_mul(31) ^ salt
            })
            .collect();
        let mut recv = vec![0u64; p * count];
        comm.alltoall(&send, count, &mut recv);
        for s in 0..p as u64 {
            for j in 0..count as u64 {
                let expect = (s * 1_000_003) ^ me.wrapping_mul(7919) ^ j.wrapping_mul(31) ^ salt;
                assert_eq!(recv[s as usize * count + j as usize], expect);
            }
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn alltoall_is_the_block_permutation(p in 1usize..8, count in 1usize..50, salt: u64) {
        alltoall_permutes(p, count, salt);
    }

    /// Vector alltoall partitions and reassembles exactly for random
    /// (symmetric) count matrices.
    #[test]
    fn alltoallv_with_random_counts(p in 1usize..6, base in 0usize..20, salt: u64) {
        mpisim::run(p, move |comm| {
            let me = comm.rank();
            // counts[i][j] = elements i sends to j; keep it a function of
            // (i, j) so both sides agree.
            let cnt = |i: usize, j: usize| base + (i * 31 + j * 17 + (salt % 7) as usize) % 9;
            let send_counts: Vec<usize> = (0..p).map(|j| cnt(me, j)).collect();
            let recv_counts: Vec<usize> = (0..p).map(|i| cnt(i, me)).collect();
            let send: Vec<u32> = (0..p)
                .flat_map(|j| (0..cnt(me, j)).map(move |k| (me * 10000 + j * 100 + k) as u32))
                .collect();
            let mut recv = vec![0u32; recv_counts.iter().sum()];
            comm.alltoallv(&send, &send_counts, &recv_counts, &mut recv);
            let mut off = 0;
            for i in 0..p {
                for k in 0..cnt(i, me) {
                    assert_eq!(recv[off], (i * 10000 + me * 100 + k) as u32);
                    off += 1;
                }
            }
        });
    }

    /// Messages between one (src, dst, tag) pair arrive in send order.
    #[test]
    fn p2p_is_fifo_per_tag(n_msgs in 1usize..30) {
        mpisim::run(2, move |comm| {
            if comm.rank() == 0 {
                for k in 0..n_msgs as u32 {
                    comm.send(&[k], 1, 5);
                }
            } else {
                for k in 0..n_msgs as u32 {
                    let v = comm.recv_vec::<u32>(0, 5);
                    assert_eq!(v[0], k);
                }
            }
        });
    }

    /// allgather equals gather-to-root + bcast for any contribution sizes.
    #[test]
    fn allgather_matches_manual_composition(p in 1usize..7, len in 1usize..10) {
        mpisim::run(p, move |comm| {
            let contrib: Vec<u16> =
                (0..len).map(|k| (comm.rank() * 100 + k) as u16).collect();
            let all = comm.allgather(&contrib);
            assert_eq!(all.len(), p * len);
            for r in 0..p {
                for k in 0..len {
                    assert_eq!(all[r * len + k], (r * 100 + k) as u16);
                }
            }
        });
    }

    /// Reduce-sum over random vectors equals the local sum of all
    /// contributions.
    #[test]
    fn reduce_sum_is_exact_for_integers(p in 1usize..7, len in 1usize..8) {
        mpisim::run(p, move |comm| {
            let contrib: Vec<f64> =
                (0..len).map(|k| (comm.rank() + 1) as f64 * (k + 1) as f64).collect();
            let total = comm.allreduce_sum(&contrib);
            let ranks_sum: f64 = (1..=p).map(|r| r as f64).sum();
            for (k, t) in total.iter().enumerate() {
                assert_eq!(*t, ranks_sum * (k + 1) as f64);
            }
        });
    }

    /// Windowed outstanding alltoalls complete correctly in any wait order
    /// (drawn from the seed).
    #[test]
    fn outstanding_alltoalls_any_completion_order(p in 2usize..5, reverse: bool) {
        mpisim::run(p, move |comm| {
            let me = comm.rank();
            let a: Vec<i32> = (0..p).map(|d| (me * 10 + d) as i32).collect();
            let b: Vec<i32> = (0..p).map(|d| (me * 10 + d + 1000) as i32).collect();
            let ra = comm.ialltoall(&a, 1, vec![0; p]);
            let rb = comm.ialltoall(&b, 1, vec![0; p]);
            let (out_a, out_b) = if reverse {
                let ob = rb.wait(&comm);
                let oa = ra.wait(&comm);
                (oa, ob)
            } else {
                let oa = ra.wait(&comm);
                let ob = rb.wait(&comm);
                (oa, ob)
            };
            for s in 0..p {
                assert_eq!(out_a[s], (s * 10 + me) as i32);
                assert_eq!(out_b[s], (s * 10 + me + 1000) as i32);
            }
        });
    }
}
