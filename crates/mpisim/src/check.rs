//! Dynamic verification instrumentation — the runtime half of `mpicheck`.
//!
//! Three cooperating mechanisms, all wired into the message path of
//! [`crate::world::World`] and activated only when a run is launched with a
//! [`CheckConfig`] (via [`crate::run_with_config`]):
//!
//! 1. **Virtual scheduler** ([`SchedConfig`]): every message delivery
//!    consults a seeded decision — a pure function of
//!    `(seed, src, dest, tag, nth-message-on-that-edge)` drawn through
//!    [`faultplan::hash5`] — that may *defer* the delivery for a bounded
//!    number of receiver yield points. Because the decision is keyed on the
//!    sender's program order (not wall-clock arrival order), the same
//!    schedule descriptor perturbs the same deliveries on every run: a race
//!    surfaced by a seed reproduces from that seed. Two modes:
//!    [`SchedMode::Random`] (seeded probabilistic deferral) and
//!    [`SchedMode::Systematic`] (a delay-bounded, DPOR-lite enumeration of
//!    deferral masks over delivery-decision classes).
//! 2. **Happens-before tracking**: a vector clock per rank, ticked on every
//!    send and joined on every matched receive. Clock snapshots ride on the
//!    messages and land in the (bounded) event log, which the analyses use
//!    to prove ordering claims — e.g. the wildcard-receive race lint fires
//!    exactly when two matchable messages are HB-*concurrent*.
//! 3. **Wait-for-graph deadlock detection**: blocking receives register the
//!    peer (and tag) they are stuck on; a rank that has waited past the
//!    configured threshold walks the graph, and a cycle in which no edge is
//!    satisfiable by a queued or deferred message is reported as a
//!    [`LintId::Deadlock`] finding *naming the cycle of ranks*, then the
//!    world is aborted so the run terminates instead of hanging.
//!
//! Findings carry stable lint IDs (`MC001`–`MC005`); the source-level
//! `SL0xx` lints live in the `mpicheck` crate. See DESIGN.md §12 for the
//! full catalogue and the exploration methodology.

use faultplan::hash5;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

/// Exponential backoff policy for blocking waits.
///
/// Replaces the runtime's historical hardcoded 50 ms park slices: every
/// blocking loop starts at [`Backoff::initial`] and multiplies up to
/// [`Backoff::max`] between wakeups. The default reproduces the legacy cap
/// (50 ms) while reacting to prompt deliveries in microseconds;
/// [`Backoff::checked`] keeps slices tight so schedule exploration and the
/// deadlock probe stay fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// First park slice of a blocking wait.
    pub initial: Duration,
    /// Upper bound no slice exceeds.
    pub max: Duration,
    /// Growth factor between consecutive slices (≥ 1).
    pub multiplier: u32,
    /// Seed for the deterministic park jitter (see [`Backoff::park`]).
    /// Folded from the run's fault seed by `run_with_config`, so two runs
    /// with the same `(fault seed, schedule descriptor)` park identically —
    /// no ambient entropy enters the wait loops.
    pub jitter_seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            initial: Duration::from_micros(500),
            max: Duration::from_millis(50),
            multiplier: 2,
            jitter_seed: 0,
        }
    }
}

impl Backoff {
    /// Tight slices for checked runs: deferred deliveries release within a
    /// few hundred microseconds and deadlock probes fire promptly.
    pub fn checked() -> Self {
        Backoff {
            initial: Duration::from_micros(100),
            max: Duration::from_millis(2),
            multiplier: 2,
            jitter_seed: 0,
        }
    }

    /// The same policy with the jitter seed set (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The first slice (never zero, so `wait_for` cannot busy-spin).
    pub fn first(&self) -> Duration {
        self.initial.max(Duration::from_micros(1))
    }

    /// The slice following `cur`.
    pub fn next(&self, cur: Duration) -> Duration {
        (cur * self.multiplier.max(1)).min(self.max.max(self.initial))
    }

    /// `cur` with deterministic jitter applied: a pure function of
    /// `(jitter_seed, cur, salt)` scaling the slice into `[75%, 125%]`.
    ///
    /// Wait loops that would otherwise park in lockstep (every survivor of a
    /// rank failure re-polling on the same exponential ladder) pass a
    /// per-caller `salt` (e.g. the waiting rank) to de-synchronise without
    /// reaching for ambient entropy — replays under a recorded schedule
    /// descriptor stay bit-identical. The envelope bounds are unchanged:
    /// the result is clamped to `[1µs, max]`.
    pub fn park(&self, cur: Duration, salt: u64) -> Duration {
        let h = hash5(
            self.jitter_seed,
            cur.as_nanos() as u64,
            salt,
            0xbac_0ff,
            0x9a17_7e12,
        );
        // 75% + (h % 50%+1) percent of the slice.
        let pct = 75 + (h % 51) as u32;
        (cur * pct / 100).clamp(Duration::from_micros(1), self.max.max(self.initial))
    }
}

// ---------------------------------------------------------------------------
// Findings and the lint catalogue
// ---------------------------------------------------------------------------

/// Stable identifiers for the runtime lint catalogue (DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintId {
    /// `MC001` — a posted message was never received: at world teardown a
    /// mailbox still holds it (an unmatched send / unmatched post).
    UnmatchedSend,
    /// `MC002` — a non-blocking collective request was dropped while
    /// incomplete, without `wait` or `cancel` (its staged rounds leak).
    RequestLeak,
    /// `MC003` — two distinct communicator-creation events mapped to the
    /// same context id: their tag spaces collide and messages can cross.
    CtxCollision,
    /// `MC004` — a wildcard (`recv_any`) receive matched one of several
    /// HB-concurrent candidates: the outcome is schedule-dependent.
    WildcardRace,
    /// `MC005` — a cycle of ranks each blocked on the next with no
    /// satisfiable message in flight: deadlock, reported with the cycle.
    Deadlock,
    /// `MC006` — a persistent collective plan was dropped without `free()`:
    /// its registration (and any in-flight execution's staged rounds) leaks.
    PersistentLeak,
    /// `MC007` — a recovery checkpoint was consulted after the membership
    /// it captured had changed by more than the one loss XOR parity can
    /// repair: the checkpoint is stale and must not be restored from.
    StaleCheckpoint,
}

impl LintId {
    /// Stable code, e.g. `"MC005"`.
    pub fn code(&self) -> &'static str {
        match self {
            LintId::UnmatchedSend => "MC001",
            LintId::RequestLeak => "MC002",
            LintId::CtxCollision => "MC003",
            LintId::WildcardRace => "MC004",
            LintId::Deadlock => "MC005",
            LintId::PersistentLeak => "MC006",
            LintId::StaleCheckpoint => "MC007",
        }
    }

    /// One-line description for reports.
    pub fn summary(&self) -> &'static str {
        match self {
            LintId::UnmatchedSend => "message posted but never received",
            LintId::RequestLeak => "request dropped without wait or cancel",
            LintId::CtxCollision => "communicator context/tag-space collision",
            LintId::WildcardRace => "wildcard receive with concurrent candidates",
            LintId::Deadlock => "wait-for cycle of blocked ranks",
            LintId::PersistentLeak => "persistent plan dropped without free",
            LintId::StaleCheckpoint => "stale checkpoint consulted after membership change",
        }
    }
}

/// How serious a finding is. Exploration fails a schedule on any
/// `Error`-severity finding; `Info` findings are surfaced but non-fatal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Schedule-dependent behaviour worth knowing about, legal under MPI
    /// semantics (e.g. wildcard nondeterminism).
    Info,
    /// A correctness hazard: the run is wrong, leaks, or hangs.
    Error,
}

/// One verification finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Catalogue entry.
    pub id: LintId,
    /// Severity (see [`Severity`]).
    pub severity: Severity,
    /// World rank the finding is attributed to, when meaningful.
    pub rank: Option<usize>,
    /// For [`LintId::Deadlock`]: the cycle of world ranks, in wait-for
    /// order (`cycle[i]` waits on `cycle[(i+1) % len]`).
    pub cycle: Vec<usize>,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.id.code(), self.message)
    }
}

// ---------------------------------------------------------------------------
// Scheduler configuration
// ---------------------------------------------------------------------------

/// How the virtual scheduler picks deliveries to defer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Seeded probabilistic deferral: each delivery defers with the
    /// configured probability, decided by a hash of the message coordinates.
    Random {
        /// Seed for every deferral decision.
        seed: u64,
    },
    /// Delay-bounded systematic exploration (DPOR-lite): delivery decisions
    /// hash into `bits` classes and class `i` defers iff bit `i` of `mask`
    /// is set. Sweeping `mask` over `0..2^bits` enumerates every bounded
    /// combination of per-class delivery delays.
    Systematic {
        /// Deferral mask over decision classes.
        mask: u64,
        /// Number of decision classes (≤ 64).
        bits: u32,
    },
}

/// Virtual-scheduler configuration for one checked run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedConfig {
    /// Decision mode.
    pub mode: SchedMode,
    /// Deferral probability in `[0, 1)` ([`SchedMode::Random`] only).
    pub defer_prob: f64,
    /// Maximum receiver yield-point visits a deferred delivery is held for.
    pub max_hold: u32,
}

impl SchedConfig {
    /// A random schedule from `seed` with default perturbation strength.
    pub fn random(seed: u64) -> Self {
        SchedConfig {
            mode: SchedMode::Random { seed },
            defer_prob: 0.35,
            max_hold: 3,
        }
    }

    /// A systematic schedule: decision classes in `0..bits`, deferral
    /// pattern `mask`.
    pub fn systematic(mask: u64, bits: u32) -> Self {
        SchedConfig {
            mode: SchedMode::Systematic {
                mask,
                bits: bits.clamp(1, 64),
            },
            defer_prob: 0.0,
            max_hold: 2,
        }
    }

    /// Short reproducible descriptor, e.g. `"random(seed=7,p=0.35)"`.
    pub fn describe(&self) -> String {
        match self.mode {
            SchedMode::Random { seed } => {
                format!(
                    "random(seed={seed},p={:.2},hold={})",
                    self.defer_prob, self.max_hold
                )
            }
            SchedMode::Systematic { mask, bits } => {
                format!(
                    "systematic(mask={mask:#x},bits={bits},hold={})",
                    self.max_hold
                )
            }
        }
    }

    /// The deferral decision for one delivery: `Some(hold_visits)` to defer,
    /// `None` to deliver immediately. Pure in the message coordinates.
    fn decide(&self, src: usize, dest: usize, tag: u64, nth: u64) -> Option<u32> {
        let edge = ((src as u64) << 32) | dest as u64;
        match self.mode {
            SchedMode::Random { seed } => {
                let h = hash5(seed, edge, tag, nth, 0x5eed_5c4e_d01e);
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                (u < self.defer_prob)
                    .then(|| 1 + ((h >> 33) % u64::from(self.max_hold.max(1))) as u32)
            }
            SchedMode::Systematic { mask, bits } => {
                let class = (hash5(0xd1ce, edge, tag, nth, 1) % u64::from(bits.max(1))) as u32;
                (mask >> class & 1 == 1).then(|| 1 + class % self.max_hold.max(1))
            }
        }
    }
}

/// Full checking configuration for [`crate::run_with_config`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckConfig {
    /// Delivery perturbation; `None` checks the run under the native
    /// schedule only.
    pub sched: Option<SchedConfig>,
    /// How long a rank must be continuously blocked before it probes the
    /// wait-for graph for a deadlock cycle.
    pub deadlock_after: Duration,
    /// Event-log capacity; events past the cap are counted, not stored.
    pub event_cap: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            sched: None,
            deadlock_after: Duration::from_millis(250),
            event_cap: 1 << 16,
        }
    }
}

impl CheckConfig {
    /// Checking with delivery perturbation under `sched`.
    pub fn with_sched(sched: SchedConfig) -> Self {
        CheckConfig {
            sched: Some(sched),
            ..CheckConfig::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Events and the report
// ---------------------------------------------------------------------------

/// Kind of a logged happens-before event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvKind {
    /// A message handed to the delivery path (sender side).
    Send,
    /// A message matched by a receive (receiver side).
    Recv,
    /// A communicator created (`peer` is unused, `tag` holds the ctx id).
    CommCreate,
}

/// One happens-before event with its vector-clock snapshot.
#[derive(Debug, Clone)]
pub struct EventRec {
    /// World rank the event occurred on.
    pub rank: usize,
    /// Event kind.
    pub kind: EvKind,
    /// Peer world rank (destination of a send, source of a receive).
    pub peer: usize,
    /// Raw mailbox tag (encodes context, kind and payload).
    pub tag: u64,
    /// The rank's vector clock *after* the event.
    pub clock: Vec<u64>,
}

/// `true` iff `a ≤ b` component-wise (a happens-before-or-equals b).
pub fn clock_le(a: &[u64], b: &[u64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x <= y)
}

/// `true` iff neither clock precedes the other: the events are concurrent.
pub fn clocks_concurrent(a: &[u64], b: &[u64]) -> bool {
    !clock_le(a, b) && !clock_le(b, a)
}

/// What a checked run observed.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// All findings, in discovery order.
    pub findings: Vec<Finding>,
    /// Happens-before event log (bounded by [`CheckConfig::event_cap`]).
    pub events: Vec<EventRec>,
    /// Events dropped past the cap.
    pub events_dropped: usize,
    /// Messages delivered (including released deferrals).
    pub delivered: u64,
    /// Deliveries the virtual scheduler deferred.
    pub deferred: u64,
    /// Reproducible descriptor of the schedule this run executed under.
    pub schedule: String,
}

impl CheckReport {
    /// Findings of `Error` severity.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
    }

    /// `true` when no `Error`-severity finding was recorded.
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// The deadlock finding, if one was reported.
    pub fn deadlock(&self) -> Option<&Finding> {
        self.findings.iter().find(|f| f.id == LintId::Deadlock)
    }
}

/// Results plus verification report of one checked run.
#[derive(Debug)]
pub struct CheckOutcome<R> {
    /// Per-rank results in rank order; `None` when the run was terminated
    /// by the checker (e.g. a detected deadlock aborted the world). For
    /// runs with an injected [`faultplan::FaultKind::RankCrash`], holds the
    /// *survivors'* results in survivor rank order — crashed ranks (listed
    /// in [`CheckOutcome::crashed`]) contribute nothing.
    pub results: Option<Vec<R>>,
    /// World ranks that died by injected crash, ascending. Empty for
    /// ordinary runs; a bug panic still propagates instead of landing here.
    pub crashed: Vec<usize>,
    /// The verification report (empty for unchecked runs).
    pub report: CheckReport,
}

// ---------------------------------------------------------------------------
// Internal shared state
// ---------------------------------------------------------------------------

/// What a blocked rank is waiting on (one wait-for edge).
#[derive(Debug, Clone, Copy)]
pub(crate) struct WaitInfo {
    /// World rank of the peer this rank needs a message from; `None` for
    /// wildcard waits (which cannot form deadlock edges).
    pub peer_world: Option<usize>,
    /// Communicator-rank key the matcher uses (`Msg::src`).
    pub src_key: usize,
    /// Full mailbox tag the matcher uses.
    pub tag: u64,
}

/// Per-world verification state, shared by every rank thread.
pub(crate) struct CheckState {
    cfg: CheckConfig,
    /// One vector clock per world rank.
    clocks: Vec<Mutex<Vec<u64>>>,
    /// Wait-for edges of currently blocked ranks.
    blocked: Mutex<Vec<Option<WaitInfo>>>,
    findings: Mutex<Vec<Finding>>,
    events: Mutex<Vec<EventRec>>,
    events_dropped: AtomicUsize,
    delivered: AtomicU64,
    deferred: AtomicU64,
    /// Per-(src,dest,tag) delivery counters: the deterministic "nth message
    /// on this edge" coordinate of scheduler decisions.
    edge_seq: Mutex<HashMap<(usize, usize, u64), u64>>,
    /// ctx id → creation event `(parent_ctx, split_seq, color)`.
    ctxs: Mutex<HashMap<u64, (u64, u64, i64)>>,
    deadlock_reported: AtomicBool,
}

impl CheckState {
    pub fn new(size: usize, cfg: CheckConfig) -> Self {
        CheckState {
            cfg,
            clocks: (0..size).map(|_| Mutex::new(vec![0; size])).collect(),
            blocked: Mutex::new(vec![None; size]),
            findings: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
            events_dropped: AtomicUsize::new(0),
            delivered: AtomicU64::new(0),
            deferred: AtomicU64::new(0),
            edge_seq: Mutex::new(HashMap::new()),
            ctxs: Mutex::new(HashMap::new()),
            deadlock_reported: AtomicBool::new(false),
        }
    }

    pub fn config(&self) -> &CheckConfig {
        &self.cfg
    }

    /// Ticks `rank`'s clock for a send and returns the stamped snapshot.
    pub fn stamp_send(&self, rank: usize) -> Vec<u64> {
        let mut c = self.clocks[rank].lock();
        c[rank] += 1;
        c.clone()
    }

    /// Joins a received message's clock into `rank`'s clock and ticks it.
    pub fn join_recv(&self, rank: usize, msg_clock: &[u64]) -> Vec<u64> {
        let mut c = self.clocks[rank].lock();
        for (own, theirs) in c.iter_mut().zip(msg_clock) {
            *own = (*own).max(*theirs);
        }
        c[rank] += 1;
        c.clone()
    }

    pub fn record_event(&self, rank: usize, kind: EvKind, peer: usize, tag: u64, clock: Vec<u64>) {
        let mut ev = self.events.lock();
        if ev.len() >= self.cfg.event_cap {
            self.events_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        ev.push(EventRec {
            rank,
            kind,
            peer,
            tag,
            clock,
        });
    }

    pub fn add_finding(&self, f: Finding) {
        self.findings.lock().push(f);
    }

    pub fn count_delivered(&self) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_deferred(&self) {
        self.deferred.fetch_add(1, Ordering::Relaxed);
    }

    /// The scheduler's deferral decision for one delivery (bumps the edge
    /// counter as a side effect).
    pub fn sched_decision(&self, src: usize, dest: usize, tag: u64) -> Option<u32> {
        let sched = self.cfg.sched?;
        let nth = {
            let mut seq = self.edge_seq.lock();
            let n = seq.entry((src, dest, tag)).or_insert(0);
            let v = *n;
            *n += 1;
            v
        };
        sched.decide(src, dest, tag, nth)
    }

    /// Registers a communicator context creation; reports `MC003` when the
    /// ctx id is already live from a *different* creation event.
    pub fn register_ctx(&self, ctx: u64, creation: (u64, u64, i64), rank: usize) {
        let mut ctxs = self.ctxs.lock();
        match ctxs.get(&ctx).copied() {
            None => {
                ctxs.insert(ctx, creation);
                drop(ctxs);
                let clock = self.clocks[rank].lock().clone();
                self.record_event(rank, EvKind::CommCreate, rank, ctx, clock);
            }
            Some(prev) if prev != creation => {
                drop(ctxs);
                self.add_finding(Finding {
                    id: LintId::CtxCollision,
                    severity: Severity::Error,
                    rank: Some(rank),
                    cycle: Vec::new(),
                    message: format!(
                        "context id {ctx:#x} created twice: first by (parent={:#x}, seq={}, \
                         color={}), again by (parent={:#x}, seq={}, color={}) — tag spaces collide",
                        prev.0, prev.1, prev.2, creation.0, creation.1, creation.2
                    ),
                });
            }
            Some(_) => {} // same creation event, registered by a peer rank
        }
    }

    pub fn set_blocked(&self, rank: usize, info: WaitInfo) {
        self.blocked.lock()[rank] = Some(info);
    }

    pub fn clear_blocked(&self, rank: usize) {
        self.blocked.lock()[rank] = None;
    }

    /// `true` once a deadlock has been reported (world is going down).
    pub fn deadlock_was_reported(&self) -> bool {
        self.deadlock_reported.load(Ordering::Acquire)
    }

    /// Walks the wait-for graph from `me`. Returns the cycle of world ranks
    /// if `me` is (transitively) part of one in which no edge can be
    /// satisfied by a queued message. The caller must have force-released
    /// all deferred deliveries first.
    fn find_cycle(
        &self,
        me: usize,
        satisfiable: &dyn Fn(usize, &WaitInfo) -> bool,
    ) -> Option<Vec<usize>> {
        let snap: Vec<Option<WaitInfo>> = self.blocked.lock().clone();
        let mut path = vec![me];
        let mut cur = me;
        loop {
            let info = snap[cur]?;
            let next = info.peer_world?;
            if satisfiable(cur, &info) {
                return None; // a message is already there; no deadlock
            }
            if let Some(pos) = path.iter().position(|&r| r == next) {
                return Some(path[pos..].to_vec());
            }
            path.push(next);
            cur = next;
        }
    }

    /// Deadlock probe run by a rank blocked past `deadlock_after`. Returns
    /// `true` when a deadlock was reported (by this rank or a peer): the
    /// caller must unwind. `settle` is slept between two confirming probes
    /// to reject transient cycles (a peer mid-transition).
    pub fn probe_deadlock(
        &self,
        me: usize,
        settle: Duration,
        force_release: &dyn Fn(),
        satisfiable: &dyn Fn(usize, &WaitInfo) -> bool,
        abort_world: &dyn Fn(),
    ) -> bool {
        if self.deadlock_was_reported() {
            return true;
        }
        // Scheduler-held deliveries could satisfy an edge: flush them so a
        // cycle is only ever reported on genuinely missing messages.
        force_release();
        let Some(first) = self.find_cycle(me, satisfiable) else {
            return false;
        };
        std::thread::sleep(settle);
        force_release();
        match self.find_cycle(me, satisfiable) {
            Some(second) if second == first => {}
            _ => return false, // transient; keep waiting
        }
        if self
            .deadlock_reported
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            let named = first
                .iter()
                .map(|r| format!("rank {r}"))
                .collect::<Vec<_>>()
                .join(" → ");
            let closing = first
                .first()
                .map(|r| format!(" → rank {r}"))
                .unwrap_or_default();
            self.add_finding(Finding {
                id: LintId::Deadlock,
                severity: Severity::Error,
                rank: Some(me),
                cycle: first,
                message: format!("wait-for cycle with no satisfiable message: {named}{closing}"),
            });
        }
        abort_world();
        true
    }

    /// Drains the state into a report. `scan_unmatched` supplies the
    /// teardown mailbox scan (skipped after aborts, where leftover messages
    /// are expected).
    pub fn into_report(
        self,
        schedule: String,
        scan_unmatched: Option<Vec<Finding>>,
    ) -> CheckReport {
        let mut findings = self.findings.into_inner();
        if let Some(unmatched) = scan_unmatched {
            findings.extend(unmatched);
        }
        CheckReport {
            findings,
            events: self.events.into_inner(),
            events_dropped: self.events_dropped.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            deferred: self.deferred.load(Ordering::Relaxed),
            schedule,
        }
    }
}

// ---------------------------------------------------------------------------
// Tag decoding (diagnostics)
// ---------------------------------------------------------------------------

/// Decodes a raw mailbox tag into `(ctx, kind, payload)` for diagnostics;
/// kind is reported as the runtime's class name.
pub fn decode_tag(tag: u64) -> (u64, &'static str, u64) {
    let ctx = tag >> 44;
    let kind = match (tag >> 40) & 0xf {
        1 => "p2p",
        2 => "coll",
        3 => "nbc",
        _ => "unknown",
    };
    (ctx, kind, tag & ((1 << 40) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_to_cap() {
        let b = Backoff::default();
        let mut cur = b.first();
        for _ in 0..20 {
            cur = b.next(cur);
        }
        assert_eq!(cur, b.max);
        let mut cur = b.first();
        let nxt = b.next(cur);
        assert!(nxt >= cur * 2 || nxt == b.max);
        cur = Duration::from_millis(49);
        assert_eq!(b.next(cur), b.max);
    }

    #[test]
    fn park_jitter_is_deterministic_bounded_and_seed_sensitive() {
        let b = Backoff::default().with_seed(42);
        let cur = Duration::from_millis(10);
        // Pure: same (seed, cur, salt) ⇒ same slice, across calls.
        assert_eq!(b.park(cur, 3), b.park(cur, 3));
        // Bounded: every draw stays inside the 75%–125% envelope and the cap.
        for salt in 0..64 {
            let p = b.park(cur, salt);
            assert!(p >= cur * 75 / 100 && p <= cur * 125 / 100, "{p:?}");
            assert!(p <= b.max);
        }
        // Sensitive: some salt (and some seed) must actually move the slice.
        assert!((0..64).any(|s| b.park(cur, s) != b.park(cur, s + 64)));
        let b2 = Backoff::default().with_seed(43);
        assert!((0..64).any(|s| b.park(cur, s) != b2.park(cur, s)));
        // The cap still binds: a near-max slice cannot jitter past `max`.
        let p = b.park(b.max, 0);
        assert!(p <= b.max && p >= b.max * 75 / 100);
    }

    #[test]
    fn sched_decisions_are_pure_and_seed_sensitive() {
        let a = SchedConfig::random(1);
        let b = SchedConfig::random(2);
        let draws = |s: &SchedConfig| -> Vec<Option<u32>> {
            (0..256).map(|n| s.decide(0, 1, 7, n)).collect()
        };
        assert_eq!(draws(&a), draws(&a), "same seed ⇒ same schedule");
        assert_ne!(draws(&a), draws(&b), "different seed ⇒ different schedule");
        let defers = draws(&a).iter().filter(|d| d.is_some()).count();
        assert!((40..150).contains(&defers), "defer rate ≈ 0.35: {defers}");
        for d in draws(&a).into_iter().flatten() {
            assert!((1..=a.max_hold).contains(&d));
        }
    }

    #[test]
    fn systematic_mask_zero_defers_nothing_and_full_mask_everything() {
        let none = SchedConfig::systematic(0, 6);
        let all = SchedConfig::systematic((1 << 6) - 1, 6);
        for n in 0..64 {
            assert_eq!(none.decide(0, 1, n, 0), None);
            assert!(all.decide(0, 1, n, 0).is_some());
        }
    }

    #[test]
    fn clock_order_predicates() {
        let a = vec![1, 2, 0];
        let b = vec![2, 2, 1];
        let c = vec![0, 3, 0];
        assert!(clock_le(&a, &b));
        assert!(!clock_le(&b, &a));
        assert!(clocks_concurrent(&a, &c));
        assert!(!clocks_concurrent(&a, &b));
    }

    #[test]
    fn vector_clocks_tick_and_join() {
        let st = CheckState::new(3, CheckConfig::default());
        let sent = st.stamp_send(0);
        assert_eq!(sent, vec![1, 0, 0]);
        let joined = st.join_recv(1, &sent);
        assert_eq!(joined, vec![1, 1, 0]);
        // Receiver's next send carries the joined history.
        let sent2 = st.stamp_send(1);
        assert_eq!(sent2, vec![1, 2, 0]);
    }

    #[test]
    fn ctx_collision_is_flagged_only_for_distinct_creations() {
        let st = CheckState::new(2, CheckConfig::default());
        st.register_ctx(0xabc, (0, 1, 0), 0);
        st.register_ctx(0xabc, (0, 1, 0), 1); // peer registering same creation
        assert!(st.findings.lock().is_empty());
        st.register_ctx(0xabc, (0, 2, 5), 1); // different creation, same ctx
        let f = &st.findings.lock()[0];
        assert_eq!(f.id, LintId::CtxCollision);
        assert_eq!(f.id.code(), "MC003");
    }

    #[test]
    fn find_cycle_names_the_loop_and_respects_satisfiability() {
        let st = CheckState::new(3, CheckConfig::default());
        let w = |peer: usize| WaitInfo {
            peer_world: Some(peer),
            src_key: peer,
            tag: 1,
        };
        st.set_blocked(0, w(1));
        st.set_blocked(1, w(2));
        st.set_blocked(2, w(0));
        let cycle = st.find_cycle(0, &|_, _| false).expect("cycle");
        assert_eq!(cycle.len(), 3);
        assert!(cycle.contains(&0) && cycle.contains(&1) && cycle.contains(&2));
        // Any satisfiable edge dissolves the deadlock.
        assert!(st.find_cycle(0, &|r, _| r == 1).is_none());
        // A rank not in the cycle still reports the cycle it feeds into.
        st.set_blocked(0, w(1));
        st.set_blocked(1, w(2));
        st.set_blocked(2, w(1));
        let cycle = st.find_cycle(0, &|_, _| false).expect("tail into cycle");
        assert_eq!(cycle, vec![1, 2]);
    }

    #[test]
    fn decode_tag_splits_fields() {
        let tag = (5u64 << 44) | (3u64 << 40) | 99;
        assert_eq!(decode_tag(tag), (5, "nbc", 99));
    }
}
