//! Communicators and point-to-point messaging.

use crate::check::{clocks_concurrent, Finding, LintId, Severity, WaitInfo};
use crate::world::{Msg, World};
use std::any::Any;
use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

/// Message kinds multiplexed onto the mailbox tag space.
#[derive(Clone, Copy)]
pub(crate) enum Kind {
    P2p = 1,
    Coll = 2,
    Nbc = 3,
}

/// Encodes `(ctx, kind, payload)` into a mailbox tag.
pub(crate) fn encode_tag(ctx: u64, kind: Kind, payload: u64) -> u64 {
    debug_assert!(payload < (1 << 40), "tag payload overflow");
    (ctx << 44) | ((kind as u64) << 40) | payload
}

fn mix_ctx(parent: u64, seq: u64, color: i64) -> u64 {
    // SplitMix64-style mixing, truncated to the 20 bits the tag layout
    // reserves for context ids. Collisions across live communicators are
    // astronomically unlikely at the scales the runtime supports (and a
    // checked run reports any actual collision as lint MC003).
    let mut z = parent
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(seq)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9)
        .wrapping_add(color as u64);
    z ^= z >> 31;
    z & 0xf_ffff
}

/// A communicator: a rank's handle onto an ordered group of ranks.
///
/// Mirrors the MPI object of the same name. `Comm` is deliberately not
/// `Sync`: each rank thread owns its own handle, as in MPI. Collective
/// calls must be made by every member in the same order.
pub struct Comm {
    pub(crate) world: Arc<World>,
    pub(crate) ctx: u64,
    rank: usize,
    /// World ranks of the members, indexed by communicator rank.
    members: Arc<Vec<usize>>,
    coll_seq: Cell<u64>,
    split_seq: Cell<u64>,
    /// Sequence counter for [`Comm::agree`] rendezvous (separate from
    /// `coll_seq`: ranks abandon a faulted pipeline at *different* points,
    /// so their `coll_seq` counters disagree by the time recovery starts —
    /// agree must match on a counter that only recovery advances).
    agree_seq: Cell<u64>,
    /// Sequence counter for [`Comm::shrink`] context derivation.
    shrink_seq: Cell<u64>,
}

impl Comm {
    pub(crate) fn world_comm(world: Arc<World>, rank: usize) -> Self {
        let members = Arc::new((0..world.size).collect());
        Comm {
            world,
            ctx: 0,
            rank,
            members,
            coll_seq: Cell::new(0),
            split_seq: Cell::new(0),
            agree_seq: Cell::new(0),
            shrink_seq: Cell::new(0),
        }
    }

    /// This rank's index within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// World rank backing communicator rank `r`.
    #[inline]
    pub(crate) fn world_rank(&self, r: usize) -> usize {
        self.members[r]
    }

    /// World ranks of every member, in dense communicator-rank order —
    /// the membership generation a checkpoint is tagged with, so a
    /// snapshot taken before a shrink is detectable as stale afterwards.
    pub fn members(&self) -> Vec<usize> {
        self.members.as_ref().clone()
    }

    /// Next collective sequence number (consistent across members because
    /// collectives must be called in the same order on every rank).
    pub(crate) fn next_coll_seq(&self) -> u64 {
        let s = self.coll_seq.get();
        self.coll_seq.set(s + 1);
        s
    }

    /// The mailbox of this rank.
    pub(crate) fn my_mailbox(&self) -> &crate::world::Mailbox {
        &self.world.mailboxes[self.world_rank(self.rank)]
    }

    /// The fault plan installed at [`crate::run_with_faults`] time (the
    /// empty plan under [`crate::run`]).
    pub(crate) fn faults(&self) -> &faultplan::FaultPlan {
        &self.world.faults
    }

    /// Messages currently queued in this rank's mailbox — a leak check for
    /// abandoned collectives (after a collective `cancel` on every rank, a
    /// quiesced world reports 0 everywhere).
    pub fn pending_messages(&self) -> usize {
        self.my_mailbox().len()
    }

    /// A cooperative scheduling point: gives the virtual scheduler (checked
    /// runs) a chance to release deliveries it held back for this rank.
    /// Free outside checked runs. The overlapped pipeline calls this once
    /// per tile so deferred deliveries release in the receiver's program
    /// order, which is what makes explored schedules reproducible.
    pub fn progress_hint(&self) {
        self.my_mailbox().service_held();
    }

    // ------------------------------------------------------------------
    // Delivery and blocking-receive machinery (shared by p2p, collectives
    // and the non-blocking collectives in `nbc`)
    // ------------------------------------------------------------------

    /// Sends `data` to communicator rank `dest` under a fully-encoded
    /// mailbox tag, through the world's delivery choke point (vector-clock
    /// stamping + virtual scheduler under checked runs).
    pub(crate) fn deliver(&self, dest: usize, tag: u64, data: Box<dyn Any + Send>) {
        self.world.deliver(
            self.world_rank(self.rank),
            self.world_rank(dest),
            Msg::new(self.rank, tag, data),
        );
    }

    /// Runs the deadlock probe; returns only if no deadlock was confirmed
    /// (otherwise panics, after the probe has aborted the world).
    pub(crate) fn probe_deadlock_or_panic(&self) {
        let Some(check) = &self.world.check else {
            return;
        };
        let me = self.world_rank(self.rank);
        let world = &self.world;
        let reported = check.probe_deadlock(
            me,
            Duration::from_millis(5),
            &|| world.force_release_all(),
            &|r, info| world.mailboxes[r].has_match(info.src_key, info.tag),
            &|| world.abort(),
        );
        if reported {
            panic!("mpisim: deadlock detected at rank {me} (lint MC005; see check report)");
        }
    }

    /// Blocking matched receive from communicator rank `src_key` under a
    /// raw mailbox `tag`, with exponential-backoff parking, abort checking,
    /// and (checked runs) wait-for-graph registration plus the deadlock
    /// probe once the wait exceeds the configured threshold.
    pub(crate) fn blocking_take(&self, src_key: usize, tag: u64) -> Msg {
        let me = self.world_rank(self.rank);
        let mb = self.my_mailbox();
        // Fast path: already queued.
        if let Some(msg) = mb.try_take(src_key, tag) {
            self.world.on_recv(me, Some(self.world_rank(src_key)), &msg);
            return msg;
        }
        let bo = self.world.backoff;
        let mut slice = bo.first();
        let mut waited = Duration::ZERO;
        let probe_after = self.world.check.as_ref().map(|c| c.config().deadlock_after);
        if let Some(check) = &self.world.check {
            check.set_blocked(
                me,
                WaitInfo {
                    peer_world: Some(self.world_rank(src_key)),
                    src_key,
                    tag,
                },
            );
        }
        let msg = loop {
            if let Some(m) = mb.take_or_wait(src_key, tag, slice) {
                break m;
            }
            mb.check_abort();
            if self.world.is_failed(self.world_rank(src_key)) {
                // The sender died. Flush any scheduler-held delivery it made
                // before dying; if the message still isn't there, it never
                // will be — abort (the MPI_Abort analogue for the infallible
                // blocking API) rather than hang. Fault-aware code paths use
                // the typed CollError::RankFailed route instead.
                mb.force_release();
                if let Some(m) = mb.try_take(src_key, tag) {
                    break m;
                }
                panic!(
                    "mpisim: blocking receive from failed world rank {} — \
                     use fault-aware operations on a communicator with dead members",
                    self.world_rank(src_key)
                );
            }
            waited += slice;
            if let Some(after) = probe_after {
                if waited >= after {
                    self.probe_deadlock_or_panic();
                    waited = Duration::ZERO; // re-arm; cycle was transient
                }
            }
            slice = bo.next(slice);
        };
        if let Some(check) = &self.world.check {
            check.clear_blocked(me);
        }
        self.world.on_recv(me, Some(self.world_rank(src_key)), &msg);
        msg
    }

    /// Blocking wildcard receive (any source) under a raw mailbox `tag`.
    /// Wildcard waits register no wait-for edge (they cannot deadlock on a
    /// single peer); on a match under a checked run, any *other* queued
    /// candidate whose send is happens-before-concurrent with the matched
    /// one is reported as lint MC004 (schedule-dependent match).
    pub(crate) fn blocking_take_any(&self, tag: u64) -> Msg {
        let me = self.world_rank(self.rank);
        let mb = self.my_mailbox();
        let bo = self.world.backoff;
        let mut slice = bo.first();
        let msg = loop {
            if let Some(m) = mb.take_any_or_wait(tag, slice) {
                break m;
            }
            mb.check_abort();
            slice = bo.next(slice);
        };
        if let Some(check) = &self.world.check {
            if let Some(mc) = &msg.clock {
                for (osrc, oclock) in mb.matching_clocks(tag) {
                    let concurrent = osrc != msg.src
                        && oclock
                            .as_deref()
                            .is_some_and(|oc| clocks_concurrent(mc, oc));
                    if concurrent {
                        check.add_finding(Finding {
                            id: LintId::WildcardRace,
                            severity: Severity::Info,
                            rank: Some(me),
                            cycle: Vec::new(),
                            message: format!(
                                "wildcard receive at rank {me} (tag {tag:#x}) matched src {} \
                                 while a concurrent candidate from src {osrc} was queued — \
                                 the match is schedule-dependent",
                                msg.src
                            ),
                        });
                        break;
                    }
                }
            }
        }
        self.world.on_recv(me, None, &msg);
        msg
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Buffered (eager) send: copies `buf` and returns immediately.
    pub fn send<T: Clone + Send + 'static>(&self, buf: &[T], dest: usize, tag: u32) {
        assert!(dest < self.size(), "send destination {dest} out of range");
        let data: Vec<T> = buf.to_vec();
        self.deliver(
            dest,
            encode_tag(self.ctx, Kind::P2p, tag as u64),
            Box::new(data),
        );
    }

    /// Blocking receive into `buf`; the matched message length must equal
    /// `buf.len()`.
    pub fn recv<T: Clone + Send + 'static>(&self, buf: &mut [T], src: usize, tag: u32) {
        let v = self.recv_vec::<T>(src, tag);
        assert_eq!(
            v.len(),
            buf.len(),
            "recv length mismatch: message has {}, buffer holds {}",
            v.len(),
            buf.len()
        );
        buf.clone_from_slice(&v);
    }

    /// Blocking receive returning the payload vector.
    pub fn recv_vec<T: Clone + Send + 'static>(&self, src: usize, tag: u32) -> Vec<T> {
        assert!(src < self.size(), "recv source {src} out of range");
        let msg = self.blocking_take(src, encode_tag(self.ctx, Kind::P2p, tag as u64));
        *msg.data
            .downcast::<Vec<T>>()
            .unwrap_or_else(|_| panic!("recv type mismatch from rank {src} tag {tag}"))
    }

    /// Blocking receive from any source; returns `(src, payload)`.
    pub fn recv_any<T: Clone + Send + 'static>(&self, tag: u32) -> (usize, Vec<T>) {
        let msg = self.blocking_take_any(encode_tag(self.ctx, Kind::P2p, tag as u64));
        let data = *msg
            .data
            .downcast::<Vec<T>>()
            .unwrap_or_else(|_| panic!("recv type mismatch (any source, tag {tag})"));
        (msg.src, data)
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// Duplicates the communicator into a fresh context (tag space).
    pub fn dup(&self) -> Comm {
        self.split(0, self.rank as i64)
            .expect("dup never excludes the caller")
    }

    /// Splits by `color` (ranks sharing a color form a new communicator,
    /// ordered by `key` then current rank). A negative color returns `None`
    /// (the MPI `MPI_UNDEFINED` case).
    pub fn split(&self, color: i64, key: i64) -> Option<Comm> {
        let seq = self.split_seq.get();
        self.split_seq.set(seq + 1);
        // The split rendezvous is keyed by (ctx, seq) so concurrent splits
        // of different communicators cannot collide.
        let table_seq = (self.ctx << 20) ^ seq;
        let (new_rank, members_world) = self.world.split_table.split(
            table_seq,
            self.size(),
            color,
            key,
            self.world_rank(self.rank),
        );
        if color < 0 {
            return None;
        }
        let ctx = mix_ctx(self.ctx, seq.wrapping_add(1), color);
        if let Some(check) = &self.world.check {
            check.register_ctx(ctx, (self.ctx, seq, color), self.world_rank(self.rank));
        }
        Some(Comm {
            world: self.world.clone(),
            ctx,
            rank: new_rank,
            members: Arc::new(members_world),
            coll_seq: Cell::new(0),
            split_seq: Cell::new(0),
            agree_seq: Cell::new(0),
            shrink_seq: Cell::new(0),
        })
    }

    // ------------------------------------------------------------------
    // ULFM-style failure handling (revoke / shrink / agree)
    // ------------------------------------------------------------------

    /// World rank of the first member of this communicator known to have
    /// died, or `None` while everyone is (believed) alive. This is the
    /// failure detector consulted at every stuck point; it is purely local
    /// (a flag read), so detection adds no traffic.
    pub fn first_failed_member(&self) -> Option<usize> {
        self.members
            .iter()
            .copied()
            .find(|&w| self.world.is_failed(w))
    }

    /// World ranks of this communicator's members known dead, ascending.
    pub fn failed_members(&self) -> Vec<usize> {
        self.members
            .iter()
            .copied()
            .filter(|&w| self.world.is_failed(w))
            .collect()
    }

    /// `true` once the world has aborted (a peer panicked). Cancellation
    /// paths consult this to avoid racing teardown.
    pub fn world_aborted(&self) -> bool {
        self.world.is_aborted()
    }

    /// Revokes this communicator (ULFM `MPI_Comm_revoke`): every in-flight
    /// and future non-blocking operation on this context — on **every**
    /// member — surfaces [`crate::CollError::Revoked`] instead of making
    /// progress. Used by a rank that has detected a failure to interrupt
    /// peers still blocked in collectives that can never complete. Revoking
    /// an already-revoked communicator is a no-op.
    pub fn revoke(&self) {
        self.world.revoke_ctx(self.ctx);
    }

    /// `true` once this communicator has been revoked by any member.
    pub fn is_revoked(&self) -> bool {
        self.world.is_revoked(self.ctx)
    }

    /// A crash fault's trigger point: if the world's fault plan schedules
    /// this rank's death at tile boundary `tile`, the rank records itself
    /// failed (so survivors' failure detectors observe the death) and
    /// unwinds its thread with a payload the runtime recognises as an
    /// *injected* crash — survivors keep running and the world is not
    /// aborted. Free when no crash fault targets this rank.
    pub fn crash_point(&self, tile: usize) {
        let me = self.world_rank(self.rank);
        if self.faults().crash_at(me) == Some(tile) {
            self.world.mark_failed(me);
            std::panic::panic_any(crate::world::RankCrashed(me));
        }
    }

    /// A memory-corruption fault's trigger point, by analogy with
    /// [`Comm::crash_point`]: returns the seeded bit-flip site when the
    /// world's fault plan schedules a resident-memory bit-flip for this
    /// rank at tile boundary `tile` (the caller reduces the site hash over
    /// its buffer, see `faultplan::flip_seeded_bit`). Free when no bit-flip
    /// targets this rank.
    pub fn bitflip_point(&self, tile: usize) -> Option<u64> {
        let plan = self.faults();
        let me = self.world_rank(self.rank);
        (plan.bitflip_at(me) == Some(tile)).then(|| plan.bitflip_site(me))
    }

    /// Files a runtime-lint finding from a higher layer (recorded in
    /// checked runs, a no-op otherwise). The recovery layer uses this to
    /// report `MC007` when a stale checkpoint is consulted.
    pub fn report_finding(&self, id: LintId, severity: Severity, message: String) {
        if let Some(check) = &self.world.check {
            check.add_finding(crate::check::Finding {
                id,
                severity,
                rank: Some(self.world_rank(self.rank)),
                cycle: Vec::new(),
                message,
            });
        }
    }

    /// Fault-aware consensus (ULFM `MPI_Comm_agree`): every *living* member
    /// contributes `local_flag`; returns the bitwise OR of all contributions
    /// together with the agreed set of dead members (world ranks). Members
    /// that die before contributing are excluded from the OR and included in
    /// the failure set; a member whose contribution was already in flight
    /// when it died is still counted. Never hangs on a dead peer.
    ///
    /// Every living member must call `agree` the same number of times (it is
    /// a collective); the rendezvous is sequenced independently of ordinary
    /// collectives, so ranks may reach it having abandoned different amounts
    /// of pipeline work.
    pub fn agree(&self, local_flag: u64) -> (u64, Vec<usize>) {
        let aseq = self.agree_seq.get();
        self.agree_seq.set(aseq + 1);
        // Distinct payload region (bit 39) keeps agree traffic out of the
        // ordinary collectives' `(seq << 8) | round` tag space.
        let tag = encode_tag(self.ctx, Kind::Coll, (1 << 39) | (aseq << 4));
        let me = self.world_rank(self.rank);
        let words = self.world.size.div_ceil(64);

        let mut payload = vec![0u64; 1 + words];
        payload[0] = local_flag;
        for r in self.world.failed_set() {
            payload[1 + r / 64] |= 1 << (r % 64);
        }
        for dest in 0..self.size() {
            if dest == self.rank || self.world.is_failed(self.world_rank(dest)) {
                continue;
            }
            self.deliver(dest, tag, Box::new(payload.clone()));
        }

        let mut flags = local_flag;
        let mut bitmap: Vec<u64> = payload[1..].to_vec();
        let mb = self.my_mailbox();
        let bo = self.world.backoff;
        for src in 0..self.size() {
            if src == self.rank {
                continue;
            }
            let src_w = self.world_rank(src);
            let mut slice = bo.first();
            let mut park = 0u64;
            loop {
                if let Some(msg) = mb.try_take(src, tag) {
                    self.world.on_recv(me, Some(src_w), &msg);
                    let v = *msg
                        .data
                        .downcast::<Vec<u64>>()
                        .unwrap_or_else(|_| panic!("agree payload type mismatch from {src_w}"));
                    flags |= v[0];
                    for (w, &word) in bitmap.iter_mut().zip(&v[1..]) {
                        *w |= word;
                    }
                    break;
                }
                if self.world.is_failed(src_w) {
                    // Scheduler-held contributions from the dead peer must
                    // not be lost: flush holds, re-check once, then give up.
                    mb.force_release();
                    if mb.has_match(src, tag) {
                        continue;
                    }
                    bitmap[src_w / 64] |= 1 << (src_w % 64);
                    break;
                }
                mb.wait_arrival(bo.park(slice, park));
                slice = bo.next(slice);
                park += 1;
            }
        }
        for r in self.world.failed_set() {
            bitmap[r / 64] |= 1 << (r % 64);
        }
        let failed = (0..self.world.size)
            .filter(|r| bitmap[r / 64] & (1 << (r % 64)) != 0)
            .collect();
        (flags, failed)
    }

    /// Builds a dense communicator of the survivors (ULFM
    /// `MPI_Comm_shrink`): internally agrees on the failure set, then every
    /// survivor deterministically derives the same membership (dead members
    /// removed, world-rank order preserved) and a fresh context. There is no
    /// extra rendezvous beyond the agreement — membership is a pure function
    /// of the agreed set, and mailboxes buffer any early traffic on the new
    /// context — so shrink cannot hang on the very failure it handles.
    pub fn shrink(&self) -> Comm {
        let (_flags, failed) = self.agree(0);
        let members_world: Vec<usize> = self
            .members
            .iter()
            .copied()
            .filter(|w| !failed.contains(w))
            .collect();
        let me = self.world_rank(self.rank);
        let new_rank = members_world
            .iter()
            .position(|&w| w == me)
            .expect("shrink called by a rank in the agreed failure set");
        let sseq = self.shrink_seq.get();
        self.shrink_seq.set(sseq + 1);
        // The context must be identical on every survivor: derive it from
        // the parent ctx, the shrink count, and the agreed failure set.
        let fail_hash = failed
            .iter()
            .fold(0x5u64, |h, &r| faultplan::mix(h ^ r as u64));
        let color = (fail_hash & 0x7fff_ffff) as i64;
        let seq = 0x5_1125u64.wrapping_add(sseq);
        let ctx = mix_ctx(self.ctx, seq, color);
        if let Some(check) = &self.world.check {
            check.register_ctx(ctx, (self.ctx, seq, color), me);
        }
        Comm {
            world: self.world.clone(),
            ctx,
            rank: new_rank,
            members: Arc::new(members_world),
            coll_seq: Cell::new(0),
            split_seq: Cell::new(0),
            agree_seq: Cell::new(0),
            shrink_seq: Cell::new(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    #[test]
    fn tag_encoding_is_injective_across_kinds() {
        let a = encode_tag(1, Kind::P2p, 5);
        let b = encode_tag(1, Kind::Coll, 5);
        let c = encode_tag(2, Kind::P2p, 5);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn send_recv_round_trip() {
        run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[1.5f64, 2.5], 1, 7);
            } else {
                let mut buf = [0.0f64; 2];
                comm.recv(&mut buf, 0, 7);
                assert_eq!(buf, [1.5, 2.5]);
            }
        });
    }

    #[test]
    fn messages_with_different_tags_do_not_cross() {
        run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[1u32], 1, 10);
                comm.send(&[2u32], 1, 20);
            } else {
                // Receive in reverse tag order.
                let b = comm.recv_vec::<u32>(0, 20);
                let a = comm.recv_vec::<u32>(0, 10);
                assert_eq!((a[0], b[0]), (1, 2));
            }
        });
    }

    #[test]
    fn recv_any_reports_source() {
        run(3, |comm| {
            if comm.rank() > 0 {
                comm.send(&[comm.rank() as u64], 0, 3);
            } else {
                let mut seen = [false; 3];
                for _ in 0..2 {
                    let (src, v) = comm.recv_any::<u64>(3);
                    assert_eq!(v[0] as usize, src);
                    seen[src] = true;
                }
                assert!(seen[1] && seen[2]);
            }
        });
    }

    #[test]
    fn split_creates_independent_tag_spaces() {
        run(4, |comm| {
            let color = (comm.rank() % 2) as i64;
            let sub = comm.split(color, comm.rank() as i64).unwrap();
            assert_eq!(sub.size(), 2);
            // Ranks 0,2 -> color 0 (sub ranks 0,1); ranks 1,3 -> color 1.
            let peer = 1 - sub.rank();
            sub.send(&[comm.rank() as u32], peer, 0);
            let got = sub.recv_vec::<u32>(peer, 0);
            // The peer's world rank differs from ours by 2.
            assert_eq!((got[0] as i64 - comm.rank() as i64).abs(), 2);
        });
    }

    #[test]
    fn dup_preserves_rank_and_size() {
        run(3, |comm| {
            let d = comm.dup();
            assert_eq!(d.rank(), comm.rank());
            assert_eq!(d.size(), comm.size());
            assert_ne!(d.ctx, comm.ctx);
        });
    }

    #[test]
    fn agree_ors_flags_across_living_members() {
        run(4, |comm| {
            let (flags, failed) = comm.agree(1u64 << comm.rank());
            assert_eq!(flags, 0b1111, "every member's flag must be OR'd in");
            assert!(failed.is_empty());
            // Agree is repeatable: a second round re-synchronises cleanly.
            let (flags, _) = comm.agree(u64::from(comm.rank() == 0));
            assert_eq!(flags, 1);
        });
    }

    #[test]
    fn agree_excludes_a_dead_member_and_reports_it() {
        let results = run(4, |comm| {
            if comm.rank() == 3 {
                comm.world.mark_failed(3);
                return None;
            }
            let (flags, failed) = comm.agree(1u64 << comm.rank());
            Some((flags, failed))
        });
        for (rank, r) in results.iter().enumerate() {
            if rank == 3 {
                assert!(r.is_none());
                continue;
            }
            let (flags, failed) = r.as_ref().expect("survivors agree");
            assert_eq!(
                *flags, 0b0111,
                "rank {rank}: dead member must not contribute"
            );
            assert_eq!(*failed, vec![3], "rank {rank}: failure set");
        }
    }

    #[test]
    fn shrink_renumbers_survivors_densely_and_communicates() {
        let results = run(4, |comm| {
            if comm.rank() == 1 {
                comm.world.mark_failed(1);
                return None;
            }
            let sub = comm.shrink();
            // The shrunk communicator must be fully usable: run a real
            // exchange over it.
            let send: Vec<u64> = (0..sub.size())
                .map(|d| (sub.rank() * 10 + d) as u64)
                .collect();
            let out = sub.ialltoall(&send, 1, vec![0u64; sub.size()]).wait(&sub);
            Some((sub.rank(), sub.size(), out))
        });
        // World ranks 0, 2, 3 survive and become sub ranks 0, 1, 2.
        let expect_rank = [Some(0), None, Some(1), Some(2)];
        for (wrank, r) in results.iter().enumerate() {
            match (r, expect_rank[wrank]) {
                (None, None) => {}
                (Some((sr, size, out)), Some(want)) => {
                    assert_eq!(*sr, want, "world rank {wrank}: dense renumbering");
                    assert_eq!(*size, 3);
                    for (s, &v) in out.iter().enumerate() {
                        assert_eq!(v, (s * 10 + want) as u64);
                    }
                }
                other => panic!("world rank {wrank}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_recv_length_panics() {
        run(1, |comm| {
            comm.send(&[1u8, 2, 3], 0, 0);
            let mut buf = [0u8; 2];
            comm.recv(&mut buf, 0, 0);
        });
    }
}
