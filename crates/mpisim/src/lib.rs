//! # mpisim — a thread-backed message-passing runtime with MPI semantics
//!
//! The workspace's stand-in for an MPI-3 library: ranks are OS threads in
//! one process, exchanging typed messages through matched mailboxes. The
//! pieces of MPI-3 the paper's design depends on are reproduced faithfully:
//!
//! * **Non-blocking all-to-all with manual progression** ([`IAlltoall`]):
//!   a libNBC-style round schedule that advances *only* inside
//!   `test`/`wait` calls — the semantics behind the paper's `MPI_Test`
//!   frequency parameters (`Fy`, `Fp`, `Fu`, `Fx`, §3.3).
//! * Blocking collectives: `alltoall(v)`, `barrier`, `bcast`, `gather`,
//!   `allgather`, reductions.
//! * Tagged point-to-point with MPI matching/ordering semantics, and
//!   communicator `dup`/`split`.
//!
//! Use [`run`] to launch a set of ranks:
//!
//! ```
//! let sums = mpisim::run(4, |comm| {
//!     let contrib = [comm.rank() as f64];
//!     comm.allreduce_sum(&contrib)[0]
//! });
//! assert_eq!(sums, vec![6.0; 4]);
//! ```
//!
//! A rank panic aborts the whole world (peers unwind with an "aborted"
//! panic instead of deadlocking), mirroring `MPI_Abort`.
//!
//! ## Fault injection
//!
//! [`run_with_faults`] launches a world with a [`FaultPlan`]: seeded message
//! drops with bounded retransmit, straggler/send delays, and blackholed
//! ranks. The non-blocking all-to-all then exposes the typed error path —
//! [`IAlltoall::try_test`] and [`IAlltoall::wait_timeout`] return a
//! [`CollError`] (`Stalled` / `Dropped`) instead of spinning forever or
//! panicking.

// The error-path hygiene this runtime promises: non-test code must surface
// typed errors (or panic with a diagnostic via expect), never `.unwrap()`.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod coll;
mod comm;
mod nbc;
mod world;

pub use comm::Comm;
pub use faultplan::FaultPlan;
pub use nbc::{CollError, IAlltoall};

use std::panic::AssertUnwindSafe;
use world::World;

/// Launches `size` ranks, each running `f` with its own [`Comm`] handle for
/// the world communicator, and returns their results in rank order.
///
/// Panics propagate: if any rank panics, `run` re-raises the first panic
/// after all ranks have unwound.
pub fn run<F, R>(size: usize, f: F) -> Vec<R>
where
    F: Fn(Comm) -> R + Send + Sync,
    R: Send,
{
    run_with_faults(size, FaultPlan::none(), f)
}

/// [`run`] with a [`FaultPlan`] injected into the world: non-blocking
/// collective sends are delayed, dropped (with bounded retransmit) and
/// blackholed per the plan's seeded decisions.
pub fn run_with_faults<F, R>(size: usize, faults: FaultPlan, f: F) -> Vec<R>
where
    F: Fn(Comm) -> R + Send + Sync,
    R: Send,
{
    let world = World::new(size, faults);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..size)
            .map(|rank| {
                let world = world.clone();
                let f = &f;
                s.spawn(move || {
                    let comm = Comm::world_comm(world.clone(), rank);
                    match std::panic::catch_unwind(AssertUnwindSafe(|| f(comm))) {
                        Ok(v) => Ok(v),
                        Err(e) => {
                            world.abort();
                            Err(e)
                        }
                    }
                })
            })
            .collect();
        let mut results = Vec::with_capacity(size);
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h
                .join()
                .expect("rank thread cannot itself panic outside catch_unwind")
            {
                Ok(v) => results.push(v),
                Err(e) => {
                    // Prefer the original panic over secondary "aborted"
                    // panics from peers that were woken by the abort flag.
                    let secondary = |p: &Box<dyn std::any::Any + Send>| {
                        p.downcast_ref::<String>()
                            .map(|s| s.contains("peer rank panicked"))
                            .or_else(|| {
                                p.downcast_ref::<&str>()
                                    .map(|s| s.contains("peer rank panicked"))
                            })
                            .unwrap_or(false)
                    };
                    match &first_panic {
                        None => first_panic = Some(e),
                        Some(prev) if secondary(prev) && !secondary(&e) => first_panic = Some(e),
                        _ => {}
                    }
                }
            }
        }
        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_in_rank_order() {
        let out = run(6, |comm| comm.rank() * comm.size());
        assert_eq!(out, vec![0, 6, 12, 18, 24, 30]);
    }

    #[test]
    fn single_rank_world() {
        let out = run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier();
            42
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    #[should_panic(expected = "deliberate failure")]
    fn rank_panic_propagates() {
        run(3, |comm| {
            if comm.rank() == 1 {
                panic!("deliberate failure in rank 1");
            }
            // Peers block on a message that never comes; the abort
            // machinery must unwind them rather than deadlock.
            let _ = comm.recv_vec::<u8>((comm.rank() + 1) % comm.size(), 99);
        });
    }

    #[test]
    #[should_panic(expected = "world size must be ≥ 1")]
    fn zero_ranks_rejected() {
        run(0, |_comm| ());
    }
}
