//! # mpisim — a thread-backed message-passing runtime with MPI semantics
//!
//! The workspace's stand-in for an MPI-3 library: ranks are OS threads in
//! one process, exchanging typed messages through matched mailboxes. The
//! pieces of MPI-3 the paper's design depends on are reproduced faithfully:
//!
//! * **Non-blocking all-to-all with manual progression** ([`IAlltoall`]):
//!   a libNBC-style round schedule that advances *only* inside
//!   `test`/`wait` calls — the semantics behind the paper's `MPI_Test`
//!   frequency parameters (`Fy`, `Fp`, `Fu`, `Fx`, §3.3).
//! * **Persistent all-to-all** ([`PersistentAlltoall`], MPI-4
//!   `MPI_Alltoall_init` analogue): schedule and staging set up once,
//!   then repeated generation-tagged `start`/`test`/`wait` cycles with
//!   zero per-execution negotiation; released with `free()`.
//! * Blocking collectives: `alltoall(v)`, `barrier`, `bcast`, `gather`,
//!   `allgather`, reductions.
//! * Tagged point-to-point with MPI matching/ordering semantics, and
//!   communicator `dup`/`split`.
//!
//! Use [`run`] to launch a set of ranks:
//!
//! ```
//! let sums = mpisim::run(4, |comm| {
//!     let contrib = [comm.rank() as f64];
//!     comm.allreduce_sum(&contrib)[0]
//! });
//! assert_eq!(sums, vec![6.0; 4]);
//! ```
//!
//! A rank panic aborts the whole world (peers unwind with an "aborted"
//! panic instead of deadlocking), mirroring `MPI_Abort`.
//!
//! ## Fault injection
//!
//! [`run_with_faults`] launches a world with a [`FaultPlan`]: seeded message
//! drops with bounded retransmit, straggler/send delays, and blackholed
//! ranks. The non-blocking all-to-all then exposes the typed error path —
//! [`IAlltoall::try_test`] and [`IAlltoall::wait_timeout`] return a
//! [`CollError`] (`Stalled` / `Dropped`) instead of spinning forever or
//! panicking.
//!
//! ## Rank death (ULFM-style recovery)
//!
//! A plan with a `RankCrash` fault kills one rank's thread at a tile
//! boundary ([`Comm::crash_point`]); launch such plans with
//! [`run_crashable`], which returns `None` for the dead rank and the
//! survivors' results in rank position. Survivors observe the death as
//! [`CollError::RankFailed`] at their next stuck point and recover with the
//! ULFM-flavoured primitives: [`Comm::revoke`] (poison in-flight operations
//! world-wide), [`Comm::agree`] (fault-aware consensus on an error flag and
//! the failure set), and [`Comm::shrink`] (dense survivor communicator).
//! See DESIGN.md §14.
//!
//! ## Verification (mpicheck)
//!
//! [`run_with_config`] launches a *checked* world: vector clocks on every
//! message, runtime MPI-usage lints (`MC001`–`MC004`), a wait-for-graph
//! deadlock detector that names the cycle of ranks (`MC005`), and an
//! optional seeded virtual scheduler ([`SchedConfig`]) that perturbs
//! delivery order deterministically so racy interleavings reproduce from
//! their seed. The `mpicheck` crate drives this over many schedules; see
//! DESIGN.md §12.

// The error-path hygiene this runtime promises: non-test code must surface
// typed errors (or panic with a diagnostic via expect), never `.unwrap()`.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod check;
mod coll;
mod comm;
mod nbc;
mod persistent;
mod world;

pub use check::{
    Backoff, CheckConfig, CheckOutcome, CheckReport, EvKind, EventRec, Finding, LintId,
    SchedConfig, SchedMode, Severity,
};
pub use comm::Comm;
pub use faultplan::{FaultKind, FaultPlan};
pub use nbc::{CollError, IAlltoall};
pub use persistent::PersistentAlltoall;

use check::CheckState;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use world::World;

/// Everything configurable about a world launch.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Faults to inject (the empty plan by default).
    pub faults: FaultPlan,
    /// Park-slice policy for blocking waits (defaults to the legacy 50 ms
    /// cap with exponential ramp-up from 500 µs).
    pub backoff: Backoff,
    /// Verification instrumentation; `None` runs unchecked.
    pub check: Option<CheckConfig>,
}

impl RunConfig {
    /// A checked run under `cfg` with tight park slices.
    pub fn checked(cfg: CheckConfig) -> Self {
        RunConfig {
            faults: FaultPlan::none(),
            backoff: Backoff::checked(),
            check: Some(cfg),
        }
    }
}

/// Launches `size` ranks, each running `f` with its own [`Comm`] handle for
/// the world communicator, and returns their results in rank order.
///
/// Panics propagate: if any rank panics, `run` re-raises the first panic
/// after all ranks have unwound.
pub fn run<F, R>(size: usize, f: F) -> Vec<R>
where
    F: Fn(Comm) -> R + Send + Sync,
    R: Send,
{
    run_with_faults(size, FaultPlan::none(), f)
}

/// [`run`] with a [`FaultPlan`] injected into the world: non-blocking
/// collective sends are delayed, dropped (with bounded retransmit) and
/// blackholed per the plan's seeded decisions.
pub fn run_with_faults<F, R>(size: usize, faults: FaultPlan, f: F) -> Vec<R>
where
    F: Fn(Comm) -> R + Send + Sync,
    R: Send,
{
    assert!(
        faults.crash.is_none(),
        "run_with_faults expects every rank to return a result; \
         use run_crashable for plans with a RankCrash fault"
    );
    let outcome = run_with_config(
        size,
        RunConfig {
            faults,
            ..RunConfig::default()
        },
        f,
    );
    outcome
        .results
        .expect("unchecked runs either return results or propagate the panic")
}

/// [`run_with_faults`] for plans that may kill a rank outright: returns one
/// `Option<R>` per world rank, `None` for ranks that died to an injected
/// `RankCrash` fault (survivor results keep their rank positions).
///
/// A genuine (non-injected) rank panic still aborts the world and
/// propagates, as with [`run`].
pub fn run_crashable<F, R>(size: usize, faults: FaultPlan, f: F) -> Vec<Option<R>>
where
    F: Fn(Comm) -> R + Send + Sync,
    R: Send,
{
    let outcome = run_with_config(
        size,
        RunConfig {
            faults,
            ..RunConfig::default()
        },
        f,
    );
    let crashed = outcome.crashed.clone();
    let survivors = outcome
        .results
        .expect("crash runs either return survivor results or propagate the panic");
    let mut out: Vec<Option<R>> = (0..size).map(|_| None).collect();
    let mut it = survivors.into_iter();
    for (rank, slot) in out.iter_mut().enumerate() {
        if !crashed.contains(&rank) {
            *slot = Some(it.next().expect("one result per surviving rank"));
        }
    }
    out
}

/// The fully-configurable launcher: [`run`] semantics plus fault injection,
/// backoff policy, and the verification layer.
///
/// Behaviour differences from [`run`]:
/// * Returns a [`CheckOutcome`]: per-rank results plus the verification
///   [`CheckReport`] (empty when `cfg.check` is `None`).
/// * When the deadlock detector fires (lint `MC005`), the world is aborted
///   and the resulting rank panics are **swallowed**: `results` is `None`
///   and the report carries the finding with the named cycle, instead of
///   the process unwinding with an opaque panic.
/// * An injected `RankCrash` fault kills its rank's thread *without*
///   aborting the world: survivors keep running, the dead rank is listed in
///   [`CheckOutcome::crashed`], and `results` holds the survivors' values in
///   rank order (the teardown leftover scan is skipped — orphaned traffic is
///   expected collateral of a death).
/// * Any other rank panic propagates, as with [`run`].
pub fn run_with_config<F, R>(size: usize, cfg: RunConfig, f: F) -> CheckOutcome<R>
where
    F: Fn(Comm) -> R + Send + Sync,
    R: Send,
{
    let schedule = match &cfg.check {
        Some(c) => c
            .sched
            .map(|s| s.describe())
            .unwrap_or_else(|| "native".to_owned()),
        None => String::new(),
    };
    let check_arc = cfg.check.map(|c| Arc::new(CheckState::new(size, c)));
    // Deterministic park jitter: unless the caller pinned a jitter seed,
    // fold the fault seed in so one `(fault seed, schedule)` pair fully
    // determines every wait-loop park slice — no ambient entropy.
    let backoff = if cfg.backoff.jitter_seed == 0 {
        cfg.backoff.with_seed(cfg.faults.seed)
    } else {
        cfg.backoff
    };
    // An injected death unwinds via `panic_any(RankCrashed)`; it is the
    // simulated failure mechanism, not a bug, so keep the default panic
    // hook from spraying a backtrace per kill (crash sweeps inject
    // hundreds). The filter keys on the payload type — real panics still
    // print through the previous hook. Process-global, installed once.
    if cfg.faults.has_crash() {
        static QUIET_CRASHES: std::sync::Once = std::sync::Once::new();
        QUIET_CRASHES.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info
                    .payload()
                    .downcast_ref::<world::RankCrashed>()
                    .is_none()
                {
                    prev(info);
                }
            }));
        });
    }
    let world = World::new(size, cfg.faults, backoff, check_arc.clone());
    let mut results = Vec::with_capacity(size);
    let mut crashed: Vec<usize> = Vec::new();
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..size)
            .map(|rank| {
                let world = world.clone();
                let f = &f;
                s.spawn(move || {
                    let comm = Comm::world_comm(world.clone(), rank);
                    match std::panic::catch_unwind(AssertUnwindSafe(|| f(comm))) {
                        Ok(v) => Ok(v),
                        Err(e) => {
                            // An *injected* crash (RankCrash fault) is a
                            // simulated process death, not a bug: the dead
                            // rank already marked itself failed, and the
                            // survivors must keep running — do NOT abort.
                            if e.downcast_ref::<world::RankCrashed>().is_none() {
                                world.abort();
                            }
                            Err(e)
                        }
                    }
                })
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            let joined = h.join().unwrap_or_else(|_| {
                // The rank thread died *outside* catch_unwind (an unwind in
                // the spawn scaffolding, or a panic-in-panic in a payload's
                // Drop). Abort the world so peers unwind, and surface a
                // diagnostic naming the rank instead of a bare expect.
                world.abort();
                Err(Box::new(format!(
                    "mpisim: rank {rank} thread terminated outside catch_unwind — \
                     aborting world (peer results are unreliable)"
                )) as Box<dyn std::any::Any + Send>)
            });
            match joined {
                Ok(v) => results.push(v),
                Err(e) => {
                    if let Some(c) = e.downcast_ref::<world::RankCrashed>() {
                        debug_assert_eq!(c.0, rank, "crash payload names the dying rank");
                        crashed.push(rank);
                        continue;
                    }
                    // Prefer the original panic over secondary "aborted"
                    // panics from peers that were woken by the abort flag.
                    let secondary = |p: &Box<dyn std::any::Any + Send>| {
                        p.downcast_ref::<String>()
                            .map(|s| s.contains("peer rank panicked"))
                            .or_else(|| {
                                p.downcast_ref::<&str>()
                                    .map(|s| s.contains("peer rank panicked"))
                            })
                            .unwrap_or(false)
                    };
                    match &first_panic {
                        None => first_panic = Some(e),
                        Some(prev) if secondary(prev) && !secondary(&e) => first_panic = Some(e),
                        _ => {}
                    }
                }
            }
        }
    });

    let complete = first_panic.is_none() && results.len() + crashed.len() == size;
    let Some(check) = check_arc else {
        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }
        return CheckOutcome {
            results: complete.then_some(results),
            crashed,
            report: CheckReport::default(),
        };
    };

    // Teardown lint MC001: messages still sitting in a mailbox after every
    // rank returned cleanly were posted but never received. Skipped after
    // an abort — and after a rank death, where in-flight traffic to and
    // from the dead process is expected collateral of the failure.
    let unmatched = if world.is_aborted() || !world.failed_set().is_empty() {
        None
    } else {
        world.force_release_all();
        let mut findings = Vec::new();
        for (dst, mb) in world.mailboxes.iter().enumerate() {
            for (src, tag) in mb.leftover_pairs() {
                let (ctx, kind, payload) = check::decode_tag(tag);
                findings.push(Finding {
                    id: LintId::UnmatchedSend,
                    severity: Severity::Error,
                    rank: Some(dst),
                    cycle: Vec::new(),
                    message: format!(
                        "message to rank {dst} from comm-rank {src} was posted but never \
                         received (ctx {ctx:#x}, {kind} payload {payload:#x})"
                    ),
                });
            }
        }
        Some(findings)
    };

    let failed = world.failed_set();
    drop(world);
    let mut report = match Arc::try_unwrap(check) {
        Ok(state) => state.into_report(schedule, unmatched),
        Err(_) => panic!("mpisim: check state still shared after world teardown"),
    };
    // MC002/MC006 exemption for the dead: an injected crash unwinds through
    // the rank's in-flight requests and persistent plans, so their drops are
    // collateral of the failure, not a leak bug — survivors purge the staged
    // rounds when they write the rank off. Leaks on *surviving* ranks still
    // report.
    if !failed.is_empty() {
        report.findings.retain(|f| {
            !((f.id == LintId::RequestLeak || f.id == LintId::PersistentLeak)
                && f.rank.is_some_and(|r| failed.contains(&r)))
        });
    }

    if report.deadlock().is_some() {
        // The detector aborted the world; the rank panics are the expected
        // mechanism, not the diagnosis — the finding is.
        return CheckOutcome {
            results: None,
            crashed,
            report,
        };
    }
    if let Some(p) = first_panic {
        std::panic::resume_unwind(p);
    }
    CheckOutcome {
        results: complete.then_some(results),
        crashed,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_in_rank_order() {
        let out = run(6, |comm| comm.rank() * comm.size());
        assert_eq!(out, vec![0, 6, 12, 18, 24, 30]);
    }

    #[test]
    fn single_rank_world() {
        let out = run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier();
            42
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    #[should_panic(expected = "deliberate failure")]
    fn rank_panic_propagates() {
        run(3, |comm| {
            if comm.rank() == 1 {
                panic!("deliberate failure in rank 1");
            }
            // Peers block on a message that never comes; the abort
            // machinery must unwind them rather than deadlock.
            let _ = comm.recv_vec::<u8>((comm.rank() + 1) % comm.size(), 99);
        });
    }

    #[test]
    #[should_panic(expected = "world size must be ≥ 1")]
    fn zero_ranks_rejected() {
        run(0, |_comm| ());
    }

    #[test]
    fn checked_run_reports_clean_on_clean_code() {
        let outcome = run_with_config(4, RunConfig::checked(CheckConfig::default()), |comm| {
            let sum = comm.allreduce_sum(&[comm.rank() as f64]);
            sum[0] as usize
        });
        assert_eq!(outcome.results, Some(vec![6; 4]));
        assert!(outcome.report.is_clean(), "{:?}", outcome.report.findings);
        assert!(outcome.report.delivered > 0);
        assert!(!outcome.report.events.is_empty());
    }

    #[test]
    fn checked_run_under_scheduler_still_correct() {
        for seed in 0..8 {
            let outcome = run_with_config(
                4,
                RunConfig::checked(CheckConfig::with_sched(SchedConfig::random(seed))),
                |comm| {
                    let send: Vec<i64> = (0..comm.size())
                        .map(|d| (comm.rank() * 10 + d) as i64)
                        .collect();
                    comm.ialltoall(&send, 1, vec![0i64; comm.size()])
                        .wait(&comm)
                },
            );
            let results = outcome.results.expect("no deadlock");
            for (me, out) in results.iter().enumerate() {
                for (s, &v) in out.iter().enumerate() {
                    assert_eq!(v, (s * 10 + me) as i64, "seed {seed}");
                }
            }
            assert!(
                outcome.report.is_clean(),
                "seed {seed}: {:?}",
                outcome.report.findings
            );
        }
    }

    #[test]
    fn crashed_rank_leaves_survivors_running() {
        // Rank 1 dies at tile boundary 0; survivors detect the death via
        // agree and return their results — no abort, no hang.
        let plan = FaultPlan::seeded(5).with_rank_crash(1, 0);
        let out = run_crashable(4, plan, |comm| {
            if comm.rank() == 1 {
                comm.crash_point(0); // dies here
            }
            let (_flags, failed) = comm.agree(0);
            failed
        });
        assert!(out[1].is_none(), "crashed rank must not produce a result");
        for (rank, r) in out.iter().enumerate() {
            if rank == 1 {
                continue;
            }
            assert_eq!(
                r.as_deref(),
                Some(&[1usize][..]),
                "rank {rank}: survivors must agree on the failure set"
            );
        }
    }

    #[test]
    fn crash_point_is_free_for_untargeted_ranks() {
        let plan = FaultPlan::seeded(5).with_rank_crash(2, 7);
        let out = run_crashable(2, plan, |comm| {
            // Plan targets world rank 2, which doesn't exist here; nothing
            // fires and the run completes normally.
            comm.crash_point(7);
            comm.rank()
        });
        assert_eq!(out, vec![Some(0), Some(1)]);
    }

    #[test]
    #[should_panic(expected = "use run_crashable")]
    fn run_with_faults_rejects_crash_plans() {
        let plan = FaultPlan::seeded(1).with_rank_crash(0, 0);
        let _ = run_with_faults(2, plan, |comm| comm.rank());
    }

    #[test]
    fn checked_run_records_the_crash_without_findings() {
        let plan = FaultPlan::seeded(9).with_rank_crash(0, 0);
        let outcome = run_with_config(
            3,
            RunConfig {
                faults: plan,
                backoff: Backoff::checked(),
                check: Some(CheckConfig::default()),
            },
            |comm| {
                if comm.rank() == 0 {
                    comm.crash_point(0);
                }
                let (_f, failed) = comm.agree(0);
                failed
            },
        );
        assert_eq!(outcome.crashed, vec![0]);
        let results = outcome.results.expect("survivors complete");
        assert_eq!(results, vec![vec![0], vec![0]]);
        assert!(outcome.report.is_clean(), "{:?}", outcome.report.findings);
    }

    #[test]
    fn unmatched_send_is_reported_as_mc001() {
        let outcome = run_with_config(2, RunConfig::checked(CheckConfig::default()), |comm| {
            if comm.rank() == 0 {
                comm.send(&[1u8], 1, 77); // never received
            }
            comm.barrier();
        });
        let f = outcome
            .report
            .findings
            .iter()
            .find(|f| f.id == LintId::UnmatchedSend)
            .expect("MC001 expected");
        assert_eq!(f.rank, Some(1));
        assert!(!outcome.report.is_clean());
    }
}
