//! Persistent non-blocking all-to-all — the runtime's analogue of MPI-4's
//! `MPI_Alltoall_init` / `MPI_Start` persistent collectives.
//!
//! Production FFT traffic is repetitive: the same `(communicator, counts)`
//! exchange executes millions of times. The one-shot [`crate::IAlltoall`]
//! re-derives its round schedule (counts, displacements, block table) and
//! re-registers a receive buffer on every post. A [`PersistentAlltoall`]
//! does that work **once** at [`Comm::alltoallv_init`] time and then
//! supports repeated [`PersistentAlltoall::start`] /
//! [`PersistentAlltoall::test`] / [`PersistentAlltoall::wait`] cycles with
//! zero per-execution negotiation:
//!
//! * the schedule vectors are shared (`Arc`) with every execution — never
//!   recomputed, never cloned;
//! * the receive buffer is registered at init and recycled across
//!   executions — no per-execution allocation on the receive side (the
//!   per-destination send blocks are the wire copy itself and are consumed
//!   by the peers);
//! * each `start` draws a fresh collective sequence number, so round tags
//!   of different executions (and of concurrent one-shot collectives) can
//!   never cross-match — the generation tag MPI pins down with per-request
//!   communicator contexts.
//!
//! The lifecycle discipline mirrors `IAlltoall`'s: a plan must end in
//! [`PersistentAlltoall::free`], which cancels any in-flight execution and
//! purges its staged rounds. Dropping an unfreed plan in a checked run
//! records lint **MC006** ([`LintId::PersistentLeak`]).

use crate::check::{CheckState, Finding, LintId, Severity};
use crate::comm::Comm;
use crate::nbc::{displs, CollError, IAlltoall};
use faultplan::PayloadBits;
use std::sync::Arc;
use std::time::Duration;

/// A persistent all-to-all plan: schedule computed at init, executions
/// started at will. Created by [`Comm::alltoall_init`] /
/// [`Comm::alltoallv_init`]; must be released with
/// [`PersistentAlltoall::free`].
pub struct PersistentAlltoall<T> {
    send_counts: Arc<[usize]>,
    send_displs: Arc<[usize]>,
    recv_counts: Arc<[usize]>,
    recv_displs: Arc<[usize]>,
    total_send: usize,
    /// Pre-registered receive staging, recycled across executions; holds
    /// the latest completed execution's blocks between executions.
    recv: Vec<T>,
    /// The in-flight (or failed-but-retryable) execution, `None` between
    /// executions. Completed executions are reclaimed eagerly, so a `Some`
    /// here is never complete.
    active: Option<IAlltoall<T>>,
    /// Executions started over this plan's lifetime.
    executions: u64,
    freed: bool,
    size: usize,
    /// World rank of the owner (diagnostics in the leak lint).
    world_rank: usize,
    /// Verification state of a checked run (`None` otherwise).
    check: Option<Arc<CheckState>>,
}

impl<T> Drop for PersistentAlltoall<T> {
    fn drop(&mut self) {
        // MC006: a persistent plan dropped without `free` leaves any
        // in-flight execution's staged rounds in peers' mailboxes and
        // (on a real MPI) leaks the registered request. Only *observed* in
        // checked runs; recorded, never panicked.
        if self.freed {
            return;
        }
        let in_flight = self.active.is_some();
        if let Some(exec) = &mut self.active {
            // One diagnostic per mistake: the plan-level finding below
            // covers the embedded execution too.
            exec.disarm_leak_lint();
        }
        if let Some(check) = &self.check {
            check.add_finding(Finding {
                id: LintId::PersistentLeak,
                severity: Severity::Error,
                rank: Some(self.world_rank),
                cycle: Vec::new(),
                message: format!(
                    "rank {} dropped a persistent all-to-all plan ({} execution(s) \
                     started{}) without free() — persistent requests must be freed",
                    self.world_rank,
                    self.executions,
                    if in_flight {
                        ", one still in flight"
                    } else {
                        ""
                    }
                ),
            });
        }
    }
}

impl Comm {
    /// Sets up a persistent all-to-all with a uniform per-peer `count`.
    /// `recv` is the registered receive staging buffer (length
    /// `count · size`), recycled across every execution.
    pub fn alltoall_init<T: PayloadBits + Clone + Send + 'static>(
        &self,
        count: usize,
        recv: Vec<T>,
    ) -> PersistentAlltoall<T> {
        let counts = vec![count; self.size()];
        self.alltoallv_init(&counts, &counts, recv)
    }

    /// Sets up a persistent vector all-to-all: `send_counts[d]` elements
    /// will go to rank `d` on every execution, `recv_counts[s]` arrive from
    /// rank `s`. All schedule state (displacements, block table, staging
    /// registration) is computed here, once; [`PersistentAlltoall::start`]
    /// does none of it.
    pub fn alltoallv_init<T: PayloadBits + Clone + Send + 'static>(
        &self,
        send_counts: &[usize],
        recv_counts: &[usize],
        recv: Vec<T>,
    ) -> PersistentAlltoall<T> {
        let p = self.size();
        assert_eq!(
            send_counts.len(),
            p,
            "send_counts must have one entry per rank"
        );
        assert_eq!(
            recv_counts.len(),
            p,
            "recv_counts must have one entry per rank"
        );
        let total_recv: usize = recv_counts.iter().sum();
        assert_eq!(recv.len(), total_recv, "recv buffer length mismatch");
        PersistentAlltoall {
            send_displs: displs(send_counts).into(),
            send_counts: send_counts.to_vec().into(),
            recv_displs: displs(recv_counts).into(),
            recv_counts: recv_counts.to_vec().into(),
            total_send: send_counts.iter().sum(),
            recv,
            active: None,
            executions: 0,
            freed: false,
            size: p,
            world_rank: self.world_rank(self.rank()),
            check: self.world.check.clone(),
        }
    }
}

impl<T: PayloadBits + Clone + Send + 'static> PersistentAlltoall<T> {
    /// Starts one execution over `send` (`MPI_Start`): stages the
    /// per-destination blocks (the wire copy) and kicks the eager self-copy
    /// round. Everything else — schedule, displacements, receive staging —
    /// was set up at init and is reused as-is.
    ///
    /// # Panics
    /// If the previous execution has not completed (persistent requests
    /// admit one outstanding execution), if the plan was freed, or if
    /// `send` does not match the registered counts.
    pub fn start(&mut self, comm: &Comm, send: &[T]) {
        assert!(!self.freed, "start on a freed persistent all-to-all");
        assert!(
            self.active.is_none(),
            "start before the previous execution completed — wait (or free) first"
        );
        assert_eq!(send.len(), self.total_send, "send buffer length mismatch");
        assert_eq!(
            self.recv.len(),
            self.recv_counts.iter().sum::<usize>(),
            "receive staging taken (take_recv) but not restored before start"
        );
        let send_blocks: Vec<Option<Vec<T>>> = (0..self.size)
            .map(|d| Some(send[self.send_displs[d]..][..self.send_counts[d]].to_vec()))
            .collect();
        let recv = std::mem::take(&mut self.recv);
        let exec = comm.start_alltoall(
            send_blocks,
            recv,
            self.recv_displs.clone(),
            self.recv_counts.clone(),
        );
        self.executions += 1;
        // The post's eager progression may already have completed the
        // exchange (p = 1, or every peer's block already queued).
        if exec.is_complete() {
            self.recv = exec.take_recv();
        } else {
            self.active = Some(exec);
        }
    }

    /// One `MPI_Test` on the current execution; `true` when it (or no
    /// execution at all) is complete. On completion the received blocks
    /// become available via [`Self::recv`].
    ///
    /// # Panics
    /// On a fault-plan error; use [`Self::try_test`] for the typed path.
    pub fn test(&mut self, comm: &Comm) -> bool {
        self.try_test(comm)
            .unwrap_or_else(|e| panic!("persistent all-to-all failed: {e}"))
    }

    /// Fallible `MPI_Test`: progress the current execution, surfacing the
    /// typed fault error. Errors are sticky per execution, exactly as for
    /// [`IAlltoall::try_test`].
    pub fn try_test(&mut self, comm: &Comm) -> Result<bool, CollError> {
        let Some(exec) = self.active.as_mut() else {
            return Ok(true);
        };
        let done = exec.try_test(comm)?;
        if done {
            self.reclaim();
        }
        Ok(done)
    }

    /// `MPI_Wait`: blocks until the current execution completes and returns
    /// the received blocks (per-source, in rank order). A no-op returning
    /// the previous results when no execution is in flight.
    ///
    /// # Panics
    /// On a fault-plan error; use [`Self::wait_timeout`] for the typed path.
    pub fn wait(&mut self, comm: &Comm) -> &[T] {
        if let Some(exec) = self.active.take() {
            // Reuses IAlltoall's backoff-managed wait (park slices reset on
            // every round advance) and reclaims the staging buffer.
            self.recv = exec.wait(comm);
        }
        &self.recv
    }

    /// `MPI_Wait` with a stall watchdog, mirroring
    /// [`IAlltoall::wait_timeout`]: on error the execution stays alive for
    /// a retry or for [`Self::free`]. On success the blocks are available
    /// via [`Self::recv`].
    pub fn wait_timeout(&mut self, comm: &Comm, timeout: Duration) -> Result<(), CollError> {
        let Some(exec) = self.active.as_mut() else {
            return Ok(());
        };
        exec.wait_timeout(comm, timeout)?;
        self.reclaim();
        Ok(())
    }

    /// The latest completed execution's received blocks.
    ///
    /// # Panics
    /// While an execution is in flight (its staging is not yet coherent).
    pub fn recv(&self) -> &[T] {
        assert!(
            self.active.is_none(),
            "recv() while an execution is in flight"
        );
        &self.recv
    }

    /// Takes the completed execution's received blocks *out* of the plan,
    /// for consumers that need an owned buffer (e.g. to read it while
    /// mutating other state). The registration stays alive; the buffer must
    /// come back via [`Self::restore_recv`] before the next [`Self::start`].
    ///
    /// # Panics
    /// While an execution is in flight.
    pub fn take_recv(&mut self) -> Vec<T> {
        assert!(
            self.active.is_none(),
            "take_recv() while an execution is in flight"
        );
        std::mem::take(&mut self.recv)
    }

    /// Returns a buffer taken with [`Self::take_recv`] to the plan's
    /// registered staging.
    ///
    /// # Panics
    /// If `buf` does not match the registered receive counts.
    pub fn restore_recv(&mut self, buf: Vec<T>) {
        assert_eq!(
            buf.len(),
            self.recv_counts.iter().sum::<usize>(),
            "restored buffer must match the registered receive counts"
        );
        self.recv = buf;
    }

    /// Moves a completed execution's buffer back into the plan.
    fn reclaim(&mut self) {
        if let Some(exec) = self.active.take() {
            debug_assert!(exec.is_complete(), "reclaim of an incomplete execution");
            self.recv = exec.take_recv();
        }
    }

    /// `true` when no execution is in flight.
    pub fn is_complete(&self) -> bool {
        self.active.is_none()
    }

    /// Executions started over this plan's lifetime.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// The sticky fault error of the current execution, if any.
    pub fn failure(&self) -> Option<CollError> {
        self.active.as_ref().and_then(|e| e.failure())
    }

    /// Releases the plan (`MPI_Request_free` for persistent requests):
    /// cancels any in-flight execution — purging its staged rounds from
    /// this rank's mailbox, with the same post-abort safety as
    /// [`IAlltoall::cancel`] — and disarms the MC006 leak lint. Returns the
    /// number of messages reclaimed.
    pub fn free(mut self, comm: &Comm) -> usize {
        self.freed = true;
        match self.active.take() {
            Some(exec) => exec.cancel(comm),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{run, CheckConfig, CollError, FaultPlan, LintId, RunConfig};
    use std::time::Duration;

    #[test]
    fn setup_once_execute_many_is_exact_every_time() {
        // Three executions over one plan, each with different data: every
        // execution must deliver its own permuted blocks — fresh generation
        // tags keep executions from cross-matching even though the plan
        // (schedule, staging) is shared.
        let p = 4;
        run(p, move |comm| {
            let me = comm.rank();
            let mut plan = comm.alltoall_init(2, vec![0i64; 2 * p]);
            for gen in 0..3i64 {
                let send: Vec<i64> = (0..p)
                    .flat_map(|d| {
                        let base = 1000 * gen + (me * 10 + d) as i64;
                        [base, -base]
                    })
                    .collect();
                plan.start(&comm, &send);
                let out = plan.wait(&comm).to_vec();
                for s in 0..p {
                    let base = 1000 * gen + (s * 10 + me) as i64;
                    assert_eq!(out[2 * s], base, "gen {gen} src {s}");
                    assert_eq!(out[2 * s + 1], -base, "gen {gen} src {s}");
                }
            }
            assert_eq!(plan.executions(), 3);
            plan.free(&comm);
        });
    }

    #[test]
    fn vector_counts_and_test_polling() {
        let p = 3;
        run(p, move |comm| {
            let me = comm.rank();
            // Rank i sends (d+1) elements valued i to rank d.
            let send_counts: Vec<usize> = (0..p).map(|d| d + 1).collect();
            let recv_counts = vec![me + 1; p];
            let total_recv = recv_counts.iter().sum();
            let mut plan = comm.alltoallv_init(&send_counts, &recv_counts, vec![0u8; total_recv]);
            for _ in 0..2 {
                let send: Vec<u8> = vec![me as u8; send_counts.iter().sum()];
                plan.start(&comm, &send);
                while !plan.test(&comm) {
                    std::thread::yield_now();
                }
                let out = plan.recv();
                for s in 0..p {
                    for j in 0..me + 1 {
                        assert_eq!(out[s * (me + 1) + j], s as u8);
                    }
                }
            }
            plan.free(&comm);
        });
    }

    #[test]
    fn single_rank_plan_completes_at_start() {
        run(1, |comm| {
            let mut plan = comm.alltoall_init(2, vec![0u64; 2]);
            plan.start(&comm, &[42, 7]);
            assert!(plan.is_complete(), "self-copy completes eagerly");
            assert_eq!(plan.recv(), &[42, 7]);
            plan.free(&comm);
        });
    }

    #[test]
    fn free_reclaims_an_in_flight_execution() {
        // Freeing a plan mid-execution must purge the staged rounds, like
        // IAlltoall::cancel — mailboxes quiesce afterwards.
        let p = 4;
        run(p, move |comm| {
            let send: Vec<u64> = (0..p).map(|d| d as u64).collect();
            let mut plan = comm.alltoall_init(1, vec![0u64; p]);
            plan.start(&comm, &send);
            let _ = plan.test(&comm);
            comm.barrier();
            plan.free(&comm);
            comm.barrier();
            assert_eq!(
                comm.pending_messages(),
                0,
                "rank {} leaked staged messages",
                comm.rank()
            );
        });
    }

    #[test]
    fn unfreed_plan_reports_mc006_freed_plan_is_clean() {
        let run_once = |free: bool| {
            crate::run_with_config(2, RunConfig::checked(CheckConfig::default()), move |comm| {
                let send = vec![comm.rank() as i32; 2];
                let mut plan = comm.alltoall_init(1, vec![0i32; 2]);
                plan.start(&comm, &send);
                plan.wait(&comm);
                if free {
                    plan.free(&comm);
                }
                // An unfreed plan drops here — with no execution in flight,
                // so MC006 is the only thing wrong with this world.
            })
        };
        let leaky = run_once(false);
        let findings: Vec<_> = leaky
            .report
            .findings
            .iter()
            .filter(|f| f.id == LintId::PersistentLeak)
            .collect();
        assert_eq!(findings.len(), 2, "{:?}", leaky.report.findings);
        assert!(findings[0].message.contains("free()"));
        let clean = run_once(true);
        assert!(clean.report.is_clean(), "{:?}", clean.report.findings);
    }

    #[test]
    fn in_flight_drop_reports_one_finding_not_two() {
        // A plan dropped with an execution still in flight must surface a
        // single MC006 naming the in-flight state — not an MC002 for the
        // embedded execution on top.
        let outcome =
            crate::run_with_config(3, RunConfig::checked(CheckConfig::default()), move |comm| {
                let send = vec![comm.rank() as i32; 3];
                let mut plan = comm.alltoall_init(1, vec![0i32; 3]);
                plan.start(&comm, &send);
                comm.barrier();
                drop(plan); // leak: neither waited nor freed
                comm.barrier();
            });
        let mc006 = outcome
            .report
            .findings
            .iter()
            .filter(|f| f.id == LintId::PersistentLeak)
            .count();
        let mc002 = outcome
            .report
            .findings
            .iter()
            .filter(|f| f.id == LintId::RequestLeak)
            .count();
        assert_eq!(mc002, 0, "{:?}", outcome.report.findings);
        assert_eq!(mc006, 3, "{:?}", outcome.report.findings);
        assert!(outcome
            .report
            .findings
            .iter()
            .any(|f| f.message.contains("in flight")));
    }

    #[test]
    fn straggler_between_executions_still_exact() {
        // A straggling member slows the exchange but every execution still
        // completes exactly — the persistent schedule is fault-transparent.
        let p = 3;
        let plan = FaultPlan::none().with_straggler_spec(faultplan::Straggler {
            rank: 1,
            compute_factor: 1.0,
            send_delay: Duration::from_millis(3),
        });
        crate::run_with_faults(p, plan, move |comm| {
            let me = comm.rank();
            let mut pa = comm.alltoall_init(1, vec![0i32; p]);
            for gen in 0..3i32 {
                let send: Vec<i32> = (0..p).map(|d| 100 * gen + (me * 10 + d) as i32).collect();
                pa.start(&comm, &send);
                let out = pa.wait(&comm).to_vec();
                for (s, &v) in out.iter().enumerate() {
                    assert_eq!(v, 100 * gen + (s * 10 + me) as i32, "gen {gen}");
                }
            }
            pa.free(&comm);
        });
    }

    #[test]
    fn revoked_comm_surfaces_revoked_on_the_persistent_path() {
        let p = 3;
        let results = run(p, move |comm| {
            let send: Vec<i32> = (0..p).map(|d| d as i32).collect();
            let mut plan = comm.alltoall_init(1, vec![0i32; p]);
            plan.start(&comm, &send);
            if comm.rank() == 0 {
                comm.revoke();
            } else {
                while !comm.is_revoked() {
                    std::thread::yield_now();
                }
            }
            let err = plan
                .wait_timeout(&comm, Duration::from_secs(5))
                .expect_err("revoked comm must not complete");
            // Sticky across polls of the same execution.
            assert_eq!(plan.try_test(&comm), Err(err));
            assert_eq!(plan.failure(), Some(err));
            plan.free(&comm);
            err
        });
        for (rank, e) in results.iter().enumerate() {
            assert_eq!(*e, CollError::Revoked, "rank {rank}");
        }
    }
}
