//! Non-blocking collectives with **manual progression** — the runtime's
//! analogue of `MPI_Ialltoall` / `MPI_Test` / `MPI_Wait` over a libNBC-style
//! round schedule.
//!
//! The collective is decomposed into `p` pairwise-exchange rounds; in round
//! `r`, rank `i` sends its block for rank `(i+r) mod p` and receives the
//! block from rank `(i−r) mod p`. Crucially, **rounds advance only inside
//! [`IAlltoall::test`] or [`IAlltoall::wait`]**: round `r`'s send is not even
//! posted until rounds `< r` have completed locally. A rank that computes
//! without polling therefore stalls its partners — precisely the
//! asynchronous-progression behaviour (Hoefler & Lumsdaine's "to thread or
//! not to thread") that the paper's `Fy/Fp/Fu/Fx` parameters exist to
//! manage.
//!
//! ## Faults and the typed error path
//!
//! When the world carries a [`faultplan::FaultPlan`], every round send
//! consults it: sends may be delayed (stragglers), dropped and retransmitted
//! within a bounded budget, or blackholed outright. The fallible entry
//! points — [`IAlltoall::try_test`] and [`IAlltoall::wait_timeout`] — then
//! surface a [`CollError`] instead of spinning forever (`Stalled`, detected
//! by a per-round progress watchdog) or panicking (`Dropped`, an exhausted
//! retransmit budget). The legacy `test`/`wait` keep their infallible
//! signatures and panic on a fault error, mirroring `MPI_Abort`.

use crate::check::{CheckState, Finding, LintId, Severity, WaitInfo};
use crate::comm::{encode_tag, Comm, Kind};
use faultplan::{checksum, flip_seeded_bit, PayloadBits};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a non-blocking collective could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollError {
    /// The round schedule made no progress for the watchdog timeout: the
    /// rank was waiting on `peer`'s block for `round` (a peer that stopped
    /// progressing, or whose messages are being swallowed).
    Stalled {
        /// First incomplete round of the schedule.
        round: usize,
        /// **World rank** whose block the stalled round is missing — the
        /// same numbering [`CollError::RankFailed`] uses, so the two stay
        /// comparable after a `shrink()` renumbers communicator ranks.
        peer: usize,
    },
    /// A round send exhausted its retransmit budget under a fault plan with
    /// `fail_after_budget`.
    Dropped {
        /// The round whose send was lost.
        round: usize,
        /// Destination communicator rank of the lost block.
        peer: usize,
    },
    /// A member of the communicator died (ULFM `MPI_ERR_PROC_FAILED`): the
    /// collective cannot complete and the operation surfaces the failure
    /// instead of hanging. Names the **world rank** of the dead process.
    RankFailed(usize),
    /// The communicator was revoked by a peer ([`Comm::revoke`], ULFM
    /// `MPI_ERR_REVOKED`): every in-flight operation on it is poisoned.
    Revoked,
    /// A round payload failed its wire checksum — silent data corruption in
    /// transit, detected rather than delivered. Surfaces only once the
    /// corrupt-retransmit budget is exhausted (a healing link retries
    /// transparently); corrupted data is **never** force-delivered.
    Corrupt {
        /// **World rank** whose payload failed the checksum.
        src: usize,
        /// Sequence number of the poisoned collective.
        seq: u64,
    },
}

impl std::fmt::Display for CollError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollError::Stalled { round, peer } => {
                write!(f, "stalled in round {round} waiting on world rank {peer}")
            }
            CollError::Dropped { round, peer } => {
                write!(f, "round {round} send to rank {peer} exhausted retransmits")
            }
            CollError::RankFailed(rank) => {
                write!(f, "world rank {rank} failed (process death)")
            }
            CollError::Revoked => write!(f, "communicator revoked by a peer"),
            CollError::Corrupt { src, seq } => write!(
                f,
                "payload from world rank {src} failed its checksum in collective {seq} \
                 (silent corruption detected)"
            ),
        }
    }
}

impl std::error::Error for CollError {}

/// One round payload on the mpisim wire: the block plus a checksum of its
/// bit pattern, computed by the sender from the pristine staged data. The
/// checksum is verified twice — at the delivery point (the link-layer CRC
/// model: a corrupt frame is discarded there and the sender's intact staged
/// copy retries) and end-to-end by the receiver before the block is copied
/// into the user buffer, so no corrupted payload can ever land silently.
pub(crate) struct Frame<T> {
    pub(crate) block: Vec<T>,
    pub(crate) sum: u64,
}

/// Block displacements implied by per-peer counts.
pub(crate) fn displs(counts: &[usize]) -> Vec<usize> {
    let mut d = Vec::with_capacity(counts.len());
    let mut acc = 0;
    for &c in counts {
        d.push(acc);
        acc += c;
    }
    d
}

/// An in-flight non-blocking all-to-all (vector variant). Created by
/// [`Comm::ialltoallv`] / [`Comm::ialltoall`]; completed by `test`/`wait`.
///
/// Owns both the staged send blocks and the receive buffer; `wait` (or
/// [`IAlltoall::take_recv`] after completion) hands the received data back,
/// laid out as contiguous per-source blocks in rank order.
pub struct IAlltoall<T> {
    seq: u64,
    /// Per-destination staged send blocks (`None` once pushed).
    send_blocks: Vec<Option<Vec<T>>>,
    recv: Vec<T>,
    /// Shared with a [`crate::PersistentAlltoall`] plan when this execution
    /// was started from one — the schedule is computed once, not per start.
    recv_counts: Arc<[usize]>,
    recv_displs: Arc<[usize]>,
    /// Next round awaiting its receive.
    round: usize,
    /// Rounds whose sends have been posted (`round ≤ sent ≤ round+1`).
    sent: usize,
    size: usize,
    rank: usize,
    /// Send attempts of the current round, counted across fault-plan drops.
    send_attempts: u32,
    /// Corrupt-discarded attempts of the current round (the link-layer ARQ
    /// counter), independent of the drop budget.
    corrupt_attempts: u32,
    /// A fault error this request hit; sticky, re-reported on every
    /// subsequent progression attempt.
    failed: Option<CollError>,
    /// Number of `test` calls made on this request (diagnostics mirroring
    /// the paper's Test-time accounting).
    tests: u64,
    /// Set by [`IAlltoall::cancel`]; suppresses the request-leak lint.
    cancelled: bool,
    /// World rank of the owner (diagnostics in the leak lint).
    world_rank: usize,
    /// Verification state of a checked run (`None` otherwise).
    check: Option<Arc<CheckState>>,
}

impl<T> Drop for IAlltoall<T> {
    fn drop(&mut self) {
        // MC002: an incomplete request dropped without `wait` or `cancel`
        // leaks its staged rounds in peers' mailboxes. Only *observed* in
        // checked runs; the lint is recorded, never panicked, so drops
        // during unwinding stay safe.
        if self.cancelled || self.round == self.size {
            return;
        }
        if let Some(check) = &self.check {
            check.add_finding(Finding {
                id: LintId::RequestLeak,
                severity: Severity::Error,
                rank: Some(self.world_rank),
                cycle: Vec::new(),
                message: format!(
                    "rank {} dropped IAlltoall seq {} at round {}/{} without wait or cancel \
                     — staged round messages leak in peers' mailboxes",
                    self.world_rank, self.seq, self.round, self.size
                ),
            });
        }
    }
}

impl Comm {
    /// Starts a non-blocking all-to-all: block `d` of `send` (length
    /// `count`) goes to rank `d`. `recv` must have length `count · size` and
    /// is consumed into the returned request.
    pub fn ialltoall<T: PayloadBits + Clone + Send + 'static>(
        &self,
        send: &[T],
        count: usize,
        recv: Vec<T>,
    ) -> IAlltoall<T> {
        let counts = vec![count; self.size()];
        self.ialltoallv(send, &counts, &counts, recv)
    }

    /// Vector variant: `send_counts[d]` elements go to rank `d` (packed
    /// contiguously in rank order), `recv_counts[s]` arrive from rank `s`.
    pub fn ialltoallv<T: PayloadBits + Clone + Send + 'static>(
        &self,
        send: &[T],
        send_counts: &[usize],
        recv_counts: &[usize],
        recv: Vec<T>,
    ) -> IAlltoall<T> {
        let p = self.size();
        assert_eq!(
            send_counts.len(),
            p,
            "send_counts must have one entry per rank"
        );
        assert_eq!(
            recv_counts.len(),
            p,
            "recv_counts must have one entry per rank"
        );
        let total_send: usize = send_counts.iter().sum();
        let total_recv: usize = recv_counts.iter().sum();
        assert_eq!(send.len(), total_send, "send buffer length mismatch");
        assert_eq!(recv.len(), total_recv, "recv buffer length mismatch");

        let sd = displs(send_counts);
        let send_blocks: Vec<Option<Vec<T>>> = (0..p)
            .map(|d| Some(send[sd[d]..sd[d] + send_counts[d]].to_vec()))
            .collect();

        self.start_alltoall(
            send_blocks,
            recv,
            displs(recv_counts).into(),
            recv_counts.to_vec().into(),
        )
    }

    /// Kicks off one execution over pre-staged blocks and shared schedule
    /// vectors — the common tail of [`Comm::ialltoallv`] and a persistent
    /// plan's `start()`. Draws a fresh collective sequence number so
    /// concurrent (or repeated) executions can never cross-match.
    pub(crate) fn start_alltoall<T: PayloadBits + Clone + Send + 'static>(
        &self,
        send_blocks: Vec<Option<Vec<T>>>,
        recv: Vec<T>,
        recv_displs: Arc<[usize]>,
        recv_counts: Arc<[usize]>,
    ) -> IAlltoall<T> {
        let mut req = IAlltoall {
            seq: self.next_coll_seq(),
            send_blocks,
            recv,
            recv_displs,
            recv_counts,
            round: 0,
            sent: 0,
            size: self.size(),
            rank: self.rank(),
            send_attempts: 0,
            corrupt_attempts: 0,
            failed: None,
            tests: 0,
            cancelled: false,
            world_rank: self.world_rank(self.rank()),
            check: self.world.check.clone(),
        };
        // Round 0 is the local block: complete it at post time, like real
        // NBC implementations do the self-copy eagerly. A fault error this
        // early is remembered and surfaced by the first test/wait.
        let _ = req.progress(self);
        req
    }
}

impl<T: PayloadBits + Clone + Send + 'static> IAlltoall<T> {
    fn round_tag(&self, round: usize) -> u64 {
        // 30 bits of sequence, 10 bits of round index.
        (self.seq << 10) | round as u64
    }

    /// Posts round `r`'s send to `dest`, applying the world's fault plan.
    /// Returns `Ok(false)` when this attempt was dropped (the block stays
    /// staged; a later progression opportunity retries).
    fn post_send(&mut self, comm: &Comm, r: usize, dest: usize) -> Result<bool, CollError> {
        let plan = comm.faults();
        if plan.is_active() {
            let src_w = comm.world_rank(self.rank);
            if plan.is_blackholed(src_w, r) {
                // Swallow the block but report success: this rank believes
                // it sent and never retries — the hard-stall scenario whose
                // detection falls to the peers' watchdogs.
                let _ = self.send_blocks[dest].take().expect("block sent twice");
                return Ok(true);
            }
            if plan.should_drop(
                self.seq,
                src_w,
                comm.world_rank(dest),
                r,
                self.send_attempts,
            ) {
                self.send_attempts += 1;
                if self.send_attempts > plan.max_retransmits() {
                    if plan.fail_after_budget() {
                        return Err(CollError::Dropped {
                            round: r,
                            peer: dest,
                        });
                    }
                    // Budget spent but the fault is transient: the network
                    // healed — force delivery below.
                } else {
                    return Ok(false);
                }
            }
            let delay = plan.send_delay_for(src_w);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            // Silent in-transit corruption: flip one seeded bit of a *copy*
            // of the staged block and run the delivery-point checksum — the
            // link-layer CRC model. A detected corrupt frame is discarded
            // (the pristine staged copy retries, ARQ-style) within the
            // corrupt-retransmit budget; past the budget the typed error
            // surfaces. Corrupted data is never force-delivered.
            if let Some(h) = plan.should_corrupt(
                self.seq,
                src_w,
                comm.world_rank(dest),
                r,
                self.corrupt_attempts,
            ) {
                let pristine = self.send_blocks[dest].as_deref().expect("block sent twice");
                let sum = checksum(pristine);
                let mut corrupted = pristine.to_vec();
                let _ = flip_seeded_bit(&mut corrupted, h);
                if checksum(&corrupted) != sum {
                    self.corrupt_attempts += 1;
                    if self.corrupt_attempts > plan.corrupt_retransmits() {
                        return Err(CollError::Corrupt {
                            src: src_w,
                            seq: self.seq,
                        });
                    }
                    return Ok(false);
                }
                // Checksum collision (impossible for a single flipped bit
                // by the PayloadBits contract, and the no-op flip of an
                // empty block): the frame passes the link CRC and is
                // delivered; the receiver's end-to-end verify shares the
                // same blind spot, which is exactly what the corruption
                // sweep's numerical gate exists to rule out.
                let _ = self.send_blocks[dest].take();
                comm.deliver(
                    dest,
                    encode_tag(comm.ctx, Kind::Nbc, self.round_tag(r)),
                    Box::new(Frame {
                        block: corrupted,
                        sum,
                    }),
                );
                self.send_attempts = 0;
                self.corrupt_attempts = 0;
                return Ok(true);
            }
        }
        let block = self.send_blocks[dest].take().expect("block sent twice");
        let sum = checksum(&block);
        comm.deliver(
            dest,
            encode_tag(comm.ctx, Kind::Nbc, self.round_tag(r)),
            Box::new(Frame { block, sum }),
        );
        self.send_attempts = 0;
        self.corrupt_attempts = 0;
        Ok(true)
    }

    /// Records a sticky fault error and returns it.
    fn fail(&mut self, e: CollError) -> Result<bool, CollError> {
        self.failed = Some(e);
        Err(e)
    }

    /// Called where progression would report "no progress possible right
    /// now": before parking, consult the failure detector. A dead member
    /// means the remaining rounds can never arrive, so the stuck state is
    /// surfaced as a typed [`CollError::RankFailed`] instead of a wait that
    /// either hangs (no watchdog) or mis-reports `Stalled` (with one).
    fn stuck(&mut self, comm: &Comm) -> Result<bool, CollError> {
        if let Some(dead) = comm.first_failed_member() {
            return self.fail(CollError::RankFailed(dead));
        }
        Ok(false)
    }

    /// Advances as many rounds as currently possible. Returns `Ok(true)`
    /// when the collective has completed; fault errors are sticky.
    fn progress(&mut self, comm: &Comm) -> Result<bool, CollError> {
        if let Some(e) = self.failed {
            return Err(e);
        }
        // A revoked communicator poisons every in-flight operation on it,
        // even ones that could still complete from queued messages — the
        // ULFM contract that lets one rank's failure detection interrupt
        // its peers' blocking waits promptly.
        if comm.is_revoked() {
            return self.fail(CollError::Revoked);
        }
        let p = self.size;
        while self.round < p {
            let r = self.round;
            if self.sent == r {
                let dest = (self.rank + r) % p;
                if dest == self.rank {
                    // Self block: copy directly, immune to faults.
                    let block = self.send_blocks[dest].take().expect("block sent twice");
                    let off = self.recv_displs[self.rank];
                    self.recv[off..off + block.len()].clone_from_slice(&block);
                    self.sent = r + 1;
                    self.round = r + 1;
                    continue;
                }
                match self.post_send(comm, r, dest) {
                    Ok(true) => self.sent = r + 1,
                    Ok(false) => return self.stuck(comm),
                    Err(e) => {
                        self.failed = Some(e);
                        return Err(e);
                    }
                }
            }
            let src = (self.rank + p - r) % p;
            debug_assert_ne!(src, self.rank, "self round handled above");
            let tag = encode_tag(comm.ctx, Kind::Nbc, self.round_tag(r));
            match comm.my_mailbox().try_take(src, tag) {
                Some(msg) => {
                    comm.world.on_recv(
                        comm.world_rank(self.rank),
                        Some(comm.world_rank(src)),
                        &msg,
                    );
                    let plan = comm.faults();
                    if plan.is_active() && !plan.recv_delay.is_zero() {
                        std::thread::sleep(plan.recv_delay);
                    }
                    let frame = *msg
                        .data
                        .downcast::<Frame<T>>()
                        .unwrap_or_else(|_| panic!("alltoall type mismatch in round {r}"));
                    // End-to-end integrity: re-verify the sender's checksum
                    // before the block touches the user buffer. Catches any
                    // corruption the delivery-point check did not (e.g. a
                    // flip while queued in the mailbox).
                    if checksum(&frame.block) != frame.sum {
                        return self.fail(CollError::Corrupt {
                            src: comm.world_rank(src),
                            seq: self.seq,
                        });
                    }
                    let block = frame.block;
                    assert_eq!(
                        block.len(),
                        self.recv_counts[src],
                        "alltoall count mismatch: rank {src} sent {}, we expected {}",
                        block.len(),
                        self.recv_counts[src]
                    );
                    let off = self.recv_displs[src];
                    self.recv[off..off + block.len()].clone_from_slice(&block);
                    self.round = r + 1;
                }
                None => return self.stuck(comm),
            }
        }
        Ok(true)
    }

    /// One `MPI_Test`: makes progress and reports completion.
    ///
    /// # Panics
    /// On a fault-plan error (exhausted retransmit budget); use
    /// [`Self::try_test`] for the typed error path.
    pub fn test(&mut self, comm: &Comm) -> bool {
        self.tests += 1;
        self.progress(comm)
            .unwrap_or_else(|e| panic!("all-to-all failed: {e}"))
    }

    /// Fallible `MPI_Test`: makes progress and reports completion, or the
    /// typed fault error.
    pub fn try_test(&mut self, comm: &Comm) -> Result<bool, CollError> {
        self.tests += 1;
        self.progress(comm)
    }

    /// `true` once every round has completed (no progress attempt).
    pub fn is_complete(&self) -> bool {
        self.round == self.size
    }

    /// Number of `test` calls made so far.
    pub fn test_count(&self) -> u64 {
        self.tests
    }

    /// Rounds of the schedule completed locally so far — the request-level
    /// progression state a `test` transition advances. Tracing consumers
    /// read this to see how far each poll pushed the collective.
    pub fn rounds_done(&self) -> usize {
        self.round
    }

    /// Total rounds in the schedule (one per rank, including the eager
    /// self-copy round).
    pub fn rounds_total(&self) -> usize {
        self.size
    }

    /// Communicator rank whose block the first incomplete round is missing
    /// — the single definition of the round-schedule source expression,
    /// shared by the wait-for graph and the stall watchdog.
    fn missing_src(&self) -> usize {
        (self.rank + self.size - self.round) % self.size
    }

    /// Registers the wait-for edge of the first incomplete round (checked
    /// runs): this rank is blocked on the peer whose block round `round`
    /// is missing.
    fn mark_blocked(&self, comm: &Comm) {
        if let Some(check) = &self.check {
            let src = self.missing_src();
            check.set_blocked(
                self.world_rank,
                WaitInfo {
                    peer_world: Some(comm.world_rank(src)),
                    src_key: src,
                    tag: encode_tag(comm.ctx, Kind::Nbc, self.round_tag(self.round)),
                },
            );
        }
    }

    fn clear_blocked(&self) {
        if let Some(check) = &self.check {
            check.clear_blocked(self.world_rank);
        }
    }

    /// `MPI_Wait`: progresses (blocking between arrivals, with exponential
    /// backoff up to the world's configured cap) until completion, then
    /// returns the receive buffer (per-source blocks in rank order).
    ///
    /// # Panics
    /// On a fault-plan error; use [`Self::wait_timeout`] for the typed
    /// error path.
    pub fn wait(mut self, comm: &Comm) -> Vec<T> {
        let bo = comm.world.backoff;
        let probe_after = self.check.as_ref().map(|c| c.config().deadlock_after);
        let mut slice = bo.first();
        let mut waited = Duration::ZERO;
        let mut last_round = self.round;
        loop {
            match self.progress(comm) {
                Ok(true) => {
                    self.clear_blocked();
                    return std::mem::take(&mut self.recv);
                }
                Ok(false) => {
                    // A round advance means the exchange is healthy: restart
                    // the ramp so steady progress keeps park slices short
                    // instead of inheriting the previous round's cap-length
                    // backoff (same policy as `wait_timeout`).
                    if self.round > last_round {
                        last_round = self.round;
                        slice = bo.first();
                    }
                    self.mark_blocked(comm);
                    comm.my_mailbox().wait_arrival(slice);
                    waited += slice;
                    if let Some(after) = probe_after {
                        if waited >= after {
                            comm.probe_deadlock_or_panic();
                            waited = Duration::ZERO;
                        }
                    }
                    slice = bo.next(slice);
                }
                Err(e) => panic!("all-to-all failed: {e}"),
            }
        }
    }

    /// `MPI_Wait` with a stall watchdog: progresses until completion, but if
    /// the round schedule advances by nothing for `timeout`, returns
    /// [`CollError::Stalled`] naming the first incomplete round and the peer
    /// it is missing. On success the receive buffer is available via
    /// [`Self::take_recv`]; on error the request stays alive for a retry (a
    /// later `wait_timeout` grants a fresh watchdog period) or for
    /// [`Self::cancel`].
    ///
    /// Detection latency is `timeout` plus one mailbox park slice (bounded
    /// by the world's backoff cap, 50 ms by default).
    pub fn wait_timeout(&mut self, comm: &Comm, timeout: Duration) -> Result<(), CollError> {
        let bo = comm.world.backoff;
        let mut slice = bo.first();
        let mut last_progress = Instant::now();
        let mut last_round = self.round;
        loop {
            if self.progress(comm)? {
                self.clear_blocked();
                return Ok(());
            }
            if self.round > last_round {
                last_round = self.round;
                last_progress = Instant::now();
                slice = bo.first();
            } else if last_progress.elapsed() >= timeout {
                self.clear_blocked();
                // Report the missing peer's *world* rank — the numbering
                // RankFailed uses and the one that stays meaningful after a
                // shrink() renumbers communicator ranks.
                let peer = comm.world_rank(self.missing_src());
                return Err(CollError::Stalled {
                    round: self.round,
                    peer,
                });
            }
            self.mark_blocked(comm);
            comm.my_mailbox().wait_arrival(slice);
            slice = bo.next(slice);
        }
    }

    /// Takes the receive buffer out of a completed request.
    ///
    /// # Panics
    /// If the collective has not completed.
    pub fn take_recv(mut self) -> Vec<T> {
        assert!(self.is_complete(), "take_recv on an incomplete all-to-all");
        std::mem::take(&mut self.recv)
    }

    /// Cancels an incomplete collective, purging every round message of this
    /// operation still queued in this rank's mailbox. Without this, dropping
    /// an in-flight request leaks its staged blocks in peers' queues for the
    /// lifetime of the world. Cancellation is collective: each rank reclaims
    /// the messages addressed to *it*, so all members must cancel (or
    /// complete) for the world to quiesce. Returns the number of messages
    /// reclaimed here.
    ///
    /// Safe after a world abort: once the abort flag is up, peers may be
    /// unwinding and tearing their mailboxes down concurrently, so cancel
    /// marks the request cancelled (disarming the leak lint) and skips the
    /// purge instead of racing teardown — the world is dead, nothing can
    /// observe the leftover messages. Idempotent in effect: already-complete
    /// or already-error requests cancel cleanly too.
    pub fn cancel(mut self, comm: &Comm) -> usize {
        self.cancelled = true;
        if comm.world_aborted() {
            return 0;
        }
        let mut purged = 0;
        for r in 0..self.size {
            let tag = encode_tag(comm.ctx, Kind::Nbc, self.round_tag(r));
            purged += comm.my_mailbox().purge(|m| m.tag == tag);
        }
        purged
    }
}

impl<T> IAlltoall<T> {
    /// Disarms the MC002 request-leak lint without purging. Used by the
    /// persistent-plan drop path, where the plan-level MC006 finding is the
    /// single diagnostic for the whole unfreed plan (its in-flight execution
    /// included) — two findings for one mistake would be noise.
    pub(crate) fn disarm_leak_lint(&mut self) {
        self.cancelled = true;
    }

    /// The sticky fault error this execution hit, if any.
    pub(crate) fn failure(&self) -> Option<CollError> {
        self.failed
    }
}

impl Comm {
    /// Blocking all-to-all, implemented as post + wait (what FFTW's
    /// transpose does with `MPI_Alltoall`).
    pub fn alltoall<T: PayloadBits + Clone + Send + 'static>(
        &self,
        send: &[T],
        count: usize,
        recv: &mut [T],
    ) {
        let staging = recv.to_vec();
        let out = self.ialltoall(send, count, staging).wait(self);
        recv.clone_from_slice(&out);
    }

    /// Blocking vector all-to-all.
    pub fn alltoallv<T: PayloadBits + Clone + Send + 'static>(
        &self,
        send: &[T],
        send_counts: &[usize],
        recv_counts: &[usize],
        recv: &mut [T],
    ) {
        let staging = recv.to_vec();
        let out = self
            .ialltoallv(send, send_counts, recv_counts, staging)
            .wait(self);
        recv.clone_from_slice(&out);
    }
}

#[cfg(test)]
mod tests {
    use super::CollError;
    use crate::{run, run_with_faults, FaultPlan};
    use std::time::Duration;

    #[test]
    fn ialltoall_permutes_blocks() {
        let p = 4;
        run(p, move |comm| {
            let me = comm.rank();
            // Block for dest d = [me*10 + d].
            let send: Vec<i64> = (0..p).map(|d| (me * 10 + d) as i64).collect();
            let recv = vec![0i64; p];
            let req = comm.ialltoall(&send, 1, recv);
            let out = req.wait(&comm);
            // Block from src s must be s*10 + me.
            for (s, &v) in out.iter().enumerate() {
                assert_eq!(v, (s * 10 + me) as i64);
            }
        });
    }

    #[test]
    fn blocking_alltoall_matches_nonblocking() {
        let p = 3;
        run(p, move |comm| {
            let me = comm.rank();
            let send: Vec<u32> = (0..2 * p).map(|i| (me * 100 + i) as u32).collect();
            let mut recv = vec![0u32; 2 * p];
            comm.alltoall(&send, 2, &mut recv);
            for s in 0..p {
                assert_eq!(recv[2 * s], (s * 100 + 2 * me) as u32);
                assert_eq!(recv[2 * s + 1], (s * 100 + 2 * me + 1) as u32);
            }
        });
    }

    #[test]
    fn alltoallv_with_uneven_counts() {
        let p = 3;
        run(p, move |comm| {
            let me = comm.rank();
            // Rank i sends (d+1) elements to rank d, all valued i.
            let send_counts: Vec<usize> = (0..p).map(|d| d + 1).collect();
            let recv_counts = vec![me + 1; p];
            let send: Vec<u8> = vec![me as u8; send_counts.iter().sum()];
            let mut recv = vec![0u8; recv_counts.iter().sum()];
            comm.alltoallv(&send, &send_counts, &recv_counts, &mut recv);
            for s in 0..p {
                for j in 0..me + 1 {
                    assert_eq!(recv[s * (me + 1) + j], s as u8);
                }
            }
        });
    }

    #[test]
    fn test_polling_completes_the_collective() {
        run(2, |comm| {
            let send = vec![comm.rank() as i32; 2];
            let recv = vec![0i32; 2];
            let mut req = comm.ialltoall(&send, 1, recv);
            let mut polls = 0u64;
            let done = loop {
                polls += 1;
                if req.test(&comm) {
                    break req.take_recv();
                }
                std::thread::yield_now();
            };
            assert!(req_polls_ok(polls));
            assert_eq!(done[1 - comm.rank()], (1 - comm.rank()) as i32);
            assert_eq!(done[comm.rank()], comm.rank() as i32);
        });

        fn req_polls_ok(polls: u64) -> bool {
            polls >= 1
        }
    }

    #[test]
    fn later_rounds_wait_for_local_progression() {
        // With p = 4, round r's send is posted only after rounds < r have
        // completed locally, so a rank that never polls withholds its later-
        // round sends and stalls its partners — the manual-progression
        // behaviour the paper's F* parameters manage. Rank 0 delays its
        // polling; everyone still completes once it does poll.
        let p = 4;
        run(p, move |comm| {
            let me = comm.rank();
            let send: Vec<i32> = (0..p).map(|d| (me * 10 + d) as i32).collect();
            let mut req = comm.ialltoall(&send, 1, vec![0i32; p]);
            if me == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
                // Peers cannot all be done: they need our round-2+ sends,
                // which only our own progression posts. (Round 1's send was
                // posted at ialltoall time.)
            }
            let out = loop {
                if req.test(&comm) {
                    break req.take_recv();
                }
                std::thread::yield_now();
            };
            for (s, &v) in out.iter().enumerate() {
                assert_eq!(v, (s * 10 + me) as i32);
            }
        });
    }

    #[test]
    fn multiple_outstanding_alltoalls_do_not_mix() {
        // The windowed pipeline posts W alltoalls concurrently; their round
        // tags must keep them apart even when tested out of order.
        let p = 3;
        run(p, move |comm| {
            let me = comm.rank();
            let a: Vec<i32> = (0..p).map(|d| (me * 10 + d) as i32).collect();
            let b: Vec<i32> = (0..p).map(|d| (me * 10 + d + 100) as i32).collect();
            let ra = comm.ialltoall(&a, 1, vec![0i32; p]);
            let rb = comm.ialltoall(&b, 1, vec![0i32; p]);
            // Complete the *second* first.
            let out_b = rb.wait(&comm);
            let out_a = ra.wait(&comm);
            for s in 0..p {
                assert_eq!(out_a[s], (s * 10 + me) as i32);
                assert_eq!(out_b[s], (s * 10 + me + 100) as i32);
            }
        });
    }

    #[test]
    fn round_progress_is_monotone_and_completes() {
        // rounds_done never decreases across test transitions and reaches
        // rounds_total exactly when the request reports completion.
        let p = 4;
        run(p, move |comm| {
            let me = comm.rank();
            let send: Vec<i32> = (0..p).map(|d| (me * 10 + d) as i32).collect();
            let mut req = comm.ialltoall(&send, 1, vec![0i32; p]);
            assert_eq!(req.rounds_total(), p);
            let mut last = req.rounds_done();
            loop {
                let done = req.test(&comm);
                let now = req.rounds_done();
                assert!(now >= last, "rounds went backwards: {last} -> {now}");
                last = now;
                assert_eq!(done, now == req.rounds_total());
                assert_eq!(done, req.is_complete());
                if done {
                    break;
                }
                std::thread::yield_now();
            }
        });
    }

    #[test]
    fn single_rank_alltoall_is_a_copy() {
        run(1, |comm| {
            let send = vec![42u64, 7];
            let out = comm.ialltoall(&send, 2, vec![0u64; 2]).wait(&comm);
            assert_eq!(out, vec![42, 7]);
        });
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn mismatched_counts_panic() {
        run(2, |comm| {
            // Rank 0 claims it will send 2 to each; rank 1 expects 3 from each.
            if comm.rank() == 0 {
                let send = vec![0u8; 4];
                let _ = comm
                    .ialltoallv(&send, &[2, 2], &[2, 2], vec![0u8; 4])
                    .wait(&comm);
            } else {
                let send = vec![0u8; 6];
                let _ = comm
                    .ialltoallv(&send, &[3, 3], &[3, 3], vec![0u8; 6])
                    .wait(&comm);
            }
        });
    }

    #[test]
    fn transient_drops_retransmit_to_completion() {
        // A lossy but healing network: every collective still delivers the
        // exact permuted blocks, via seeded drops and bounded retransmit.
        let p = 4;
        let plan = FaultPlan::seeded(11).with_drops(0.4, 8);
        run_with_faults(p, plan, move |comm| {
            let me = comm.rank();
            let send: Vec<i64> = (0..p).map(|d| (me * 10 + d) as i64).collect();
            let out = comm.ialltoall(&send, 1, vec![0i64; p]).wait(&comm);
            for (s, &v) in out.iter().enumerate() {
                assert_eq!(v, (s * 10 + me) as i64);
            }
        });
    }

    #[test]
    fn exhausted_fatal_budget_surfaces_dropped() {
        // Near-certain drops with a tiny budget and fail_after_budget: the
        // typed error must name a Dropped round, and it must be sticky.
        let p = 2;
        let plan = FaultPlan::seeded(3).with_fatal_drops(0.999, 1);
        let results = run_with_faults(p, plan, move |comm| {
            let send = vec![comm.rank() as i32; p];
            let mut req = comm.ialltoall(&send, 1, vec![0i32; p]);
            // wait_timeout bounds the run even if one direction's seeded
            // draws were to deliver: that rank would then stall (its peer's
            // send was dropped) rather than hang.
            let err = req
                .wait_timeout(&comm, Duration::from_secs(2))
                .expect_err("drops at p≈1 cannot complete");
            // Sticky: the same error re-reports.
            assert_eq!(req.try_test(&comm), Err(err));
            req.cancel(&comm);
            err
        });
        assert!(
            results
                .iter()
                .all(|e| matches!(e, CollError::Dropped { .. })),
            "{results:?}"
        );
    }

    #[test]
    fn transient_corruption_retransmits_to_completion() {
        // A link that flips bits: every corrupt frame is caught at the
        // delivery-point checksum and retried from the intact staged copy,
        // so the collective still delivers the exact permuted blocks.
        let p = 4;
        let plan = FaultPlan::seeded(13).with_payload_corruption(0.4, 8);
        run_with_faults(p, plan, move |comm| {
            let me = comm.rank();
            let send: Vec<i64> = (0..p).map(|d| (me * 10 + d) as i64).collect();
            let out = comm.ialltoall(&send, 1, vec![0i64; p]).wait(&comm);
            for (s, &v) in out.iter().enumerate() {
                assert_eq!(v, (s * 10 + me) as i64);
            }
        });
    }

    #[test]
    fn corruption_and_drops_heal_independently() {
        // Both fault families active at once: their budgets are separate
        // counters, so a run with healing drops *and* healing corruption
        // still completes exactly.
        let p = 3;
        let plan = FaultPlan::seeded(7)
            .with_drops(0.3, 8)
            .with_payload_corruption(0.3, 8);
        run_with_faults(p, plan, move |comm| {
            let me = comm.rank();
            let send: Vec<u32> = (0..p).map(|d| (me * 10 + d) as u32).collect();
            let out = comm.ialltoall(&send, 1, vec![0u32; p]).wait(&comm);
            for (s, &v) in out.iter().enumerate() {
                assert_eq!(v, (s * 10 + me) as u32);
            }
        });
    }

    #[test]
    fn exhausted_corrupt_budget_surfaces_corrupt_not_garbage() {
        // Near-certain corruption with a tiny budget: the typed Corrupt
        // error must surface (sticky), naming the sender's world rank — and
        // no rank may ever observe a wrong value in its receive buffer.
        let p = 2;
        let plan = FaultPlan::seeded(3).with_payload_corruption(0.999, 1);
        let results = run_with_faults(p, plan, move |comm| {
            let send = vec![comm.rank() as i32; p];
            let mut req = comm.ialltoall(&send, 1, vec![0i32; p]);
            let err = req
                .wait_timeout(&comm, Duration::from_secs(2))
                .expect_err("corruption at p≈1 cannot complete");
            assert_eq!(req.try_test(&comm), Err(err), "error must be sticky");
            req.cancel(&comm);
            err
        });
        for (rank, e) in results.iter().enumerate() {
            match e {
                CollError::Corrupt { src, .. } => {
                    // The sender detects its own frame being mangled, so it
                    // names itself; a stalled peer would name the sender too.
                    assert!(*src < p, "rank {rank}: bogus src {src}");
                }
                CollError::Stalled { .. } => {
                    // The peer whose incoming block was poisoned times out
                    // waiting — also a detection, never a delivery.
                }
                other => panic!("rank {rank}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn blackholed_peer_trips_the_watchdog() {
        // All of rank 1's non-self sends vanish while it believes they were
        // delivered. Under manual progression the stall cascades around the
        // ring — a rank stuck waiting on rank 1 withholds its own
        // later-round sends, starving even rank 1 itself — so every rank's
        // wait_timeout must surface Stalled within the watchdog period
        // instead of hanging. The watchdog names the *immediate* missing
        // peer, which for most ranks is an intermediate victim rather than
        // the blackholed origin.
        let p = 4;
        let plan = FaultPlan::none().with_blackhole(1, 0);
        let results = run_with_faults(p, plan, move |comm| {
            let me = comm.rank();
            let send: Vec<i32> = (0..p).map(|d| (me * 10 + d) as i32).collect();
            let mut req = comm.ialltoall(&send, 1, vec![0i32; p]);
            let out = req.wait_timeout(&comm, Duration::from_millis(150));
            req.cancel(&comm);
            out
        });
        for (rank, r) in results.iter().enumerate() {
            assert!(
                matches!(r, Err(CollError::Stalled { .. })),
                "rank {rank}: {r:?}"
            );
        }
    }

    #[test]
    fn wait_timeout_succeeds_on_a_healthy_network() {
        let p = 3;
        run(p, move |comm| {
            let me = comm.rank();
            let send: Vec<i32> = (0..p).map(|d| (me + d) as i32).collect();
            let mut req = comm.ialltoall(&send, 1, vec![0i32; p]);
            req.wait_timeout(&comm, Duration::from_secs(5))
                .expect("healthy network must complete");
            let out = req.take_recv();
            for (s, &v) in out.iter().enumerate() {
                assert_eq!(v, (s + me) as i32);
            }
        });
    }

    #[test]
    fn cancel_reclaims_staged_rounds() {
        // Regression: dropping an incomplete collective used to leak its
        // already-posted round sends in peers' mailboxes forever. After a
        // collective cancel, every mailbox must be empty again.
        let p = 4;
        run(p, move |comm| {
            let send: Vec<u64> = (0..p).map(|d| d as u64).collect();
            // Post, progress a little, then abandon without completing.
            let mut req = comm.ialltoall(&send, 1, vec![0u64; p]);
            let _ = req.test(&comm);
            // Every send of this collective happens inside the post or the
            // test above, so after the barrier no new pushes occur and a
            // single purge per rank reclaims everything.
            comm.barrier();
            req.cancel(&comm);
            comm.barrier();
            assert_eq!(
                comm.pending_messages(),
                0,
                "rank {} leaked staged messages",
                comm.rank()
            );
        });
    }

    #[test]
    fn dead_member_surfaces_rank_failed_naming_the_rank() {
        // Rank 2 "dies" (marks itself failed and returns without
        // participating). Every survivor's wait must surface RankFailed
        // naming world rank 2 — never Stalled, never a hang.
        let p = 4;
        let results = run(p, move |comm| {
            if comm.rank() == 2 {
                comm.world.mark_failed(2);
                return None;
            }
            let send: Vec<i32> = (0..p).map(|d| d as i32).collect();
            let mut req = comm.ialltoall(&send, 1, vec![0i32; p]);
            let err = req
                .wait_timeout(&comm, Duration::from_secs(5))
                .expect_err("a dead member cannot complete an alltoall");
            // Sticky on re-poll, and cancel still reclaims staged rounds.
            assert_eq!(req.try_test(&comm), Err(err));
            req.cancel(&comm);
            Some(err)
        });
        for (rank, r) in results.iter().enumerate() {
            if rank == 2 {
                assert!(r.is_none());
            } else {
                assert_eq!(
                    *r,
                    Some(CollError::RankFailed(2)),
                    "rank {rank}: wrong failure report"
                );
            }
        }
    }

    #[test]
    fn revoked_comm_poisons_in_flight_collectives() {
        let p = 3;
        let results = run(p, move |comm| {
            let send: Vec<i32> = (0..p).map(|d| d as i32).collect();
            let mut req = comm.ialltoall(&send, 1, vec![0i32; p]);
            if comm.rank() == 0 {
                comm.revoke();
            } else {
                // Hold polling until the poison is visible so the test is
                // deterministic (a fast schedule could otherwise complete
                // the exchange before the revoke lands).
                while !comm.is_revoked() {
                    std::thread::yield_now();
                }
            }
            // Every rank (including the revoker) sees the poison instead of
            // progressing; revoke wakes parked receivers, so this is bounded.
            let err = req
                .wait_timeout(&comm, Duration::from_secs(5))
                .expect_err("revoked comm must not complete");
            req.cancel(&comm);
            err
        });
        for (rank, e) in results.iter().enumerate() {
            assert_eq!(*e, CollError::Revoked, "rank {rank}");
        }
    }

    #[test]
    fn cancel_after_world_abort_is_safe_and_skips_the_purge() {
        // Regression (teardown race): cancelling an in-flight collective
        // after the world aborted used to purge mailboxes that peers might
        // be tearing down. Cancel must now be a no-op purge that still
        // disarms the leak lint, on every rank, without panicking.
        let p = 2;
        let results = run(p, move |comm| {
            let send: Vec<i32> = (0..p).map(|d| d as i32).collect();
            let req = comm.ialltoall(&send, 1, vec![0i32; p]);
            if comm.rank() == 0 {
                comm.world.abort();
            }
            while !comm.world.is_aborted() {
                std::thread::yield_now();
            }
            req.cancel(&comm)
        });
        assert_eq!(results, vec![0, 0], "post-abort cancel must not purge");
    }

    #[test]
    fn wait_backoff_resets_on_round_advance() {
        // Regression: `wait` used to let its park slice keep growing across
        // round boundaries, so a steadily-progressing exchange parked at the
        // backoff cap between rounds. Drops that heal after two retransmits
        // force (nearly) two full send-retry parks per round (no arrival can
        // wake a sender whose own retry is the blocker); with the per-round
        // reset those parks stay at the bottom of the ramp (~11 ms/round),
        // while the old behaviour pinned every round ≥ 2 at two cap-length
        // parks (≥ 200 ms each here).
        let p = 3;
        let cfg = crate::RunConfig {
            faults: FaultPlan::seeded(1).with_drops(0.99, 2),
            backoff: crate::Backoff {
                initial: Duration::from_millis(1),
                max: Duration::from_millis(100),
                multiplier: 10,
                jitter_seed: 1,
            },
            check: None,
        };
        let outcome = crate::run_with_config(p, cfg, move |comm| {
            let me = comm.rank();
            let send: Vec<i32> = (0..p).map(|d| (me * 10 + d) as i32).collect();
            let req = comm.ialltoall(&send, 1, vec![0i32; p]);
            let t0 = std::time::Instant::now();
            let out = req.wait(&comm);
            let waited = t0.elapsed();
            for (s, &v) in out.iter().enumerate() {
                assert_eq!(v, (s * 10 + me) as i32);
            }
            waited
        });
        let waits = outcome.results.expect("healing drops always complete");
        for (rank, waited) in waits.iter().enumerate() {
            assert!(
                *waited < Duration::from_millis(160),
                "rank {rank}: wait parked for {waited:?} under steady progress — \
                 backoff slice not reset on round advance"
            );
        }
    }

    #[test]
    fn stalled_peer_is_a_world_rank_on_split_comms() {
        // World ranks 2 and 3 form a sub-communicator; world rank 2's sends
        // are blackholed. World rank 3 is comm rank 1 in the sub-comm and
        // waits on comm rank 0 — the watchdog must name *world* rank 2, the
        // same numbering RankFailed uses, so stall reports stay unambiguous
        // after a shrink() renumbers survivors.
        let p = 4;
        let plan = FaultPlan::none().with_blackhole(2, 0);
        let results = run_with_faults(p, plan, move |comm| {
            let color = if comm.rank() >= 2 { 0 } else { -1 };
            let Some(sub) = comm.split(color, comm.rank() as i64) else {
                return None; // world ranks 0 and 1 sit this exchange out
            };
            let send: Vec<i32> = (0..2).map(|d| (comm.rank() * 10 + d) as i32).collect();
            let mut req = sub.ialltoall(&send, 1, vec![0i32; 2]);
            let out = req.wait_timeout(&sub, Duration::from_millis(150));
            req.cancel(&sub);
            Some(out)
        });
        // World rank 2's own receive leg is healthy (rank 3's sends are not
        // blackholed), so only rank 3 observes the stall.
        assert_eq!(
            results[3],
            Some(Err(CollError::Stalled { round: 1, peer: 2 })),
            "stall must name world rank 2, not comm rank 0"
        );
        assert_eq!(
            results[2],
            Some(Ok(())),
            "the blackholed rank still receives"
        );
    }

    #[test]
    fn straggler_send_delay_slows_but_completes() {
        let p = 3;
        let plan = FaultPlan::none().with_straggler_spec(faultplan::Straggler {
            rank: 0,
            compute_factor: 1.0,
            send_delay: Duration::from_millis(5),
        });
        run_with_faults(p, plan, move |comm| {
            let me = comm.rank();
            let send: Vec<i32> = (0..p).map(|d| (me * 10 + d) as i32).collect();
            let out = comm.ialltoall(&send, 1, vec![0i32; p]).wait(&comm);
            for (s, &v) in out.iter().enumerate() {
                assert_eq!(v, (s * 10 + me) as i32);
            }
        });
    }
}
