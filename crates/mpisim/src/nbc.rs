//! Non-blocking collectives with **manual progression** — the runtime's
//! analogue of `MPI_Ialltoall` / `MPI_Test` / `MPI_Wait` over a libNBC-style
//! round schedule.
//!
//! The collective is decomposed into `p` pairwise-exchange rounds; in round
//! `r`, rank `i` sends its block for rank `(i+r) mod p` and receives the
//! block from rank `(i−r) mod p`. Crucially, **rounds advance only inside
//! [`IAlltoall::test`] or [`IAlltoall::wait`]**: round `r`'s send is not even
//! posted until rounds `< r` have completed locally. A rank that computes
//! without polling therefore stalls its partners — precisely the
//! asynchronous-progression behaviour (Hoefler & Lumsdaine's "to thread or
//! not to thread") that the paper's `Fy/Fp/Fu/Fx` parameters exist to
//! manage.

use crate::comm::{encode_tag, Comm, Kind};
use crate::world::Msg;

/// Block displacements implied by per-peer counts.
fn displs(counts: &[usize]) -> Vec<usize> {
    let mut d = Vec::with_capacity(counts.len());
    let mut acc = 0;
    for &c in counts {
        d.push(acc);
        acc += c;
    }
    d
}

/// An in-flight non-blocking all-to-all (vector variant). Created by
/// [`Comm::ialltoallv`] / [`Comm::ialltoall`]; completed by `test`/`wait`.
///
/// Owns both the staged send blocks and the receive buffer; `wait` (or
/// [`IAlltoall::take_recv`] after completion) hands the received data back,
/// laid out as contiguous per-source blocks in rank order.
pub struct IAlltoall<T> {
    seq: u64,
    /// Per-destination staged send blocks (`None` once pushed).
    send_blocks: Vec<Option<Vec<T>>>,
    recv: Vec<T>,
    recv_counts: Vec<usize>,
    recv_displs: Vec<usize>,
    /// Next round awaiting its receive.
    round: usize,
    /// Rounds whose sends have been posted (`round ≤ sent ≤ round+1`).
    sent: usize,
    size: usize,
    rank: usize,
    /// Number of `test` calls made on this request (diagnostics mirroring
    /// the paper's Test-time accounting).
    tests: u64,
}

impl Comm {
    /// Starts a non-blocking all-to-all: block `d` of `send` (length
    /// `count`) goes to rank `d`. `recv` must have length `count · size` and
    /// is consumed into the returned request.
    pub fn ialltoall<T: Clone + Send + 'static>(
        &self,
        send: &[T],
        count: usize,
        recv: Vec<T>,
    ) -> IAlltoall<T> {
        let counts = vec![count; self.size()];
        self.ialltoallv(send, &counts, &counts, recv)
    }

    /// Vector variant: `send_counts[d]` elements go to rank `d` (packed
    /// contiguously in rank order), `recv_counts[s]` arrive from rank `s`.
    pub fn ialltoallv<T: Clone + Send + 'static>(
        &self,
        send: &[T],
        send_counts: &[usize],
        recv_counts: &[usize],
        recv: Vec<T>,
    ) -> IAlltoall<T> {
        let p = self.size();
        assert_eq!(
            send_counts.len(),
            p,
            "send_counts must have one entry per rank"
        );
        assert_eq!(
            recv_counts.len(),
            p,
            "recv_counts must have one entry per rank"
        );
        let total_send: usize = send_counts.iter().sum();
        let total_recv: usize = recv_counts.iter().sum();
        assert_eq!(send.len(), total_send, "send buffer length mismatch");
        assert_eq!(recv.len(), total_recv, "recv buffer length mismatch");

        let sd = displs(send_counts);
        let send_blocks: Vec<Option<Vec<T>>> = (0..p)
            .map(|d| Some(send[sd[d]..sd[d] + send_counts[d]].to_vec()))
            .collect();

        let mut req = IAlltoall {
            seq: self.next_coll_seq(),
            send_blocks,
            recv,
            recv_displs: displs(recv_counts),
            recv_counts: recv_counts.to_vec(),
            round: 0,
            sent: 0,
            size: p,
            rank: self.rank(),
            tests: 0,
        };
        // Round 0 is the local block: complete it at post time, like real
        // NBC implementations do the self-copy eagerly.
        req.progress(self);
        req
    }
}

impl<T: Clone + Send + 'static> IAlltoall<T> {
    fn round_tag(&self, round: usize) -> u64 {
        // 30 bits of sequence, 10 bits of round index.
        (self.seq << 10) | round as u64
    }

    /// Advances as many rounds as currently possible. Returns `true` when
    /// the collective has completed.
    fn progress(&mut self, comm: &Comm) -> bool {
        let p = self.size;
        while self.round < p {
            let r = self.round;
            if self.sent == r {
                let dest = (self.rank + r) % p;
                let block = self.send_blocks[dest].take().expect("block sent twice");
                if dest == self.rank {
                    // Self block: copy directly.
                    let off = self.recv_displs[self.rank];
                    self.recv[off..off + block.len()].clone_from_slice(&block);
                    self.sent = r + 1;
                    self.round = r + 1;
                    continue;
                }
                comm.world.mailboxes[comm.world_rank(dest)].push(Msg {
                    src: self.rank,
                    tag: encode_tag(comm.ctx, Kind::Nbc, self.round_tag(r)),
                    data: Box::new(block),
                });
                self.sent = r + 1;
            }
            let src = (self.rank + p - r) % p;
            debug_assert_ne!(src, self.rank, "self round handled above");
            let tag = encode_tag(comm.ctx, Kind::Nbc, self.round_tag(r));
            match comm.my_mailbox().try_take(src, tag) {
                Some(msg) => {
                    let block = *msg
                        .data
                        .downcast::<Vec<T>>()
                        .unwrap_or_else(|_| panic!("alltoall type mismatch in round {r}"));
                    assert_eq!(
                        block.len(),
                        self.recv_counts[src],
                        "alltoall count mismatch: rank {src} sent {}, we expected {}",
                        block.len(),
                        self.recv_counts[src]
                    );
                    let off = self.recv_displs[src];
                    self.recv[off..off + block.len()].clone_from_slice(&block);
                    self.round = r + 1;
                }
                None => return false,
            }
        }
        true
    }

    /// One `MPI_Test`: makes progress and reports completion.
    pub fn test(&mut self, comm: &Comm) -> bool {
        self.tests += 1;
        self.progress(comm)
    }

    /// `true` once every round has completed (no progress attempt).
    pub fn is_complete(&self) -> bool {
        self.round == self.size
    }

    /// Number of `test` calls made so far.
    pub fn test_count(&self) -> u64 {
        self.tests
    }

    /// Rounds of the schedule completed locally so far — the request-level
    /// progression state a `test` transition advances. Tracing consumers
    /// read this to see how far each poll pushed the collective.
    pub fn rounds_done(&self) -> usize {
        self.round
    }

    /// Total rounds in the schedule (one per rank, including the eager
    /// self-copy round).
    pub fn rounds_total(&self) -> usize {
        self.size
    }

    /// `MPI_Wait`: progresses (blocking between arrivals) until completion,
    /// then returns the receive buffer (per-source blocks in rank order).
    pub fn wait(mut self, comm: &Comm) -> Vec<T> {
        while !self.progress(comm) {
            comm.my_mailbox().park_for_arrival();
        }
        self.recv
    }

    /// Takes the receive buffer out of a completed request.
    ///
    /// # Panics
    /// If the collective has not completed.
    pub fn take_recv(self) -> Vec<T> {
        assert!(self.is_complete(), "take_recv on an incomplete all-to-all");
        self.recv
    }
}

impl Comm {
    /// Blocking all-to-all, implemented as post + wait (what FFTW's
    /// transpose does with `MPI_Alltoall`).
    pub fn alltoall<T: Clone + Send + 'static>(&self, send: &[T], count: usize, recv: &mut [T]) {
        let staging = recv.to_vec();
        let out = self.ialltoall(send, count, staging).wait(self);
        recv.clone_from_slice(&out);
    }

    /// Blocking vector all-to-all.
    pub fn alltoallv<T: Clone + Send + 'static>(
        &self,
        send: &[T],
        send_counts: &[usize],
        recv_counts: &[usize],
        recv: &mut [T],
    ) {
        let staging = recv.to_vec();
        let out = self
            .ialltoallv(send, send_counts, recv_counts, staging)
            .wait(self);
        recv.clone_from_slice(&out);
    }
}

#[cfg(test)]
mod tests {
    use crate::run;

    #[test]
    fn ialltoall_permutes_blocks() {
        let p = 4;
        run(p, move |comm| {
            let me = comm.rank();
            // Block for dest d = [me*10 + d].
            let send: Vec<i64> = (0..p).map(|d| (me * 10 + d) as i64).collect();
            let recv = vec![0i64; p];
            let req = comm.ialltoall(&send, 1, recv);
            let out = req.wait(&comm);
            // Block from src s must be s*10 + me.
            for (s, &v) in out.iter().enumerate() {
                assert_eq!(v, (s * 10 + me) as i64);
            }
        });
    }

    #[test]
    fn blocking_alltoall_matches_nonblocking() {
        let p = 3;
        run(p, move |comm| {
            let me = comm.rank();
            let send: Vec<u32> = (0..2 * p).map(|i| (me * 100 + i) as u32).collect();
            let mut recv = vec![0u32; 2 * p];
            comm.alltoall(&send, 2, &mut recv);
            for s in 0..p {
                assert_eq!(recv[2 * s], (s * 100 + 2 * me) as u32);
                assert_eq!(recv[2 * s + 1], (s * 100 + 2 * me + 1) as u32);
            }
        });
    }

    #[test]
    fn alltoallv_with_uneven_counts() {
        let p = 3;
        run(p, move |comm| {
            let me = comm.rank();
            // Rank i sends (d+1) elements to rank d, all valued i.
            let send_counts: Vec<usize> = (0..p).map(|d| d + 1).collect();
            let recv_counts = vec![me + 1; p];
            let send: Vec<u8> = vec![me as u8; send_counts.iter().sum()];
            let mut recv = vec![0u8; recv_counts.iter().sum()];
            comm.alltoallv(&send, &send_counts, &recv_counts, &mut recv);
            for s in 0..p {
                for j in 0..me + 1 {
                    assert_eq!(recv[s * (me + 1) + j], s as u8);
                }
            }
        });
    }

    #[test]
    fn test_polling_completes_the_collective() {
        run(2, |comm| {
            let send = vec![comm.rank() as i32; 2];
            let recv = vec![0i32; 2];
            let mut req = comm.ialltoall(&send, 1, recv);
            let mut polls = 0u64;
            let done = loop {
                polls += 1;
                if req.test(&comm) {
                    break req.take_recv();
                }
                std::thread::yield_now();
            };
            assert!(req_polls_ok(polls));
            assert_eq!(done[1 - comm.rank()], (1 - comm.rank()) as i32);
            assert_eq!(done[comm.rank()], comm.rank() as i32);
        });

        fn req_polls_ok(polls: u64) -> bool {
            polls >= 1
        }
    }

    #[test]
    fn later_rounds_wait_for_local_progression() {
        // With p = 4, round r's send is posted only after rounds < r have
        // completed locally, so a rank that never polls withholds its later-
        // round sends and stalls its partners — the manual-progression
        // behaviour the paper's F* parameters manage. Rank 0 delays its
        // polling; everyone still completes once it does poll.
        let p = 4;
        run(p, move |comm| {
            let me = comm.rank();
            let send: Vec<i32> = (0..p).map(|d| (me * 10 + d) as i32).collect();
            let mut req = comm.ialltoall(&send, 1, vec![0i32; p]);
            if me == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
                // Peers cannot all be done: they need our round-2+ sends,
                // which only our own progression posts. (Round 1's send was
                // posted at ialltoall time.)
            }
            let out = loop {
                if req.test(&comm) {
                    break req.take_recv();
                }
                std::thread::yield_now();
            };
            for (s, &v) in out.iter().enumerate() {
                assert_eq!(v, (s * 10 + me) as i32);
            }
        });
    }

    #[test]
    fn multiple_outstanding_alltoalls_do_not_mix() {
        // The windowed pipeline posts W alltoalls concurrently; their round
        // tags must keep them apart even when tested out of order.
        let p = 3;
        run(p, move |comm| {
            let me = comm.rank();
            let a: Vec<i32> = (0..p).map(|d| (me * 10 + d) as i32).collect();
            let b: Vec<i32> = (0..p).map(|d| (me * 10 + d + 100) as i32).collect();
            let ra = comm.ialltoall(&a, 1, vec![0i32; p]);
            let rb = comm.ialltoall(&b, 1, vec![0i32; p]);
            // Complete the *second* first.
            let out_b = rb.wait(&comm);
            let out_a = ra.wait(&comm);
            for s in 0..p {
                assert_eq!(out_a[s], (s * 10 + me) as i32);
                assert_eq!(out_b[s], (s * 10 + me + 100) as i32);
            }
        });
    }

    #[test]
    fn round_progress_is_monotone_and_completes() {
        // rounds_done never decreases across test transitions and reaches
        // rounds_total exactly when the request reports completion.
        let p = 4;
        run(p, move |comm| {
            let me = comm.rank();
            let send: Vec<i32> = (0..p).map(|d| (me * 10 + d) as i32).collect();
            let mut req = comm.ialltoall(&send, 1, vec![0i32; p]);
            assert_eq!(req.rounds_total(), p);
            let mut last = req.rounds_done();
            loop {
                let done = req.test(&comm);
                let now = req.rounds_done();
                assert!(now >= last, "rounds went backwards: {last} -> {now}");
                last = now;
                assert_eq!(done, now == req.rounds_total());
                assert_eq!(done, req.is_complete());
                if done {
                    break;
                }
                std::thread::yield_now();
            }
        });
    }

    #[test]
    fn single_rank_alltoall_is_a_copy() {
        run(1, |comm| {
            let send = vec![42u64, 7];
            let out = comm.ialltoall(&send, 2, vec![0u64; 2]).wait(&comm);
            assert_eq!(out, vec![42, 7]);
        });
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn mismatched_counts_panic() {
        run(2, |comm| {
            // Rank 0 claims it will send 2 to each; rank 1 expects 3 from each.
            if comm.rank() == 0 {
                let send = vec![0u8; 4];
                let _ = comm
                    .ialltoallv(&send, &[2, 2], &[2, 2], vec![0u8; 4])
                    .wait(&comm);
            } else {
                let send = vec![0u8; 6];
                let _ = comm
                    .ialltoallv(&send, &[3, 3], &[3, 3], vec![0u8; 6])
                    .wait(&comm);
            }
        });
    }
}
