//! Blocking collective operations.
//!
//! Simple, correctness-first algorithms: the real-mode runtime exists to
//! validate the 3-D FFT pipeline at laptop scale (p ≤ 64), where flat and
//! tree algorithms are indistinguishable in cost next to the transforms.

use crate::comm::{encode_tag, Comm, Kind};

impl Comm {
    /// Internal send in the collective tag space: `(seq, round)` identifies
    /// the message uniquely within this communicator.
    fn coll_send<T: Clone + Send + 'static>(&self, buf: &[T], dest: usize, seq: u64, round: u64) {
        self.deliver(
            dest,
            encode_tag(self.ctx, Kind::Coll, (seq << 8) | round),
            Box::new(buf.to_vec()),
        );
    }

    fn coll_recv<T: Clone + Send + 'static>(&self, src: usize, seq: u64, round: u64) -> Vec<T> {
        let msg = self.blocking_take(src, encode_tag(self.ctx, Kind::Coll, (seq << 8) | round));
        *msg.data
            .downcast::<Vec<T>>()
            .unwrap_or_else(|_| panic!("collective type mismatch from rank {src}"))
    }

    /// Dissemination barrier: `⌈log2 p⌉` rounds of pairwise signals.
    pub fn barrier(&self) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let me = self.rank();
        let seq = self.next_coll_seq();
        let mut dist = 1;
        let mut round = 0u64;
        while dist < p {
            let to = (me + dist) % p;
            let from = (me + p - dist) % p;
            self.coll_send(&[1u8], to, seq, round);
            let _ = self.coll_recv::<u8>(from, seq, round);
            dist *= 2;
            round += 1;
        }
    }

    /// Broadcast from `root` along a binomial tree.
    pub fn bcast<T: Clone + Send + 'static>(&self, buf: &mut Vec<T>, root: usize) {
        let p = self.size();
        let seq = self.next_coll_seq();
        if p == 1 {
            return;
        }
        let me = self.rank();
        // Rotate so the root is virtual rank 0.
        let vrank = (me + p - root) % p;
        if vrank != 0 {
            // Receive from parent.
            let parent_v = vrank & (vrank - 1); // clear lowest set bit
            let parent = (parent_v + root) % p;
            *buf = self.coll_recv::<T>(parent, seq, 0);
        }
        // Forward to children: vrank | (1 << b) for bits above our lowest
        // set bit (all bits for the root).
        let lowest = if vrank == 0 {
            usize::BITS
        } else {
            vrank.trailing_zeros()
        };
        for b in (0..lowest).rev() {
            let child_v = vrank | (1usize << b);
            if child_v != vrank && child_v < p {
                let child = (child_v + root) % p;
                self.coll_send(buf, child, seq, 0);
            }
        }
    }

    /// Gathers equal-sized contributions to `root`; returns the
    /// concatenation (rank order) on the root, `None` elsewhere.
    pub fn gather<T: Clone + Send + 'static>(&self, contrib: &[T], root: usize) -> Option<Vec<T>> {
        let p = self.size();
        let seq = self.next_coll_seq();
        if self.rank() == root {
            let mut out = Vec::with_capacity(contrib.len() * p);
            for s in 0..p {
                if s == root {
                    out.extend_from_slice(contrib);
                } else {
                    out.extend(self.coll_recv::<T>(s, seq, 0));
                }
            }
            Some(out)
        } else {
            self.coll_send(contrib, root, seq, 0);
            None
        }
    }

    /// All-gather: every rank receives the rank-ordered concatenation.
    pub fn allgather<T: Clone + Send + 'static>(&self, contrib: &[T]) -> Vec<T> {
        let mut v = self.gather(contrib, 0).unwrap_or_default();
        self.bcast(&mut v, 0);
        v
    }

    /// Element-wise f64 sum-reduction to `root`.
    pub fn reduce_sum(&self, contrib: &[f64], root: usize) -> Option<Vec<f64>> {
        let p = self.size();
        let seq = self.next_coll_seq();
        if self.rank() == root {
            let mut acc = contrib.to_vec();
            for s in 0..p {
                if s == root {
                    continue;
                }
                let v = self.coll_recv::<f64>(s, seq, 0);
                assert_eq!(v.len(), acc.len(), "reduce length mismatch from rank {s}");
                for (a, b) in acc.iter_mut().zip(v) {
                    *a += b;
                }
            }
            Some(acc)
        } else {
            self.coll_send(contrib, root, seq, 0);
            None
        }
    }

    /// Element-wise f64 sum-reduction delivered to every rank.
    pub fn allreduce_sum(&self, contrib: &[f64]) -> Vec<f64> {
        let mut v = self.reduce_sum(contrib, 0).unwrap_or_default();
        self.bcast(&mut v, 0);
        v
    }

    /// Maximum of one f64 across ranks, delivered everywhere.
    pub fn allreduce_max(&self, x: f64) -> f64 {
        let all = self.allgather(&[x]);
        all.into_iter().fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use crate::run;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn barrier_synchronizes_phases() {
        let before = Arc::new(AtomicUsize::new(0));
        let b2 = before.clone();
        run(5, move |comm| {
            b2.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            assert_eq!(b2.load(Ordering::SeqCst), 5);
            comm.barrier();
        });
    }

    #[test]
    fn repeated_barriers_do_not_cross_talk() {
        run(4, |comm| {
            for _ in 0..50 {
                comm.barrier();
            }
        });
    }

    #[test]
    fn bcast_from_every_root() {
        run(6, |comm| {
            for root in 0..comm.size() {
                let mut v = if comm.rank() == root {
                    vec![root as u64 * 3, 17]
                } else {
                    Vec::new()
                };
                comm.bcast(&mut v, root);
                assert_eq!(v, vec![root as u64 * 3, 17]);
            }
        });
    }

    #[test]
    fn gather_concatenates_in_rank_order() {
        run(4, |comm| {
            let contrib = [comm.rank() as i32, -(comm.rank() as i32)];
            let out = comm.gather(&contrib, 2);
            if comm.rank() == 2 {
                assert_eq!(out.unwrap(), vec![0, 0, 1, -1, 2, -2, 3, -3]);
            } else {
                assert!(out.is_none());
            }
        });
    }

    #[test]
    fn allgather_delivers_everywhere() {
        run(3, |comm| {
            let out = comm.allgather(&[comm.rank() as u8]);
            assert_eq!(out, vec![0, 1, 2]);
        });
    }

    #[test]
    fn reduce_and_allreduce_sum() {
        run(4, |comm| {
            let contrib = [1.0, comm.rank() as f64];
            let all = comm.allreduce_sum(&contrib);
            assert_eq!(all, vec![4.0, 6.0]);
            let max = comm.allreduce_max(comm.rank() as f64);
            assert_eq!(max, 3.0);
        });
    }
}
