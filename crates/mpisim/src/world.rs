//! Shared state backing a set of simulated ranks.
//!
//! One [`World`] is created per [`crate::run`] invocation. It owns a mailbox
//! per rank (tag/source-matched message queues), a generation-counted
//! barrier, and the bookkeeping used by communicator `split`.

use faultplan::FaultPlan;
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A message in flight: the payload is a type-erased `Vec<T>`.
pub(crate) struct Msg {
    pub src: usize,
    pub tag: u64,
    pub data: Box<dyn Any + Send>,
}

/// Per-rank mailbox with blocking matched receive.
pub(crate) struct Mailbox {
    queue: Mutex<Vec<Msg>>,
    arrived: Condvar,
    /// Set when any rank panics; blocking receives then panic instead of
    /// hanging the joiner (the runtime's `MPI_Abort` analogue).
    aborted: Arc<AtomicBool>,
}

impl Mailbox {
    fn new(aborted: Arc<AtomicBool>) -> Self {
        Mailbox {
            queue: Mutex::new(Vec::new()),
            arrived: Condvar::new(),
            aborted,
        }
    }

    fn check_abort(&self) {
        if self.aborted.load(Ordering::Acquire) {
            panic!("mpisim: aborted because a peer rank panicked");
        }
    }

    /// Deposits a message and wakes any waiting receiver.
    pub fn push(&self, msg: Msg) {
        let mut q = self.queue.lock();
        q.push(msg);
        self.arrived.notify_all();
    }

    /// Removes and returns the first message matching `(src, tag)`, or
    /// `None` when none is queued. FIFO per (src, tag) pair, as MPI
    /// ordering semantics require.
    pub fn try_take(&self, src: usize, tag: u64) -> Option<Msg> {
        let mut q = self.queue.lock();
        let pos = q.iter().position(|m| m.src == src && m.tag == tag)?;
        Some(q.remove(pos))
    }

    /// Blocking matched receive.
    pub fn take(&self, src: usize, tag: u64) -> Msg {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|m| m.src == src && m.tag == tag) {
                return q.remove(pos);
            }
            self.arrived
                .wait_for(&mut q, std::time::Duration::from_millis(50));
            self.check_abort();
        }
    }

    /// Blocking receive from any source with the given tag. Returns the
    /// earliest queued match.
    pub fn take_any(&self, tag: u64) -> Msg {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|m| m.tag == tag) {
                return q.remove(pos);
            }
            self.arrived
                .wait_for(&mut q, std::time::Duration::from_millis(50));
            self.check_abort();
        }
    }

    /// Parks the caller until any new message arrives (used by `wait` on
    /// non-blocking collectives to avoid spinning).
    pub fn park_for_arrival(&self) {
        {
            let mut q = self.queue.lock();
            // Re-check under the lock happens at the caller; a single wakeup
            // is enough because the caller loops.
            self.arrived
                .wait_for(&mut q, std::time::Duration::from_millis(50));
        }
        self.check_abort();
    }

    /// Number of queued messages (diagnostics).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Removes every queued message matching `pred`; returns how many were
    /// removed. Used by `IAlltoall::cancel` to reclaim staged rounds of an
    /// abandoned collective.
    pub fn purge<F: Fn(&Msg) -> bool>(&self, pred: F) -> usize {
        let mut q = self.queue.lock();
        let before = q.len();
        q.retain(|m| !pred(m));
        before - q.len()
    }
}

/// Rendezvous table used by `Comm::split`: ranks post `(color, key, rank)`
/// tuples under a split-operation sequence number and the last arrival
/// computes the grouping.
/// One rank's posted `(color, key, world_rank)` tuple.
type SplitEntry = (i64, i64, usize);
/// Per-rank split outcome: `(new_rank, member_world_ranks)`.
type SplitResult = (usize, Vec<usize>);

pub(crate) struct SplitTable {
    entries: Mutex<HashMap<u64, Vec<SplitEntry>>>,
    done: Condvar,
    results: Mutex<HashMap<u64, HashMap<usize, SplitResult>>>,
}

impl SplitTable {
    fn new() -> Self {
        SplitTable {
            entries: Mutex::new(HashMap::new()),
            done: Condvar::new(),
            results: Mutex::new(HashMap::new()),
        }
    }

    /// Posts this rank's split key and blocks until the grouping for `seq`
    /// is available; returns `(new_rank, member_world_ranks)` where members
    /// are sorted by `(key, world_rank)`. A negative `color` opts out and
    /// returns an empty membership.
    pub fn split(
        &self,
        seq: u64,
        n: usize,
        color: i64,
        key: i64,
        rank: usize,
    ) -> (usize, Vec<usize>) {
        {
            let mut e = self.entries.lock();
            let v = e.entry(seq).or_default();
            v.push((color, key, rank));
            if v.len() == n {
                // Last arrival computes every group's membership.
                let list = e.remove(&seq).expect("just inserted");
                let mut by_color: HashMap<i64, Vec<(i64, usize)>> = HashMap::new();
                for (c, k, r) in list {
                    if c >= 0 {
                        by_color.entry(c).or_default().push((k, r));
                    }
                }
                let mut res: HashMap<usize, (usize, Vec<usize>)> = HashMap::new();
                for (_c, mut members) in by_color {
                    members.sort();
                    let ranks: Vec<usize> = members.iter().map(|&(_, r)| r).collect();
                    for (new_rank, &(_, r)) in members.iter().enumerate() {
                        res.insert(r, (new_rank, ranks.clone()));
                    }
                }
                self.results.lock().insert(seq, res);
                self.done.notify_all();
            }
        }
        let mut r = self.results.lock();
        loop {
            if let Some(groups) = r.get_mut(&seq) {
                if color < 0 {
                    return (usize::MAX, Vec::new());
                }
                if let Some(out) = groups.remove(&rank) {
                    return out;
                }
            }
            self.done.wait(&mut r);
        }
    }
}

/// The process-wide state shared by all ranks of one `run` invocation.
pub(crate) struct World {
    pub size: usize,
    pub mailboxes: Vec<Mailbox>,
    pub split_table: SplitTable,
    /// Faults to inject into this run's collectives (the empty plan for
    /// worlds launched via [`crate::run`]).
    pub faults: Arc<FaultPlan>,
    aborted: Arc<AtomicBool>,
}

impl World {
    pub fn new(size: usize, faults: FaultPlan) -> Arc<Self> {
        assert!(size >= 1, "world size must be ≥ 1");
        let aborted = Arc::new(AtomicBool::new(false));
        Arc::new(World {
            size,
            mailboxes: (0..size).map(|_| Mailbox::new(aborted.clone())).collect(),
            split_table: SplitTable::new(),
            faults: Arc::new(faults),
            aborted,
        })
    }

    /// Marks the world aborted and wakes every blocked receiver so rank
    /// threads unwind instead of deadlocking after a peer panic.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        for mb in &self.mailboxes {
            mb.arrived.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn mailbox_matches_src_and_tag() {
        let mb = Mailbox::new(Arc::new(AtomicBool::new(false)));
        mb.push(Msg {
            src: 1,
            tag: 7,
            data: Box::new(vec![1i32]),
        });
        mb.push(Msg {
            src: 2,
            tag: 7,
            data: Box::new(vec![2i32]),
        });
        mb.push(Msg {
            src: 1,
            tag: 9,
            data: Box::new(vec![3i32]),
        });
        assert!(mb.try_take(3, 7).is_none());
        let m = mb.try_take(2, 7).unwrap();
        assert_eq!(m.src, 2);
        let m = mb.take(1, 9);
        assert_eq!(*m.data.downcast::<Vec<i32>>().unwrap(), vec![3]);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn mailbox_is_fifo_per_pair() {
        let mb = Mailbox::new(Arc::new(AtomicBool::new(false)));
        mb.push(Msg {
            src: 0,
            tag: 1,
            data: Box::new(vec![10i32]),
        });
        mb.push(Msg {
            src: 0,
            tag: 1,
            data: Box::new(vec![20i32]),
        });
        let a = mb.take(0, 1);
        let b = mb.take(0, 1);
        assert_eq!(*a.data.downcast::<Vec<i32>>().unwrap(), vec![10]);
        assert_eq!(*b.data.downcast::<Vec<i32>>().unwrap(), vec![20]);
    }

    #[test]
    fn blocking_take_wakes_on_push() {
        let mb = Arc::new(Mailbox::new(Arc::new(AtomicBool::new(false))));
        let mb2 = mb.clone();
        let h = thread::spawn(move || {
            let m = mb2.take(5, 42);
            *m.data.downcast::<Vec<u8>>().unwrap()
        });
        thread::sleep(std::time::Duration::from_millis(20));
        mb.push(Msg {
            src: 5,
            tag: 42,
            data: Box::new(vec![9u8]),
        });
        assert_eq!(h.join().unwrap(), vec![9]);
    }

    #[test]
    fn split_groups_by_color_and_orders_by_key() {
        let t = Arc::new(SplitTable::new());
        let mut handles = Vec::new();
        // 4 ranks: colors 0,0,1,1; keys reversed within color.
        for (rank, (color, key)) in [(0i64, 1i64), (0, 0), (1, 5), (1, 2)].iter().enumerate() {
            let t = t.clone();
            let (color, key) = (*color, *key);
            handles.push(thread::spawn(move || t.split(0, 4, color, key, rank)));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Ranks 0,1 share color 0; rank 1 has the lower key so becomes rank 0.
        assert_eq!(results[0], (1, vec![1, 0]));
        assert_eq!(results[1], (0, vec![1, 0]));
        assert_eq!(results[2], (1, vec![3, 2]));
        assert_eq!(results[3], (0, vec![3, 2]));
    }
}
