//! Shared state backing a set of simulated ranks.
//!
//! One [`World`] is created per [`crate::run`] invocation. It owns a mailbox
//! per rank (tag/source-matched message queues), a generation-counted
//! barrier, and the bookkeeping used by communicator `split`.
//!
//! All deliveries route through [`World::deliver`], the single choke point
//! where the optional verification layer ([`crate::check`]) stamps vector
//! clocks and the virtual scheduler may *hold* a message back for a bounded
//! number of receiver yield points. Held messages live in the destination
//! mailbox's side queue and are released by [`Mailbox::service_held`], which
//! every receive path calls — so a deferral delays a delivery but can never
//! lose it.

use crate::check::{Backoff, CheckState, EvKind};
use faultplan::FaultPlan;
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Panic payload a rank thread unwinds with when a `RankCrash` fault fires.
///
/// `run_with_config` downcasts for this type to tell an *injected* process
/// death (survivors keep running; the world is **not** aborted) apart from a
/// genuine bug panic (world aborts, panic propagates to the joiner).
pub(crate) struct RankCrashed(pub usize);

/// A message in flight: the payload is a type-erased `Vec<T>`.
///
/// `src` is the *communicator* rank of the sender (what the receiver
/// matches on); the sender's world rank is only known at the delivery call
/// site, which is why clock stamping lives in [`World::deliver`].
pub(crate) struct Msg {
    pub src: usize,
    pub tag: u64,
    pub data: Box<dyn Any + Send>,
    /// Sender's vector-clock snapshot (checked runs only).
    pub clock: Option<Box<[u64]>>,
}

impl Msg {
    pub fn new(src: usize, tag: u64, data: Box<dyn Any + Send>) -> Self {
        Msg {
            src,
            tag,
            data,
            clock: None,
        }
    }
}

/// Per-rank mailbox with blocking matched receive.
pub(crate) struct Mailbox {
    queue: Mutex<Vec<Msg>>,
    /// Deliveries the virtual scheduler is holding back, with the number of
    /// service visits left before forced release.
    held: Mutex<Vec<(Msg, u32)>>,
    arrived: Condvar,
    /// Set when any rank panics; blocking receives then panic instead of
    /// hanging the joiner (the runtime's `MPI_Abort` analogue).
    aborted: Arc<AtomicBool>,
}

impl Mailbox {
    fn new(aborted: Arc<AtomicBool>) -> Self {
        Mailbox {
            queue: Mutex::new(Vec::new()),
            held: Mutex::new(Vec::new()),
            arrived: Condvar::new(),
            aborted,
        }
    }

    pub fn check_abort(&self) {
        if self.aborted.load(Ordering::Acquire) {
            panic!("mpisim: aborted because a peer rank panicked");
        }
    }

    /// Deposits a message and wakes any waiting receiver.
    pub fn push(&self, msg: Msg) {
        let mut q = self.queue.lock();
        q.push(msg);
        self.arrived.notify_all();
    }

    /// Parks `msg` in the held queue for `visits` service visits.
    pub fn hold(&self, msg: Msg, visits: u32) {
        self.held.lock().push((msg, visits.max(1)));
    }

    /// One scheduler tick: decrements every held delivery's countdown and
    /// releases the expired ones into the live queue. Called at every
    /// receiver yield point, so a held message is delivered after a bounded
    /// number of the receiver's own scheduling decisions — deterministic in
    /// the receiver's program order, not in wall-clock time.
    pub fn service_held(&self) {
        let mut held = self.held.lock();
        if held.is_empty() {
            return;
        }
        let mut released = false;
        let mut i = 0;
        while i < held.len() {
            held[i].1 -= 1;
            if held[i].1 == 0 {
                let (msg, _) = held.swap_remove(i);
                self.queue.lock().push(msg);
                released = true;
            } else {
                i += 1;
            }
        }
        drop(held);
        if released {
            self.arrived.notify_all();
        }
    }

    /// Releases every held delivery immediately (deadlock probe, teardown).
    pub fn force_release(&self) {
        let mut held = self.held.lock();
        if held.is_empty() {
            return;
        }
        let mut q = self.queue.lock();
        for (msg, _) in held.drain(..) {
            q.push(msg);
        }
        drop(q);
        self.arrived.notify_all();
    }

    /// `true` when a queued (not held) message matches `(src, tag)`.
    pub fn has_match(&self, src: usize, tag: u64) -> bool {
        self.queue
            .lock()
            .iter()
            .any(|m| m.src == src && m.tag == tag)
    }

    /// Removes and returns the first message matching `(src, tag)`, or
    /// `None` when none is queued. FIFO per (src, tag) pair, as MPI
    /// ordering semantics require.
    pub fn try_take(&self, src: usize, tag: u64) -> Option<Msg> {
        self.service_held();
        let mut q = self.queue.lock();
        let pos = q.iter().position(|m| m.src == src && m.tag == tag)?;
        Some(q.remove(pos))
    }

    /// One bounded blocking step of a matched receive: checks, waits up to
    /// `dur` for an arrival, re-checks — all under one queue lock, so a push
    /// between check and wait cannot be missed. Returns `None` on timeout
    /// (the caller loops, giving the scheduler and abort flag a yield
    /// point).
    pub fn take_or_wait(&self, src: usize, tag: u64, dur: Duration) -> Option<Msg> {
        self.service_held();
        let mut q = self.queue.lock();
        if let Some(pos) = q.iter().position(|m| m.src == src && m.tag == tag) {
            return Some(q.remove(pos));
        }
        self.arrived.wait_for(&mut q, dur);
        q.iter()
            .position(|m| m.src == src && m.tag == tag)
            .map(|pos| q.remove(pos))
    }

    /// [`Mailbox::take_or_wait`] matching on tag alone (wildcard source).
    pub fn take_any_or_wait(&self, tag: u64, dur: Duration) -> Option<Msg> {
        self.service_held();
        let mut q = self.queue.lock();
        if let Some(pos) = q.iter().position(|m| m.tag == tag) {
            return Some(q.remove(pos));
        }
        self.arrived.wait_for(&mut q, dur);
        q.iter().position(|m| m.tag == tag).map(|pos| q.remove(pos))
    }

    /// Waits up to `dur` for any arrival notification (used by `wait` on
    /// non-blocking collectives to avoid spinning). The caller re-checks
    /// its own completion condition and loops.
    pub fn wait_arrival(&self, dur: Duration) {
        self.service_held();
        {
            let mut q = self.queue.lock();
            self.arrived.wait_for(&mut q, dur);
        }
        self.check_abort();
    }

    /// Number of queued + held messages (diagnostics).
    pub fn len(&self) -> usize {
        self.queue.lock().len() + self.held.lock().len()
    }

    /// Removes every queued *or held* message matching `pred`; returns how
    /// many were removed. Used by `IAlltoall::cancel` to reclaim staged
    /// rounds of an abandoned collective.
    pub fn purge<F: Fn(&Msg) -> bool>(&self, pred: F) -> usize {
        let mut q = self.queue.lock();
        let before = q.len();
        q.retain(|m| !pred(m));
        let mut removed = before - q.len();
        drop(q);
        let mut held = self.held.lock();
        let before = held.len();
        held.retain(|(m, _)| !pred(m));
        removed += before - held.len();
        removed
    }

    /// `(src, clock)` of every queued message matching `tag` — the
    /// wildcard-race lint inspects these after a wildcard match.
    pub fn matching_clocks(&self, tag: u64) -> Vec<(usize, Option<Box<[u64]>>)> {
        self.queue
            .lock()
            .iter()
            .filter(|m| m.tag == tag)
            .map(|m| (m.src, m.clock.clone()))
            .collect()
    }

    /// Snapshot of `(src, tag)` pairs still queued or held (teardown lint).
    pub fn leftover_pairs(&self) -> Vec<(usize, u64)> {
        let mut out: Vec<(usize, u64)> = self.queue.lock().iter().map(|m| (m.src, m.tag)).collect();
        out.extend(self.held.lock().iter().map(|(m, _)| (m.src, m.tag)));
        out
    }
}

/// Rendezvous table used by `Comm::split`: ranks post `(color, key, rank)`
/// tuples under a split-operation sequence number and the last arrival
/// computes the grouping.
/// One rank's posted `(color, key, world_rank)` tuple.
type SplitEntry = (i64, i64, usize);
/// Per-rank split outcome: `(new_rank, member_world_ranks)`.
type SplitResult = (usize, Vec<usize>);

pub(crate) struct SplitTable {
    entries: Mutex<HashMap<u64, Vec<SplitEntry>>>,
    done: Condvar,
    results: Mutex<HashMap<u64, HashMap<usize, SplitResult>>>,
}

impl SplitTable {
    fn new() -> Self {
        SplitTable {
            entries: Mutex::new(HashMap::new()),
            done: Condvar::new(),
            results: Mutex::new(HashMap::new()),
        }
    }

    /// Posts this rank's split key and blocks until the grouping for `seq`
    /// is available; returns `(new_rank, member_world_ranks)` where members
    /// are sorted by `(key, world_rank)`. A negative `color` opts out and
    /// returns an empty membership.
    pub fn split(
        &self,
        seq: u64,
        n: usize,
        color: i64,
        key: i64,
        rank: usize,
    ) -> (usize, Vec<usize>) {
        {
            let mut e = self.entries.lock();
            let v = e.entry(seq).or_default();
            v.push((color, key, rank));
            if v.len() == n {
                // Last arrival computes every group's membership.
                let list = e.remove(&seq).expect("just inserted");
                let mut by_color: HashMap<i64, Vec<(i64, usize)>> = HashMap::new();
                for (c, k, r) in list {
                    if c >= 0 {
                        by_color.entry(c).or_default().push((k, r));
                    }
                }
                let mut res: HashMap<usize, (usize, Vec<usize>)> = HashMap::new();
                for (_c, mut members) in by_color {
                    members.sort();
                    let ranks: Vec<usize> = members.iter().map(|&(_, r)| r).collect();
                    for (new_rank, &(_, r)) in members.iter().enumerate() {
                        res.insert(r, (new_rank, ranks.clone()));
                    }
                }
                self.results.lock().insert(seq, res);
                self.done.notify_all();
            }
        }
        let mut r = self.results.lock();
        loop {
            if let Some(groups) = r.get_mut(&seq) {
                if color < 0 {
                    return (usize::MAX, Vec::new());
                }
                if let Some(out) = groups.remove(&rank) {
                    return out;
                }
            }
            self.done.wait(&mut r);
        }
    }
}

/// The process-wide state shared by all ranks of one `run` invocation.
pub(crate) struct World {
    pub size: usize,
    pub mailboxes: Vec<Mailbox>,
    pub split_table: SplitTable,
    /// Faults to inject into this run's collectives (the empty plan for
    /// worlds launched via [`crate::run`]).
    pub faults: Arc<FaultPlan>,
    /// Park-slice policy for every blocking wait in this world.
    pub backoff: Backoff,
    /// Verification instrumentation; `None` outside checked runs.
    pub check: Option<Arc<CheckState>>,
    aborted: Arc<AtomicBool>,
    /// Per-rank "this process died" flags (ULFM failure detector state).
    /// Set by the crashing rank itself before its thread unwinds, so by the
    /// time any survivor can observe missing traffic the flag is visible.
    failed: Vec<AtomicBool>,
    /// Communicator contexts poisoned by [`crate::Comm::revoke`].
    revoked: Mutex<HashSet<u64>>,
}

impl World {
    pub fn new(
        size: usize,
        faults: FaultPlan,
        backoff: Backoff,
        check: Option<Arc<CheckState>>,
    ) -> Arc<Self> {
        assert!(size >= 1, "world size must be ≥ 1");
        let aborted = Arc::new(AtomicBool::new(false));
        Arc::new(World {
            size,
            mailboxes: (0..size).map(|_| Mailbox::new(aborted.clone())).collect(),
            split_table: SplitTable::new(),
            faults: Arc::new(faults),
            backoff,
            check,
            aborted,
            failed: (0..size).map(|_| AtomicBool::new(false)).collect(),
            revoked: Mutex::new(HashSet::new()),
        })
    }

    /// Delivers `msg` from world rank `src_world` into `dst_world`'s
    /// mailbox — the single send-side choke point. Under a checked run this
    /// stamps the sender's vector clock onto the message, logs the send
    /// event, and asks the virtual scheduler whether to hold the delivery
    /// back for a bounded number of receiver yield points.
    pub fn deliver(&self, src_world: usize, dst_world: usize, mut msg: Msg) {
        let mb = &self.mailboxes[dst_world];
        if let Some(check) = &self.check {
            let clock = check.stamp_send(src_world);
            check.record_event(src_world, EvKind::Send, dst_world, msg.tag, clock.clone());
            msg.clock = Some(clock.into_boxed_slice());
            if let Some(visits) = check.sched_decision(src_world, dst_world, msg.tag) {
                check.count_deferred();
                mb.hold(msg, visits);
                return;
            }
            check.count_delivered();
        }
        mb.push(msg);
    }

    /// Receive-side bookkeeping for a matched message: joins its clock into
    /// the receiver's and logs the receive event. `src_world` is the
    /// sender's world rank when the caller knows it (falls back to the
    /// communicator-rank key on `msg.src` for the event's peer field).
    pub fn on_recv(&self, dst_world: usize, src_world: Option<usize>, msg: &Msg) {
        if let Some(check) = &self.check {
            let joined = match &msg.clock {
                Some(c) => check.join_recv(dst_world, c),
                None => check.join_recv(dst_world, &[]),
            };
            check.record_event(
                dst_world,
                EvKind::Recv,
                src_world.unwrap_or(msg.src),
                msg.tag,
                joined,
            );
        }
    }

    /// Releases every scheduler-held delivery in the world (deadlock probe
    /// and teardown).
    pub fn force_release_all(&self) {
        for mb in &self.mailboxes {
            mb.force_release();
        }
    }

    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Marks the world aborted and wakes every blocked receiver so rank
    /// threads unwind instead of deadlocking after a peer panic.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        for mb in &self.mailboxes {
            mb.arrived.notify_all();
        }
    }

    /// Records that world rank `rank` has died and wakes every blocked
    /// receiver so its peers re-check their completion conditions (and the
    /// failure detector) instead of waiting on traffic that will never come.
    pub fn mark_failed(&self, rank: usize) {
        self.failed[rank].store(true, Ordering::Release);
        if let Some(check) = &self.check {
            // A dead rank is not blocked on anyone: drop it from the
            // wait-for graph so the deadlock probe never names a cycle
            // through a process that no longer exists.
            check.clear_blocked(rank);
        }
        for mb in &self.mailboxes {
            mb.arrived.notify_all();
        }
    }

    /// `true` when world rank `rank` has died.
    pub fn is_failed(&self, rank: usize) -> bool {
        self.failed[rank].load(Ordering::Acquire)
    }

    /// World ranks currently known dead, ascending.
    pub fn failed_set(&self) -> Vec<usize> {
        (0..self.size).filter(|&r| self.is_failed(r)).collect()
    }

    /// Poisons communicator context `ctx`: subsequent (and in-flight)
    /// operations on it surface `CollError::Revoked` instead of making
    /// progress. Wakes all receivers so blocked waits observe the poison.
    pub fn revoke_ctx(&self, ctx: u64) {
        self.revoked.lock().insert(ctx);
        for mb in &self.mailboxes {
            mb.arrived.notify_all();
        }
    }

    /// `true` when `ctx` has been revoked.
    pub fn is_revoked(&self, ctx: u64) -> bool {
        self.revoked.lock().contains(&ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn msg(src: usize, tag: u64, val: i32) -> Msg {
        Msg::new(src, tag, Box::new(vec![val]))
    }

    /// Blocking matched receive for tests (the runtime's loops live in
    /// `Comm`; tests exercise the mailbox primitive directly).
    fn take(mb: &Mailbox, src: usize, tag: u64) -> Msg {
        loop {
            if let Some(m) = mb.take_or_wait(src, tag, Duration::from_millis(50)) {
                return m;
            }
            mb.check_abort();
        }
    }

    #[test]
    fn mailbox_matches_src_and_tag() {
        let mb = Mailbox::new(Arc::new(AtomicBool::new(false)));
        mb.push(msg(1, 7, 1));
        mb.push(msg(2, 7, 2));
        mb.push(msg(1, 9, 3));
        assert!(mb.try_take(3, 7).is_none());
        let m = mb.try_take(2, 7).expect("queued");
        assert_eq!(m.src, 2);
        let m = take(&mb, 1, 9);
        assert_eq!(
            *m.data.downcast::<Vec<i32>>().expect("i32 payload"),
            vec![3]
        );
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn mailbox_is_fifo_per_pair() {
        let mb = Mailbox::new(Arc::new(AtomicBool::new(false)));
        mb.push(msg(0, 1, 10));
        mb.push(msg(0, 1, 20));
        let a = take(&mb, 0, 1);
        let b = take(&mb, 0, 1);
        assert_eq!(
            *a.data.downcast::<Vec<i32>>().expect("i32 payload"),
            vec![10]
        );
        assert_eq!(
            *b.data.downcast::<Vec<i32>>().expect("i32 payload"),
            vec![20]
        );
    }

    #[test]
    fn blocking_take_wakes_on_push() {
        let mb = Arc::new(Mailbox::new(Arc::new(AtomicBool::new(false))));
        let mb2 = mb.clone();
        let h = thread::spawn(move || {
            let m = take(&mb2, 5, 42);
            *m.data.downcast::<Vec<i32>>().expect("i32 payload")
        });
        thread::sleep(Duration::from_millis(20));
        mb.push(msg(5, 42, 9));
        assert_eq!(h.join().expect("no panic"), vec![9]);
    }

    #[test]
    fn held_messages_release_after_service_visits() {
        let mb = Mailbox::new(Arc::new(AtomicBool::new(false)));
        mb.hold(msg(0, 7, 1), 3);
        assert_eq!(mb.len(), 1, "held messages count as in flight");
        assert!(mb.try_take(0, 7).is_none(), "visit 1: still held");
        assert!(mb.try_take(0, 7).is_none(), "visit 2: still held");
        // Visit 3 releases it into the queue at the top of try_take.
        assert!(mb.try_take(0, 7).is_some());
        assert_eq!(mb.len(), 0);
    }

    #[test]
    fn force_release_flushes_held_immediately() {
        let mb = Mailbox::new(Arc::new(AtomicBool::new(false)));
        mb.hold(msg(0, 7, 1), 1000);
        mb.hold(msg(1, 7, 2), 1000);
        assert!(!mb.has_match(0, 7), "held ⇒ not yet matchable");
        mb.force_release();
        assert!(mb.has_match(0, 7));
        assert!(mb.has_match(1, 7));
    }

    #[test]
    fn purge_reaches_held_messages() {
        let mb = Mailbox::new(Arc::new(AtomicBool::new(false)));
        mb.push(msg(0, 7, 1));
        mb.hold(msg(0, 7, 2), 1000);
        mb.hold(msg(0, 8, 3), 1000);
        assert_eq!(mb.purge(|m| m.tag == 7), 2);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn deliver_stamps_clock_and_take_joins_it() {
        use crate::check::CheckConfig;
        let check = Arc::new(CheckState::new(2, CheckConfig::default()));
        let world = World::new(
            2,
            FaultPlan::none(),
            Backoff::default(),
            Some(check.clone()),
        );
        world.deliver(0, 1, msg(0, 5, 1));
        let m = world.mailboxes[1].try_take(0, 5).expect("delivered");
        assert_eq!(m.clock.as_deref(), Some(&[1u64, 0][..]));
        world.on_recv(1, Some(0), &m);
        // Receiver's next send must dominate the sender's stamp.
        let next = check.stamp_send(1);
        assert_eq!(next, vec![1, 2]);
    }

    #[test]
    fn failed_flags_and_revoked_ctx_round_trip() {
        let world = World::new(4, FaultPlan::none(), Backoff::default(), None);
        assert!(world.failed_set().is_empty());
        world.mark_failed(2);
        assert!(world.is_failed(2));
        assert!(!world.is_failed(0));
        assert_eq!(world.failed_set(), vec![2]);
        assert!(!world.is_revoked(7));
        world.revoke_ctx(7);
        assert!(world.is_revoked(7));
        assert!(!world.is_revoked(8));
    }

    #[test]
    fn mark_failed_wakes_blocked_receivers() {
        let world = World::new(2, FaultPlan::none(), Backoff::default(), None);
        let w = world.clone();
        let h = thread::spawn(move || {
            // A receiver parked on an arrival that will never come must be
            // woken by the failure notification, then observe the flag.
            while !w.is_failed(1) {
                w.mailboxes[0].wait_arrival(Duration::from_secs(5));
            }
        });
        thread::sleep(Duration::from_millis(20));
        world.mark_failed(1);
        h.join().expect("receiver observed the failure");
    }

    #[test]
    fn split_groups_by_color_and_orders_by_key() {
        let t = Arc::new(SplitTable::new());
        let mut handles = Vec::new();
        // 4 ranks: colors 0,0,1,1; keys reversed within color.
        for (rank, (color, key)) in [(0i64, 1i64), (0, 0), (1, 5), (1, 2)].iter().enumerate() {
            let t = t.clone();
            let (color, key) = (*color, *key);
            handles.push(thread::spawn(move || t.split(0, 4, color, key, rank)));
        }
        let results: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect();
        // Ranks 0,1 share color 0; rank 1 has the lower key so becomes rank 0.
        assert_eq!(results[0], (1, vec![1, 0]));
        assert_eq!(results[1], (0, vec![1, 0]));
        assert_eq!(results[2], (1, vec![3, 2]));
        assert_eq!(results[3], (0, vec![3, 2]));
    }
}
