//! Per-cell evaluation: tune NEW and TH for one `(platform, p, N)` setting
//! and measure all three methods — the unit of work behind Tables 2–4 and
//! Figures 7–9.

use fft3d::{
    fft3_simulated, th_simulated, ProblemSpec, SimReport, ThParams, TuningParams, Variant,
};
use simnet::model::{hopper, umd_cluster, Platform};
use tuner::driver::{tune_new, tune_th, DEFAULT_MAX_EVALS};

/// Resolves a platform tag from [`crate::paper`] tables.
pub fn platform_by_tag(tag: &str) -> Platform {
    match tag {
        "umd" => umd_cluster(),
        "hopper" => hopper(),
        other => panic!("unknown platform tag {other:?}"),
    }
}

/// Everything measured for one experiment cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Platform tag ("umd" / "hopper").
    pub platform: &'static str,
    /// Process count.
    pub p: usize,
    /// Per-dimension extent (the cell's N of N³).
    pub n: usize,
    /// FFTW-baseline end-to-end time (s).
    pub fftw: f64,
    /// NEW end-to-end time with auto-tuned parameters (s).
    pub new: f64,
    /// TH end-to-end time with auto-tuned parameters (s).
    pub th: f64,
    /// The tuned NEW configuration (Table 3).
    pub new_params: TuningParams,
    /// The tuned TH configuration.
    pub th_params: ThParams,
    /// Modeled FFTW (planner) tuning time (s) — Table 4 column 1.
    pub fftw_tuning: f64,
    /// NEW auto-tuning time (s) — Table 4 column 2.
    pub new_tuning: f64,
    /// TH auto-tuning time (s) — Table 4 column 3.
    pub th_tuning: f64,
    /// Objective executions during NEW tuning.
    pub new_evals: usize,
    /// Objective executions during TH tuning.
    pub th_evals: usize,
    /// Full report of the tuned NEW run (breakdowns for Figure 8).
    pub new_report: SimReport,
}

impl CellResult {
    /// NEW's speedup over FFTW (Figure 7's y-axis).
    pub fn speedup_new(&self) -> f64 {
        self.fftw / self.new
    }

    /// TH's speedup over FFTW.
    pub fn speedup_th(&self) -> f64 {
        self.fftw / self.th
    }
}

/// Models the `FFTW_PATIENT` planner cost for Table 4's FFTW column: the
/// patient planner measures on the order of a hundred candidate plans, each
/// a sweep of the rank-local 1-D transforms.
///
/// The constant is a methodological substitution (documented in DESIGN.md):
/// the *claims* Table 4 supports — NEW's tuning cost is comparable to
/// FFTW's planner cost, and TH tunes fastest because its space is
/// three-dimensional — survive any constant of this magnitude.
pub fn modeled_fftw_tuning(platform: &Platform, spec: &ProblemSpec) -> f64 {
    const CANDIDATE_SWEEPS: f64 = 120.0;
    let m = &platform.machine;
    let nxl = spec.nx.div_ceil(spec.p);
    let nyl = spec.ny.div_ceil(spec.p);
    let local = m.fft_batch(spec.nz, (nxl * spec.ny) as u64)
        + m.fft_batch(spec.ny, (nxl * spec.nz) as u64)
        + m.fft_batch(spec.nx, (nyl * spec.nz) as u64);
    CANDIDATE_SWEEPS * local
}

/// Per-evaluation harness overhead added to auto-tuning time (process
/// launch, reporting to the tuning server).
const EVAL_OVERHEAD: f64 = 0.05;

/// Runs one cell: tunes NEW (10 params) and TH (3 params) against the
/// simulated objective (FFTz/Transpose excluded per §4.4), then measures
/// end-to-end times with the tuned configurations.
pub fn run_cell(platform_tag: &'static str, p: usize, n: usize) -> CellResult {
    let platform = platform_by_tag(platform_tag);
    let spec = ProblemSpec::cube(n, p);

    let fftw_report = fft3_simulated(
        platform.clone(),
        spec,
        Variant::Fftw,
        TuningParams::seed(&spec),
        false,
    );

    let tuned_new = tune_new(
        &spec,
        |params| fft3_simulated(platform.clone(), spec, Variant::New, *params, true).time,
        DEFAULT_MAX_EVALS,
    );
    let new_report = fft3_simulated(platform.clone(), spec, Variant::New, tuned_new.best, false);

    let tuned_th = tune_th(
        &spec,
        |params| th_simulated(platform.clone(), spec, *params, true).time,
        DEFAULT_MAX_EVALS,
    );
    let th_report = th_simulated(platform.clone(), spec, tuned_th.best, false);

    CellResult {
        platform: platform_tag,
        p,
        n,
        fftw: fftw_report.time,
        new: new_report.time,
        th: th_report.time,
        new_params: tuned_new.best,
        th_params: tuned_th.best,
        fftw_tuning: modeled_fftw_tuning(&platform, &spec),
        new_tuning: tuned_new.tuning_cost + EVAL_OVERHEAD * tuned_new.executed as f64,
        th_tuning: tuned_th.tuning_cost + EVAL_OVERHEAD * tuned_th.executed as f64,
        new_evals: tuned_new.executed,
        th_evals: tuned_th.executed,
        new_report,
    }
}

/// Evaluates a previously tuned configuration on a *different* platform
/// (Figure 9's CROSS bars).
pub fn cross_time(platform_tag: &str, p: usize, n: usize, params: TuningParams) -> f64 {
    let platform = platform_by_tag(platform_tag);
    let spec = ProblemSpec::cube(n, p);
    fft3_simulated(platform, spec, Variant::New, params, false).time
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_produces_consistent_speedups() {
        let cell = run_cell("umd", 16, 256);
        assert!(cell.fftw > 0.0 && cell.new > 0.0 && cell.th > 0.0);
        assert!(cell.speedup_new() > 1.0, "tuned NEW must beat FFTW on UMD");
        assert!(cell.new < cell.th, "NEW must beat TH");
        assert!(cell.new_params.is_feasible(&ProblemSpec::cube(256, 16)));
    }

    #[test]
    fn th_tunes_with_fewer_executions_than_new() {
        let cell = run_cell("umd", 16, 256);
        assert!(
            cell.th_evals < cell.new_evals,
            "3 dims must need fewer executions than 10: {} vs {}",
            cell.th_evals,
            cell.new_evals
        );
        assert!(cell.th_tuning < cell.new_tuning);
    }

    #[test]
    fn fftw_tuning_model_grows_with_problem_size() {
        let plat = platform_by_tag("umd");
        let small = modeled_fftw_tuning(&plat, &ProblemSpec::cube(256, 16));
        let large = modeled_fftw_tuning(&plat, &ProblemSpec::cube(512, 16));
        assert!(large > 4.0 * small);
    }
}
