//! The experiment suite: one function per paper table/figure, shared by the
//! individual binaries and the `repro_all` driver.

use crate::cells::{cross_time, platform_by_tag, run_cell, CellResult};
use crate::report;
use fft3d::{fft3_simulated, th_simulated, ProblemSpec, StepTimes, TuningParams, Variant};
use rayon::prelude::*;
use std::fmt::Write as _;
use tuner::driver::{tune_new, tune_th, DEFAULT_MAX_EVALS};
use tuner::random::{percentile_rank, random_search};

/// The Table 2(a) cells.
pub const UMD_CELLS: &[(usize, usize)] = &[
    (16, 256),
    (16, 384),
    (16, 512),
    (16, 640),
    (32, 256),
    (32, 384),
    (32, 512),
    (32, 640),
];
/// The Table 2(b) cells.
pub const HOPPER_CELLS: &[(usize, usize)] = UMD_CELLS;
/// The Table 2(c) cells.
pub const HOPPER_LARGE_CELLS: &[(usize, usize)] = &[
    (128, 1280),
    (128, 1536),
    (128, 1792),
    (128, 2048),
    (256, 1280),
    (256, 1536),
    (256, 1792),
    (256, 2048),
];

/// Runs all cells of one Table 2 panel in parallel.
pub fn run_panel(platform: &'static str, cells: &[(usize, usize)]) -> Vec<CellResult> {
    let mut out: Vec<CellResult> = cells
        .par_iter()
        .map(|&(p, n)| run_cell(platform, p, n))
        .collect();
    out.sort_by_key(|c| (c.p, c.n));
    out
}

/// Figure 5 + §5.3.1: the random-configuration distribution and the
/// Nelder–Mead result's rank within it.
pub struct Fig5Result {
    /// The 200 random-configuration times (tuning objective: FFTz and
    /// Transpose excluded), seconds.
    pub random_times: Vec<f64>,
    /// Best NM objective value.
    pub nm_best: f64,
    /// Executed evaluations NM needed in total.
    pub nm_evals: usize,
    /// Executions until NM first beat the distribution's 1st percentile.
    pub nm_evals_to_p1: Option<usize>,
    /// NM best value's percentile in the random distribution.
    pub nm_percentile: f64,
}

/// Runs Figure 5's experiment: 200 random configurations on the UMD model,
/// p = 16, N = 256³, objective excluding FFTz/Transpose.
pub fn run_fig5() -> Fig5Result {
    let spec = ProblemSpec::cube(256, 16);
    let platform = platform_by_tag("umd");
    let objective = |params: &TuningParams| {
        fft3_simulated(platform.clone(), spec, Variant::New, *params, true).time
    };
    let (_, _, random_times) = random_search(&spec, 200, 0xF1645, objective);

    let mut sorted = random_times.clone();
    sorted.sort_by(f64::total_cmp);
    let p1 = sorted[(sorted.len() / 100).max(1) - 1];

    let tuned = tune_new(&spec, objective, DEFAULT_MAX_EVALS);
    let nm_evals_to_p1 = tuned
        .history
        .iter()
        .position(|&(_, v)| v <= p1)
        .map(|i| i + 1);

    Fig5Result {
        nm_best: tuned.best_value,
        nm_evals: tuned.executed,
        nm_evals_to_p1,
        nm_percentile: percentile_rank(tuned.best_value, &random_times),
        random_times,
    }
}

/// One Figure 8 panel: breakdowns of NEW, NEW-0, TH, TH-0 with tuned
/// parameters.
pub struct Fig8Panel {
    /// Panel title, e.g. "UMD-Cluster (p = 32, N³ = 640³)".
    pub title: String,
    /// Tuned NEW breakdown.
    pub new: StepTimes,
    /// NEW with overlap disabled (same parameters, W = F* = 0).
    pub new0: StepTimes,
    /// Tuned TH breakdown.
    pub th: StepTimes,
    /// TH with overlap disabled.
    pub th0: StepTimes,
}

/// Runs one Figure 8 panel.
pub fn run_fig8_panel(platform_tag: &'static str, p: usize, n: usize) -> Fig8Panel {
    let platform = platform_by_tag(platform_tag);
    let spec = ProblemSpec::cube(n, p);

    let tuned_new = tune_new(
        &spec,
        |params| fft3_simulated(platform.clone(), spec, Variant::New, *params, true).time,
        DEFAULT_MAX_EVALS,
    );
    let tuned_th = tune_th(
        &spec,
        |params| th_simulated(platform.clone(), spec, *params, true).time,
        DEFAULT_MAX_EVALS,
    );

    let new = fft3_simulated(platform.clone(), spec, Variant::New, tuned_new.best, false);
    let new0 = fft3_simulated(
        platform.clone(),
        spec,
        Variant::New,
        tuned_new.best.without_overlap(),
        false,
    );
    let th = th_simulated(platform.clone(), spec, tuned_th.best, false);
    let th0 = th_simulated(
        platform.clone(),
        spec,
        tuned_th.best.without_overlap(),
        false,
    );

    Fig8Panel {
        title: format!("{platform_tag} (p = {p}, N³ = {n}³)"),
        new: new.steps,
        new0: new0.steps,
        th: th.steps,
        th0: th0.steps,
    }
}

/// Figure 9: cross-platform test. For each small-scale cell, time of the
/// natively tuned configuration vs the configuration tuned on the *other*
/// platform.
pub struct Fig9Row {
    /// Platform the run executes on.
    pub platform: &'static str,
    /// Process count.
    pub p: usize,
    /// Extent N.
    pub n: usize,
    /// FFTW time on this platform (speedup denominator).
    pub fftw: f64,
    /// NEW with natively tuned parameters.
    pub native: f64,
    /// NEW with the foreign platform's tuned parameters.
    pub cross: f64,
}

/// Runs Figure 9 given already-tuned UMD and Hopper small-scale panels.
pub fn run_fig9(umd: &[CellResult], hopper: &[CellResult]) -> Vec<Fig9Row> {
    let mut rows = Vec::new();
    for (native_cells, foreign_cells, tag) in [(umd, hopper, "umd"), (hopper, umd, "hopper")] {
        for c in native_cells {
            let foreign = foreign_cells
                .iter()
                .find(|f| f.p == c.p && f.n == c.n)
                .expect("panels cover the same cells");
            rows.push(Fig9Row {
                platform: tag,
                p: c.p,
                n: c.n,
                fftw: c.fftw,
                native: c.new,
                cross: cross_time(tag, c.p, c.n, foreign.new_params),
            });
        }
    }
    rows
}

/// Renders the Figure 9 rows.
pub fn render_fig9(rows: &[Fig9Row]) -> String {
    let mut s = String::new();
    writeln!(s, "| plat | p | N | NEW× | CROSS× | native/cross |")
        .expect("write to String cannot fail");
    writeln!(s, "|---|---|---|---|---|---|").expect("write to String cannot fail");
    for r in rows {
        writeln!(
            s,
            "| {} | {} | {}³ | {:.2} | {:.2} | {:.2} |",
            r.platform,
            r.p,
            r.n,
            r.fftw / r.native,
            r.fftw / r.cross,
            r.cross / r.native
        )
        .expect("write to String cannot fail");
    }
    s
}

/// Renders Figure 5's outputs.
pub fn render_fig5(f: &Fig5Result) -> String {
    let mut sorted = f.random_times.clone();
    sorted.sort_by(f64::total_cmp);
    let spread = sorted[sorted.len() - 1] / sorted[0];
    let mut s = String::new();
    writeln!(
        s,
        "200 random configurations (UMD model, p = 16, N = 256³, FFTz/Transpose excluded):"
    )
    .expect("write to String cannot fail");
    writeln!(
        s,
        "min {:.3}s, median {:.3}s, max {:.3}s — spread {spread:.2}× (paper: ≈3×, 0.16–0.48s)\n",
        sorted[0],
        sorted[sorted.len() / 2],
        sorted[sorted.len() - 1]
    )
    .expect("write to String cannot fail");
    s.push_str(&report::render_cdf(&f.random_times, 12));
    writeln!(
        s,
        "\nNelder–Mead: best {:.3}s at percentile {:.1} of the random distribution, {} executions",
        f.nm_best, f.nm_percentile, f.nm_evals
    )
    .expect("write to String cannot fail");
    match f.nm_evals_to_p1 {
        Some(k) => writeln!(
            s,
            "NM reached the 1st percentile after {k} executed configurations \
             (paper: 35; random search would need ≈ 100 for 63 % confidence)"
        )
        .expect("write to String cannot fail"),
        None => writeln!(s, "NM did not reach the random 1st percentile")
            .expect("write to String cannot fail"),
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_pairs_cells_correctly() {
        let umd = vec![run_cell("umd", 16, 256)];
        let hop = vec![run_cell("hopper", 16, 256)];
        let rows = run_fig9(&umd, &hop);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // Native tuning should never lose to the foreign configuration
            // by construction of the tuner (both are feasible; native was
            // selected as the best of many).
            assert!(
                r.native <= r.cross * 1.02,
                "{}: native {:.4} vs cross {:.4}",
                r.platform,
                r.native,
                r.cross
            );
        }
    }
}
