//! Inter+intra-array overlap (§7 future work): successive 3-D FFTs on
//! independent arrays share one tile pipeline, so the fill/drain bubbles
//! between transforms vanish.
//!
//! ```sh
//! cargo run -p fft-bench --release --bin multi_array [-- N p]
//! ```

use fft3d::multi::multi_simulated;
use fft3d::{ProblemSpec, TuningParams};
use simnet::model::umd_cluster;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let spec = ProblemSpec::cube(n, p);
    let params = TuningParams::seed(&spec);
    println!("multi-array pipeline on the UMD model, N = {n}³, p = {p}\n");
    println!(
        "{:>7} | {:>14} | {:>12} | {:>8}",
        "arrays", "sequential (s)", "fused (s)", "gain"
    );
    for narrays in [1usize, 2, 3, 4, 6, 8] {
        let rep = multi_simulated(umd_cluster(), spec, params, narrays);
        println!(
            "{narrays:>7} | {:>14.4} | {:>12.4} | {:>7.2}×",
            rep.sequential_time,
            rep.fused_time,
            rep.sequential_time / rep.fused_time
        );
    }
    println!(
        "\nThe fused pipeline hides each array's FFTz/Transpose behind the\n\
         previous array's all-to-all tail — combining Kandalla et al.'s\n\
         inter-array overlap with the paper's intra-array overlap."
    );
}
