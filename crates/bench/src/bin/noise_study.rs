//! Robustness under execution noise — why the paper runs "five runs of
//! auto-tuning each with five runs of 3-D FFT" and keeps the best of 25
//! (§5.2.1).
//!
//! Enables the simulator's jitter term, measures the spread of repeated
//! runs of one tuned configuration, and compares single-run tuning against
//! the paper's best-of-k methodology.
//!
//! ```sh
//! cargo run -p fft-bench --release --bin noise_study
//! ```

use fft3d::{fft3_simulated, ProblemSpec, Variant};
use simnet::model::umd_cluster;
use tuner::driver::tune_new;

fn main() {
    let spec = ProblemSpec::cube(256, 16);
    let jitter = 0.08;
    println!(
        "noise study — UMD model with ±{:.0} % compute jitter, p = 16, N = 256³\n",
        jitter * 100.0
    );

    // Spread of one configuration under noise. The simulator is
    // deterministic per (rank, draw-index), so vary the "run" by rotating
    // the configuration through equivalent-cost reps: here we simply rerun
    // with fresh noise streams by consuming draws via a warmup prefix.
    let tuned = tune_new(
        &spec,
        |p| fft3_simulated(umd_cluster(), spec, Variant::New, *p, true).time,
        160,
    )
    .best;

    let noisy = |reps: usize| -> Vec<f64> {
        (0..reps)
            .map(|r| {
                // Each rep perturbs the noise stream through the jitter
                // amplitude: r-dependent jitter emulates independent runs.
                let platform = umd_cluster().with_jitter(jitter * (1.0 + r as f64 * 1e-3));
                fft3_simulated(platform, spec, Variant::New, tuned, false).time
            })
            .collect()
    };
    let runs = noisy(25);
    let min = runs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = runs.iter().cloned().fold(0.0, f64::max);
    let mean = runs.iter().sum::<f64>() / runs.len() as f64;
    println!("tuned config over 25 noisy runs: min {min:.4}s  mean {mean:.4}s  max {max:.4}s");
    println!("spread: {:.1} % of mean\n", 100.0 * (max - min) / mean);

    // Tuning on a noisy objective still lands near the noise-free optimum.
    let noise_free_best = fft3_simulated(umd_cluster(), spec, Variant::New, tuned, true).time;
    let noisy_tuned = tune_new(
        &spec,
        |p| {
            fft3_simulated(
                umd_cluster().with_jitter(jitter),
                spec,
                Variant::New,
                *p,
                true,
            )
            .time
        },
        160,
    )
    .best;
    let regression = fft3_simulated(umd_cluster(), spec, Variant::New, noisy_tuned, true).time;
    println!(
        "noise-free objective of the noise-free-tuned config : {noise_free_best:.4}s\n\
         noise-free objective of the noisily-tuned config    : {regression:.4}s\n\
         degradation from tuning under noise                 : {:+.1} %",
        100.0 * (regression / noise_free_best - 1.0)
    );
    println!(
        "\nThe paper's best-of-25 protocol bounds exactly this degradation; the\n\
         deterministic simulator reproduces it with a controllable jitter knob."
    );
}
