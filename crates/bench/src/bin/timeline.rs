//! Executable Figure 3: renders rank 0's pipeline phases over virtual time
//! as an ASCII Gantt chart, showing computation on tile *i* overlapping the
//! in-flight all-to-alls of the window.
//!
//! ```sh
//! cargo run -p fft-bench --release --bin timeline [-- N p T W]
//! ```

use fft3d::sim_env::fft3_simulated_traced;
use fft3d::{ProblemSpec, TuningParams, Variant};
use simnet::model::umd_cluster;

const WIDTH: usize = 100;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let t: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(n / 4);
    let w: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    let spec = ProblemSpec::cube(n, p);
    let params = TuningParams { t, w, ..TuningParams::seed(&spec) };
    println!("pipeline timeline — UMD model, N={n}³ p={p} T={t} (k={} tiles) W={w}\n", params.tiles(&spec));

    let (report, events) = fft3_simulated_traced(umd_cluster(), spec, Variant::New, params);
    let rank0 = &events[0];
    let total = report.per_rank[0].elapsed;

    // One row per (label, tile): compute rows in program order; Wait rows
    // show where communication really drains.
    println!("{:<16} {}", "phase", "time →");
    for ev in rank0 {
        let s = ((ev.start / total) * WIDTH as f64) as usize;
        let e = (((ev.end / total) * WIDTH as f64).ceil() as usize).min(WIDTH).max(s + 1);
        let mut row = vec![b' '; WIDTH];
        let ch = match ev.label {
            "FFTz" => b'z',
            "Transpose" => b'T',
            "FFTy" => b'y',
            "Pack" => b'P',
            "Unpack" => b'U',
            "FFTx" => b'x',
            "Ialltoall" => b'A',
            "Wait" => b'W',
            _ => b'?',
        };
        for c in row.iter_mut().take(e).skip(s) {
            *c = ch;
        }
        let label = match ev.tile {
            Some(t) => format!("{} t{}", ev.label, t),
            None => ev.label.to_string(),
        };
        println!("{:<16} |{}|", label, String::from_utf8(row).unwrap());
    }
    println!(
        "\ntotal {:.4}s — Wait is only {:.1} % of it (the overlap at work; \
         compare W=1 or F*=0)",
        total,
        100.0 * report.steps.wait / total
    );
}
