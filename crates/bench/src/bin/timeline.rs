//! Executable Figure 3: renders rank 0's pipeline phases over virtual time
//! as an ASCII Gantt chart, showing computation on tile *i* overlapping the
//! in-flight all-to-alls of the window, plus the overlap-efficiency summary
//! derived from the trace.
//!
//! ```sh
//! cargo run -p fft-bench --release --bin timeline [-- N p T W [--json PATH]]
//! ```
//!
//! With `--json PATH` the full per-rank event streams (and per-rank overlap
//! summaries) are written as one JSON document for external plotting.

use fft3d::sim_env::fft3_simulated_traced;
use fft3d::trace::{derive_step_times, overlap_summary, trace_to_json, EventKind, TraceEvent};
use fft3d::{ProblemSpec, TuningParams, Variant};
use fft_bench::report::render_overlap;
use simnet::model::umd_cluster;

const WIDTH: usize = 100;

fn gantt_char(kind: &EventKind) -> u8 {
    match kind {
        EventKind::Fftz => b'z',
        EventKind::Transpose => b'T',
        EventKind::Ffty { .. } => b'y',
        EventKind::Pack { .. } => b'P',
        EventKind::Unpack { .. } => b'U',
        EventKind::Fftx { .. } => b'x',
        EventKind::PostA2a { .. } => b'A',
        EventKind::Wait { .. } => b'W',
        EventKind::Test { .. } => b't',
        EventKind::Degrade { .. } => b'D',
        EventKind::RankLost { .. } => b'!',
        EventKind::Shrink { .. } => b'S',
        EventKind::Corrupt { .. } => b'X',
    }
}

fn render_gantt(events: &[TraceEvent], total: f64) {
    println!("{:<16} time →", "phase");
    for ev in events {
        // Individual polls are far too fine for a 100-column chart; they
        // are aggregated in the summary below instead.
        if matches!(ev.kind, EventKind::Test { .. }) {
            continue;
        }
        let s = ((ev.start / total) * WIDTH as f64) as usize;
        let e = (((ev.end / total) * WIDTH as f64).ceil() as usize)
            .min(WIDTH)
            .max(s + 1);
        let mut row = vec![b' '; WIDTH];
        let ch = gantt_char(&ev.kind);
        for c in row.iter_mut().take(e).skip(s) {
            *c = ch;
        }
        let label = match ev.kind.tile() {
            Some(t) => format!("{} t{}", ev.kind.label(), t),
            None => ev.kind.label().to_string(),
        };
        println!(
            "{:<16} |{}|",
            label,
            String::from_utf8(row).expect("glyph rows are ASCII")
        );
    }
}

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = args.next();
            if json_path.is_none() {
                eprintln!("--json requires a path");
                std::process::exit(2);
            }
        } else {
            positional.push(a);
        }
    }
    let mut positional = positional.into_iter();
    let n: usize = positional
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let p: usize = positional.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let t: usize = positional
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(n / 4);
    let w: usize = positional.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    let spec = ProblemSpec::cube(n, p);
    let params = TuningParams {
        t,
        w,
        ..TuningParams::seed(&spec)
    };
    println!(
        "pipeline timeline — UMD model, N={n}³ p={p} T={t} (k={} tiles) W={w}\n",
        params.tiles(&spec)
    );

    let (report, events) = fft3_simulated_traced(umd_cluster(), spec, Variant::New, params);
    let rank0 = &events[0];
    let total = report.per_rank[0].elapsed;

    render_gantt(rank0, total);

    println!(
        "\ntotal {:.4}s — Wait is only {:.1} % of it (the overlap at work; \
         compare W=1 or F*=0)",
        total,
        100.0 * report.steps.wait / total
    );

    // Overlap efficiency, derived from the same trace.
    let summary = overlap_summary(rank0);
    println!("\noverlap efficiency (rank 0):");
    print!("{}", render_overlap(0, &summary));

    // Cross-check: the event stream must reproduce the Figure 8 breakdown.
    let derived = derive_step_times(rank0);
    let direct = report.steps;
    println!(
        "\nbreakdown cross-check: trace-derived total {:.4}s vs direct {:.4}s",
        derived.total(),
        direct.total()
    );

    if let Some(path) = json_path {
        let json = trace_to_json(&events);
        match std::fs::write(&path, json) {
            Ok(()) => println!("wrote {} ranks of trace JSON to {path}", events.len()),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
