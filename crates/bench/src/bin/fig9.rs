//! Figure 9: cross-platform test — a configuration tuned on one platform
//! run on the other is 10–20 % slower than the natively tuned one.

use fft_bench::experiments::{render_fig9, run_fig9, run_panel, HOPPER_CELLS, UMD_CELLS};

fn main() {
    let umd = run_panel("umd", UMD_CELLS);
    let hopper = run_panel("hopper", HOPPER_CELLS);
    let rows = run_fig9(&umd, &hopper);
    println!("{}", render_fig9(&rows));
}
