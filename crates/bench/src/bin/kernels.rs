//! Intra-rank kernel microbenchmarks: plan-cache hit vs replan, serial vs
//! parallel batched FFT, blocked transpose, and Pack-style gather at the
//! paper's 512³-class per-rank tile geometry. Emits one JSON object so CI
//! and the tuning notes can consume the numbers directly.
//!
//! Usage: `cargo run -p fft-bench --release --bin kernels -- [--smoke] [--threads N]`
//!
//! `--smoke` shrinks the geometry and runs one repetition — a seconds-long
//! CI liveness check, not a measurement. `--threads N` pins the parallel
//! variants' worker count (default: available parallelism, capped at 8).

use cfft::batch::{execute_batch, execute_batch_threaded, BatchLayout, BatchScratch};
use cfft::planner::Rigor;
use cfft::transpose::{permute3, permute3_threaded, Dims3, XYZ_TO_ZXY};
use cfft::{batch::for_each_part_threaded, Complex64, Direction, PlanCache};
use std::fmt::Write as _;
use std::time::Instant;

struct Config {
    /// Repetitions per measurement; the minimum is reported.
    reps: usize,
    /// Worker count for the parallel variants.
    threads: usize,
    /// 1-D transform size (the paper's N).
    n: usize,
    /// This rank's x extent (N / p at p = 64).
    nxl: usize,
}

fn parse_args() -> Config {
    let mut smoke = false;
    let mut threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .min(8);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--threads" => {
                let v = args.next().expect("--threads needs a value");
                threads = v.parse().expect("--threads needs an integer");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    if smoke {
        Config {
            reps: 1,
            threads: threads.min(2),
            n: 64,
            nxl: 4,
        }
    } else {
        Config {
            reps: 5,
            threads,
            n: 512,
            nxl: 8,
        }
    }
}

/// Minimum wall time of `reps` runs of `f`, in nanoseconds.
fn time_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos());
    }
    best
}

/// Deterministic non-trivial test signal.
fn signal(len: usize) -> Vec<Complex64> {
    (0..len)
        .map(|i| {
            let x = i as f64;
            Complex64::new((x * 0.7).sin() + 0.1, (x * 0.3).cos() - 0.2)
        })
        .collect()
}

fn bits(data: &[Complex64]) -> Vec<(u64, u64)> {
    data.iter()
        .map(|c| (c.re.to_bits(), c.im.to_bits()))
        .collect()
}

fn json_group(out: &mut String, name: &str, serial_ns: u128, parallel_ns: u128, identical: bool) {
    let speedup = serial_ns as f64 / parallel_ns.max(1) as f64;
    writeln!(
        out,
        "  \"{name}\": {{ \"serial_ns\": {serial_ns}, \"parallel_ns\": {parallel_ns}, \
         \"speedup\": {speedup:.3}, \"bit_identical\": {identical} }},"
    )
    .expect("write to String cannot fail");
}

fn main() {
    let cfg = parse_args();
    let n = cfg.n;
    let dir = Direction::Forward;
    let mut out = String::from("{\n");
    writeln!(
        out,
        "  \"config\": {{ \"n\": {}, \"nxl\": {}, \"threads\": {}, \"reps\": {} }},",
        n, cfg.nxl, cfg.threads, cfg.reps
    )
    .expect("write to String cannot fail");

    // --- Plan cache: replan-every-call (the old bug) vs cached hit. Each
    // miss rep uses a fresh local cache so it pays full Measure planning;
    // the hit reps share one warm cache.
    let miss_ns = time_ns(cfg.reps, || {
        let cache = PlanCache::new();
        let (_plan, spent) = cache.plan_timed(n, dir, Rigor::Measure);
        assert!(spent > std::time::Duration::ZERO, "fresh cache must plan");
    });
    let warm = PlanCache::new();
    warm.plan(n, dir, Rigor::Measure);
    let hit_ns = time_ns(cfg.reps.max(3), || {
        let (_plan, spent) = warm.plan_timed(n, dir, Rigor::Measure);
        assert_eq!(spent, std::time::Duration::ZERO, "warm cache must hit");
    });
    writeln!(
        out,
        "  \"plan_cache\": {{ \"miss_ns\": {miss_ns}, \"hit_ns\": {hit_ns}, \
         \"speedup\": {:.1} }},",
        miss_ns as f64 / hit_ns.max(1) as f64
    )
    .expect("write to String cannot fail");

    // --- Batched FFT over one rank's z lines: nxl·ny contiguous lines of
    // length n (the FFTz step's exact shape at N = 512, p = 64).
    let howmany = cfg.nxl * n;
    let layout = BatchLayout::contiguous(n, howmany);
    let src = signal(n * howmany);
    let plan = warm.plan(n, dir, Rigor::Estimate);
    let mut serial_data = src.clone();
    let serial_ns = time_ns(cfg.reps, || {
        serial_data.copy_from_slice(&src);
        let mut scratch = BatchScratch::for_plan(&plan);
        execute_batch(&plan, &mut serial_data, layout, &mut scratch);
    });
    let mut parallel_data = src.clone();
    let parallel_ns = time_ns(cfg.reps, || {
        parallel_data.copy_from_slice(&src);
        execute_batch_threaded(&plan, &mut parallel_data, layout, cfg.threads);
    });
    json_group(
        &mut out,
        "batch_fft",
        serial_ns,
        parallel_ns,
        bits(&serial_data) == bits(&parallel_data),
    );

    // --- Blocked transpose of the whole slab, x-y-z → z-x-y (the step
    // between FFTz and FFTy).
    let dims = Dims3::new(cfg.nxl, n, n);
    let tsrc = signal(cfg.nxl * n * n);
    let mut tdst_s = vec![Complex64::ZERO; tsrc.len()];
    let transpose_serial_ns = time_ns(cfg.reps, || {
        permute3(&tsrc, &mut tdst_s, dims, XYZ_TO_ZXY);
    });
    let mut tdst_p = vec![Complex64::ZERO; tsrc.len()];
    let transpose_parallel_ns = time_ns(cfg.reps, || {
        permute3_threaded(&tsrc, &mut tdst_p, dims, XYZ_TO_ZXY, cfg.threads);
    });
    json_group(
        &mut out,
        "transpose",
        transpose_serial_ns,
        transpose_parallel_ns,
        bits(&tdst_s) == bits(&tdst_p),
    );

    // --- Pack-style gather: split each z-x row of ny elements into p
    // destination sub-rows of nyl (the Pack step's memory access pattern,
    // p = 64 ranks).
    let p = 64.min(n);
    let nyl = n / p;
    let rows = n * cfg.nxl; // (z, xl) pairs over the whole slab
    let psrc = signal(rows * n);
    let bounds: Vec<usize> = (0..=p).map(|s| s * rows * nyl).collect();
    let total = rows * nyl * p;
    let mut pack_s = vec![Complex64::ZERO; total];
    let pack_serial_ns = time_ns(cfg.reps, || {
        for s in 0..p {
            let part = &mut pack_s[bounds[s]..bounds[s + 1]];
            for r in 0..rows {
                part[r * nyl..][..nyl].copy_from_slice(&psrc[r * n + s * nyl..][..nyl]);
            }
        }
    });
    let mut pack_p = vec![Complex64::ZERO; total];
    let pack_parallel_ns = time_ns(cfg.reps, || {
        for_each_part_threaded(&mut pack_p, &bounds, cfg.threads, |s, part| {
            for r in 0..rows {
                part[r * nyl..][..nyl].copy_from_slice(&psrc[r * n + s * nyl..][..nyl]);
            }
        });
    });
    json_group(
        &mut out,
        "pack",
        pack_serial_ns,
        pack_parallel_ns,
        bits(&pack_s) == bits(&pack_p),
    );

    // --- Persistent all-to-all session, real backend: first execution
    // (lazy per-tile plan init) vs steady state (start/wait on registered
    // schedules, zero setups). Reported per world: the slowest rank's first
    // execution against the slowest rank's best steady-state execution.
    {
        use fft3d::real_env::local_test_slab;
        use fft3d::{FftSession, ProblemSpec, TuningParams, Variant};

        let spec = ProblemSpec::cube(4 * cfg.nxl, 4);
        let params = TuningParams::seed(&spec);
        let steady_reps = cfg.reps.max(3);
        let per_rank = mpisim::run(spec.p, move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            let mut session =
                FftSession::new(&comm, spec, Variant::New, params, dir, Rigor::Estimate);
            let mut times = Vec::new();
            let mut setups = Vec::new();
            for _ in 0..=steady_reps {
                let t0 = Instant::now();
                let run = session.execute(&input).expect("clean bench run");
                times.push(t0.elapsed().as_nanos());
                setups.push(run.exchange_setups);
            }
            session.free();
            (times, setups)
        });
        let first_ns = per_rank.iter().map(|(t, _)| t[0]).max().unwrap_or(0);
        let steady_ns = per_rank
            .iter()
            .map(|(t, _)| t[1..].iter().copied().min().unwrap_or(u128::MAX))
            .max()
            .unwrap_or(0);
        let first_setups: u64 = per_rank.iter().map(|(_, s)| s[0]).sum();
        let steady_setups: u64 = per_rank.iter().flat_map(|(_, s)| &s[1..]).sum();
        writeln!(
            out,
            "  \"persistent_session\": {{ \"grid\": {}, \"ranks\": {}, \
             \"first_ns\": {first_ns}, \"steady_ns\": {steady_ns}, \
             \"speedup\": {:.3}, \"first_setups\": {first_setups}, \
             \"steady_setups\": {steady_setups} }},",
            spec.nx,
            spec.p,
            first_ns as f64 / steady_ns.max(1) as f64
        )
        .expect("write to String cannot fail");
        assert_eq!(steady_setups, 0, "steady state must do zero setups");
    }

    // --- Persistent session, simulated backend: the same setup-once story
    // in deterministic modeled time on the calibrated UMD-Cluster network.
    {
        use fft3d::{fft3_simulated_repeated, ProblemSpec, TuningParams, Variant};
        use simnet::model::umd_cluster;

        let spec = ProblemSpec::cube(if cfg.n <= 64 { 64 } else { 256 }, 16);
        let params = TuningParams::seed(&spec);
        let reps = fft3_simulated_repeated(umd_cluster(), spec, Variant::New, params, false, 4);
        let first = &reps[0];
        let steady = reps[1..]
            .iter()
            .min_by(|a, b| a.time.total_cmp(&b.time))
            .expect("4 repetitions give a steady state");
        writeln!(
            out,
            "  \"persistent_sim\": {{ \"grid\": {}, \"ranks\": {}, \
             \"first_time_s\": {:.6}, \"steady_time_s\": {:.6}, \
             \"first_setup_charges\": {}, \"steady_setup_charges\": {} }},",
            spec.nx, spec.p, first.time, steady.time, first.setup_charges, steady.setup_charges
        )
        .expect("write to String cannot fail");
        assert_eq!(
            steady.setup_charges, 0,
            "simulated steady state is free of setup"
        );
    }

    let stats = warm.stats();
    writeln!(
        out,
        "  \"cache_stats\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"entries\": {} }}\n}}",
        stats.hits, stats.misses, stats.evictions, stats.entries
    )
    .expect("write to String cannot fail");
    print!("{out}");
}
