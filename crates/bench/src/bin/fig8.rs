//! Figure 8: per-step performance breakdown of NEW, NEW-0, TH, TH-0 for
//! the paper's three settings.

use fft_bench::experiments::run_fig8_panel;
use fft_bench::report::render_fig8_panel;

fn main() {
    for (plat, p, n) in [("umd", 32, 640), ("hopper", 32, 640), ("hopper", 256, 2048)] {
        let panel = run_fig8_panel(plat, p, n);
        println!(
            "{}",
            render_fig8_panel(&panel.title, &panel.new, &panel.new0, &panel.th, &panel.th0)
        );
    }
}
