//! Ablation study: how much each of NEW's design choices (§3) contributes,
//! measured by removing them one at a time from the tuned configuration on
//! the Figure 8 setting (UMD model, p = 32, N = 640³).
//!
//! ```sh
//! cargo run -p fft-bench --release --bin ablation [-- p N]
//! ```

use fft3d::sim_env::fft3_simulated_with;
use fft3d::{fft3_simulated, th_simulated, ProblemSpec, ThParams, TuningParams, Variant};
use simnet::model::{umd_cluster, TransposeCost};
use tuner::driver::{tune_new, DEFAULT_MAX_EVALS};

fn main() {
    let mut args = std::env::args().skip(1);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(640);
    let spec = ProblemSpec::cube(n, p);
    let platform = umd_cluster();
    println!("ablation on the UMD model, p = {p}, N = {n}³\n");

    let tuned = tune_new(
        &spec,
        |params| fft3_simulated(platform.clone(), spec, Variant::New, *params, true).time,
        DEFAULT_MAX_EVALS,
    )
    .best;

    let full = fft3_simulated(platform.clone(), spec, Variant::New, tuned, false).time;

    // (1) Remove overlap entirely (W = F* = 0): the paper's NEW-0.
    let no_overlap = fft3_simulated(
        platform.clone(),
        spec,
        Variant::New,
        tuned.without_overlap(),
        false,
    )
    .time;

    // (2) Keep the window but never poll: rounds progress only inside Wait
    //     (the §3.3 manual-progression motivation).
    let no_polls = fft3_simulated(
        platform.clone(),
        spec,
        Variant::New,
        TuningParams {
            fy: 0,
            fp: 0,
            fu: 0,
            fx: 0,
            ..tuned
        },
        false,
    )
    .time;

    // (3) Remove Pack/Unpack loop tiling: whole-tile "sub-tiles" (§3.4).
    let nxl = n / p;
    let nyl = n / p;
    let no_tiling = fft3_simulated(
        platform.clone(),
        spec,
        Variant::New,
        TuningParams {
            px: nxl.max(1),
            pz: tuned.t,
            uy: nyl.max(1),
            uz: tuned.t,
            ..tuned
        },
        false,
    )
    .time;

    // (4) Deny the Nx = Ny fast transpose (§3.5): force the generic tier.
    let no_fast_transpose = fft3_simulated_with(
        platform.clone(),
        spec,
        Variant::New,
        tuned,
        false,
        Some(TransposeCost::Generic),
    )
    .time;

    // (5) Shrink the window to 1 (§3.2's communication parallelism).
    let w1 = fft3_simulated(
        platform.clone(),
        spec,
        Variant::New,
        TuningParams { w: 1, ..tuned },
        false,
    )
    .time;

    // References.
    let fftw = fft3_simulated(platform.clone(), spec, Variant::Fftw, tuned, false).time;
    let th = th_simulated(platform.clone(), spec, ThParams::seed(&spec), false).time;

    println!("tuned NEW                         : {full:.3}s  (baseline)");
    let row = |label: &str, v: f64| {
        println!("{label:<34}: {v:.3}s  (+{:.1} %)", (v / full - 1.0) * 100.0);
    };
    row("− overlap (NEW-0)", no_overlap);
    row("− MPI_Test polls (keep window)", no_polls);
    row("− Pack/Unpack loop tiling", no_tiling);
    row("− Nx=Ny fast transpose", no_fast_transpose);
    row("window W = 1", w1);
    println!("FFTW baseline                     : {fftw:.3}s");
    println!("TH (seed)                         : {th:.3}s");

    assert!(no_overlap > full, "overlap must matter");
    assert!(no_polls > full, "manual progression must matter");
}
