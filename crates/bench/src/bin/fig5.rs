//! Figure 5: cumulative distribution of the 3-D FFT execution time over
//! 200 random parameter configurations (UMD model, 16 ranks, 256³), plus
//! the §5.3.1 Nelder–Mead-vs-random comparison.

fn main() {
    let result = fft_bench::experiments::run_fig5();
    print!("{}", fft_bench::experiments::render_fig5(&result));
}
