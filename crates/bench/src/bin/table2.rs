//! Tables 2, 3, 4 and Figure 7: tuned FFTW/NEW/TH times, speedups, tuned
//! parameter values, and tuning times.
//!
//! Usage: `cargo run -p fft-bench --release --bin table2 -- [umd|hopper|hopper-large|all]`

use fft_bench::experiments::{run_panel, HOPPER_CELLS, HOPPER_LARGE_CELLS, UMD_CELLS};
use fft_bench::report::{render_table2, render_table3, render_table4};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let mut panels = Vec::new();
    if which == "umd" || which == "all" {
        panels.push(("Table 2(a) — UMD-Cluster", run_panel("umd", UMD_CELLS)));
    }
    if which == "hopper" || which == "all" {
        panels.push(("Table 2(b) — Hopper", run_panel("hopper", HOPPER_CELLS)));
    }
    if which == "hopper-large" || which == "all" {
        panels.push((
            "Table 2(c) — Hopper (large scale)",
            run_panel("hopper", HOPPER_LARGE_CELLS),
        ));
    }
    for (title, cells) in &panels {
        println!("\n## {title} (+ Figure 7 speedups)\n");
        println!("{}", render_table2(cells));
        println!("### Table 3 — tuned parameters\n");
        println!("{}", render_table3(cells));
        println!("### Table 4 — auto-tuning time\n");
        println!("{}", render_table4(cells));
    }
}
