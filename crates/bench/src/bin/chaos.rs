//! Chaos sweep: how the overlapped pipeline degrades under injected faults.
//!
//! Part 1 sweeps straggler severity × window `W` on the simulated backend
//! (UMD model): each cell reports the modeled completion time under a
//! seeded [`FaultPlan`] straggler, normalised to the fault-free run of the
//! same `W` — showing how much cushion a deeper window buys against a slow
//! rank.
//!
//! Part 2 runs real (small-scale) executions over `mpisim` with injected
//! send delays and transient drops, a watchdog armed, and reports what the
//! degradation ladder did on each rank: stalls detected, rungs climbed
//! (boost-polls / shrink-window / fallback), and whether the run abandoned
//! overlap entirely.
//!
//! Part 3 is the rank-kill axis: a victim rank dies at the first, middle,
//! and last tile boundary, and the survivors recover elastically
//! (revoke/shrink/agree, re-decompose over `p − 1`, re-fetch the lost slab
//! from a replica — DESIGN.md §14); each row reports attempts consumed,
//! the agreed dead set, the shrink, and the recovered spectrum's error
//! against the serial oracle.
//!
//! ```sh
//! cargo run -p fft-bench --release --bin chaos [-- seed]
//! ```

use cfft::planner::Rigor;
use cfft::Direction;
use fft3d::real_env::local_test_slab;
use fft3d::{
    fft3_simulated, try_fft3_dist_traced, NoopRecorder, ProblemSpec, Resilience, TuningParams,
    Variant,
};
use mpisim::FaultPlan;
use simnet::model::umd_cluster;
use std::time::Duration;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    simulated_sweep();
    real_ladder_demo(seed);
    rank_kill_demo(seed);
}

/// Straggler severity × window sweep on the calibrated cost model.
fn simulated_sweep() {
    let spec = ProblemSpec::cube(256, 16);
    let base = TuningParams::seed(&spec);
    let severities = [0.0, 0.5, 1.0, 2.0, 4.0];
    let windows = [1, 2, 4, 8];

    println!("simulated straggler sweep — UMD model, p = 16, N = 256³");
    println!("cells: completion time (s), ×slowdown vs fault-free same-W\n");
    print!("{:>10}", "severity");
    for w in windows {
        print!("{:>18}", format!("W = {w}"));
    }
    println!();

    for s in severities {
        print!("{s:>10.1}");
        for w in windows {
            let params = TuningParams { w, ..base };
            let clean = fft3_simulated(umd_cluster(), spec, Variant::New, params, false).time;
            let platform = if s > 0.0 {
                umd_cluster().with_straggler(3, s)
            } else {
                umd_cluster()
            };
            let faulted = fft3_simulated(platform, spec, Variant::New, params, false).time;
            print!("{:>18}", format!("{faulted:.3}s {:.2}×", faulted / clean));
        }
        println!();
    }
    println!();
}

/// Real runs over mpisim: show the ladder working.
fn real_ladder_demo(seed: u64) {
    let spec = ProblemSpec::cube(12, 4);
    let params = TuningParams::seed(&spec);
    println!("real-backend ladder demo — p = 4, N = 12³, seed {seed}");
    println!("(watchdog 15 ms, poll boost 4×, 8 strikes per wait)\n");

    let scenarios: Vec<(&str, FaultPlan)> = vec![
        ("healthy", FaultPlan::seeded(seed)),
        (
            "straggler (rank 1, 60 ms send delay)",
            FaultPlan::seeded(seed).with_straggler(1, 30.0),
        ),
        (
            "transient drops (p = 0.25, ≤ 8 retransmits)",
            FaultPlan::seeded(seed).with_drops(0.25, 8),
        ),
        (
            "straggler + drops",
            FaultPlan::seeded(seed)
                .with_straggler(1, 30.0)
                .with_drops(0.15, 8),
        ),
    ];
    let res = Resilience {
        stall_timeout: Some(Duration::from_millis(15)),
        poll_boost: 4,
        max_strikes: 8,
    };

    for (label, plan) in scenarios {
        let results = mpisim::run_with_faults(spec.p, plan, move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            let started = std::time::Instant::now();
            let out = try_fft3_dist_traced(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &input,
                &res,
                &mut NoopRecorder,
            );
            (started.elapsed(), out.map(|o| o.recovery))
        });

        println!("{label}:");
        for (rank, (elapsed, outcome)) in results.iter().enumerate() {
            match outcome {
                Ok(rec) => {
                    let actions: Vec<&str> = rec.actions.iter().map(|a| a.label()).collect();
                    println!(
                        "  rank {rank}: {:>7.1} ms  stalls {}  ladder [{}]{}",
                        elapsed.as_secs_f64() * 1e3,
                        rec.stalls_detected,
                        actions.join(", "),
                        if rec.fell_back { "  FELL BACK" } else { "" },
                    );
                }
                Err(e) => println!("  rank {rank}: FAILED — {e}"),
            }
        }
        println!();
    }
}

/// Rank-kill axis: a death at each tile position, survivors recovering
/// elastically through the ULFM-style driver.
fn rank_kill_demo(seed: u64) {
    use fft3d::real_env::compare_with_serial;
    use fft3d::serial::{fft3_serial, full_test_array};
    use fft3d::{run_recoverable, RecoverConfig, ReplicaSource};
    use std::sync::Arc;

    let spec = ProblemSpec::cube(12, 4);
    let params = TuningParams::seed(&spec);
    let tiles = params.tiles(&spec);
    println!("rank-kill recovery demo — p = 4, N = 12³, victim rank 1, seed {seed}");
    println!("(replica slab source; the crash position sweeps the tile axis)\n");

    let input = Arc::new(full_test_array(spec.nx, spec.ny, spec.nz));
    let mut reference = (*input).clone();
    fft3_serial(
        &mut reference,
        spec.nx,
        spec.ny,
        spec.nz,
        Direction::Forward,
    );
    let reference = Arc::new(reference);

    let positions = [
        ("first", 0usize),
        ("middle", tiles / 2),
        ("last", tiles.saturating_sub(1)),
    ];
    for (label, at_tile) in positions {
        let plan = FaultPlan::seeded(seed).with_rank_crash(1, at_tile);
        let source = ReplicaSource::new(Arc::clone(&input));
        let reference = Arc::clone(&reference);
        let results = mpisim::run_crashable(spec.p, plan, move |comm| {
            let started = std::time::Instant::now();
            let out = run_recoverable(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &source,
                &RecoverConfig::default(),
                &mut NoopRecorder,
            );
            let summary = out.map(|o| {
                let err = compare_with_serial(&o.spec, o.rank, &o.output, &reference);
                (o.attempts, o.lost, o.spec.p, err)
            });
            (started.elapsed(), summary)
        });

        println!("crash at {label} tile boundary (tile {at_tile}/{tiles}):");
        for (rank, slot) in results.iter().enumerate() {
            match slot {
                None => println!("  rank {rank}:    DEAD (injected)"),
                Some((elapsed, Ok((attempts, lost, p2, err)))) => println!(
                    "  rank {rank}: {:>7.1} ms  attempts {attempts}  agreed dead {lost:?}  \
                     p {}→{p2}  err vs serial {err:.2e}",
                    elapsed.as_secs_f64() * 1e3,
                    spec.p,
                ),
                Some((_, Err(e))) => println!("  rank {rank}: FAILED — {e}"),
            }
        }
        println!();
    }
}
