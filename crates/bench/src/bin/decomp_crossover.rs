//! Slab (1-D) vs pencil (2-D) decomposition — the §2.2 trade-off and the
//! scalability argument for the paper's §7 pencil future work.
//!
//! Sweeps the process count for a fixed problem and reports where the
//! tuned 1-D overlapped slab transform loses to a blocking 2-D pencil
//! transform: slabs stop scaling at p = N (one plane per rank) and their
//! single alltoall congests, while pencils exchange within √p-sized groups.
//!
//! ```sh
//! cargo run -p fft-bench --release --bin decomp_crossover [-- N]
//! ```

use fft3d::pencil::{pencil_overlap_simulated, pencil_simulated, PencilGrid};
use fft3d::{auto_select, fft3_simulated, Decomposition, ProblemSpec, TuningParams, Variant};
use simnet::model::hopper;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    println!("slab vs pencil on the Hopper model, N = {n}³\n");
    println!(
        "{:>6} | {:>12} | {:>12} | {:>14} | {:>10}",
        "p", "slab NEW (s)", "pencil (s)", "pencil+ovl (s)", "winner"
    );

    let mut crossover: Option<usize> = None;
    for exp in 3..=11 {
        let p = 1usize << exp;
        if p > n {
            // 1-D decomposition cannot use more ranks than planes.
            let grid = PencilGrid::near_square(p);
            let spec = ProblemSpec::cube(n, p);
            let pencil = pencil_simulated(hopper(), spec, grid);
            let ovl = pencil_overlap_simulated(hopper(), spec, grid, 2, 32);
            println!(
                "{p:>6} | {:>12} | {pencil:>12.4} | {ovl:>14.4} | {:>10}",
                "n/a", "pencil"
            );
            continue;
        }
        let spec = ProblemSpec::cube(n, p);
        let slab = fft3_simulated(
            hopper(),
            spec,
            Variant::New,
            TuningParams::seed(&spec),
            false,
        )
        .time;
        let grid = PencilGrid::near_square(p);
        let pencil = pencil_simulated(hopper(), spec, grid);
        let ovl = pencil_overlap_simulated(hopper(), spec, grid, 2, 32);
        let best_pencil = pencil.min(ovl);
        let winner = if slab <= best_pencil {
            "slab"
        } else {
            "pencil"
        };
        if slab > best_pencil && crossover.is_none() {
            crossover = Some(p);
        }
        println!("{p:>6} | {slab:>12.4} | {pencil:>12.4} | {ovl:>14.4} | {winner:>10}");
    }
    match crossover {
        Some(p) => println!(
            "\npencils overtake slabs around p = {p} — the §2.2 scalability\n\
             trade-off: below that, the slab's single (overlapped) exchange wins."
        ),
        None => println!("\nslabs win across the swept range (overlap + single exchange)."),
    }

    // ---- auto_select validation: the model-driven chooser must land on
    // the measured winner on both sides of the crossover. Interior points
    // are reported (seed-parameter pricing can wobble near the flip), but
    // a wrong pick at either end is a bug, so it aborts the bench.
    println!("\nauto_select validation (hopper model, N = {n}³):");
    println!("{:>6} | {:>10} | {:>10}", "p", "measured", "selected");
    let mut endpoints: Vec<(usize, &str, &str)> = Vec::new();
    for (i, exp) in (3..=11).enumerate() {
        let p = 1usize << exp;
        let spec = ProblemSpec::cube(n, 1);
        let selected = match auto_select(hopper(), &spec, p) {
            Ok(Decomposition::Slab) => "slab",
            Ok(Decomposition::Pencil(_)) => "pencil",
            Err(e) => panic!("auto_select({n}, {p}) refused: {e}"),
        };
        let measured =
            if p > n {
                "pencil" // slabs cannot even be formed past p = N
            } else {
                let spec = ProblemSpec::cube(n, p);
                let slab = fft3_simulated(
                    hopper(),
                    spec,
                    Variant::New,
                    TuningParams::seed(&spec),
                    false,
                )
                .time;
                let grid = PencilGrid::near_square(p);
                let best_pencil = pencil_simulated(hopper(), spec, grid)
                    .min(pencil_overlap_simulated(hopper(), spec, grid, 2, 32));
                if slab <= best_pencil {
                    "slab"
                } else {
                    "pencil"
                }
            };
        println!("{p:>6} | {measured:>10} | {selected:>10}");
        if i == 0 || p > n {
            endpoints.push((p, measured, selected));
        }
    }
    for (p, measured, selected) in endpoints {
        assert_eq!(
            measured, selected,
            "auto_select disagrees with the measured winner at p = {p}"
        );
    }
    println!("auto_select agrees on both sides of the crossover.");
}
