//! Multi-tenant service overload demo (ISSUE 10): four symmetric tenants
//! submit 3-D FFT jobs at 2× the cluster's service rate, every job carrying
//! a 1.5×-isolated deadline. The admission controller sheds load with typed
//! reasons — preferentially from the lowest priority class — while the
//! deadline watchdog keeps every accepted job inside its latency promise.
//!
//! ```sh
//! cargo run -p fft-bench --release --bin service [-- N p [jobs]] [--smoke]
//! ```
//!
//! `--smoke` runs a small fast configuration (32³ over 4 ranks, 8 jobs)
//! suitable for CI.

use cfft::Direction;
use fft3d::{JobSpec, ProblemSpec, Service, ServiceConfig};
use simnet::model::umd_cluster;

fn main() {
    let mut positional = Vec::new();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            positional.push(arg);
        }
    }
    let (mut n, mut p, mut njobs) = (256usize, 16usize, 24usize);
    if smoke {
        (n, p, njobs) = (32, 4, 8);
    }
    if let Some(v) = positional.first().and_then(|s| s.parse().ok()) {
        n = v;
    }
    if let Some(v) = positional.get(1).and_then(|s| s.parse().ok()) {
        p = v;
    }
    if let Some(v) = positional.get(2).and_then(|s| s.parse().ok()) {
        njobs = v;
    }

    let svc = Service::new(ServiceConfig::new(umd_cluster(), p));
    let template = JobSpec::new(0, ProblemSpec::cube(n, 1), Direction::Forward);
    let iso = match svc.isolated_run(&template) {
        Ok(run) => run.time,
        Err(e) => {
            eprintln!("service: template job N = {n}^3, p = {p} is infeasible: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "multi-tenant service on the UMD model, N = {n}^3, p = {p}: {njobs} jobs\n\
         from 4 tenants at 2x the service rate (one arrival per iso/2 = {:.4}s),\n\
         each with a 1.5x-isolated deadline ({:.4}s)\n",
        iso * 0.5,
        iso * 1.5
    );

    let jobs: Vec<JobSpec> = (0..njobs)
        .map(|i| {
            JobSpec::new(i % 4, ProblemSpec::cube(n, 1), Direction::Forward)
                .with_priority((i % 3) as u8)
                .with_deadline(iso * 1.5)
                .at(i as f64 * iso * 0.5)
        })
        .collect();
    let rep = svc.run(&jobs);

    println!(
        "{:>4} | {:>6} | {:>4} | {:>9} | {:>8} | {:>8} | outcome",
        "job", "tenant", "prio", "arrive(s)", "fct(s)", "slowdown"
    );
    for rec in &rep.jobs {
        let fct = rec
            .fct()
            .map_or_else(|| format!("{:>8}", "-"), |v| format!("{v:>8.4}"));
        let slow = rec
            .slowdown()
            .map_or_else(|| format!("{:>8}", "-"), |v| format!("{v:>7.2}x"));
        println!(
            "{:>4} | {:>6} | {:>4} | {:>9.4} | {fct} | {slow} | {}",
            rec.job, rec.tenant, rec.priority, rec.submitted, rec.outcome
        );
    }

    println!(
        "\n{} completed, {} rejected, {} cancelled; {} plan reuse(s); makespan {:.4}s",
        rep.completed(),
        rep.rejected(),
        rep.cancelled(),
        rep.plan_reuses,
        rep.makespan
    );
    println!(
        "FCT      : p50 {:.4}s  p99 {:.4}s  mean {:.4}s  max {:.4}s  (n = {})",
        rep.fct.p50, rep.fct.p99, rep.fct.mean, rep.fct.max, rep.fct.count
    );
    println!(
        "slowdown : p50 {:.2}x  p99 {:.2}x  mean {:.2}x  max {:.2}x  vs isolated {iso:.4}s",
        rep.slowdown.p50, rep.slowdown.p99, rep.slowdown.mean, rep.slowdown.max
    );
    println!(
        "fairness : Jain index {:.4} over per-tenant mean slowdowns\n",
        rep.jain
    );

    println!(
        "{:>6} | {:>9} | {:>9} | {:>8} | {:>9} | {:>13} | {:>12}",
        "tenant", "submitted", "completed", "rejected", "cancelled", "mean slowdown", "bytes moved"
    );
    for t in &rep.tenants {
        println!(
            "{:>6} | {:>9} | {:>9} | {:>8} | {:>9} | {:>12.2}x | {:>12}",
            t.tenant, t.submitted, t.completed, t.rejected, t.cancelled, t.mean_slowdown, t.bytes
        );
    }

    let accepted_ok = rep.completed() > 0
        && rep.rejected() > 0
        && rep.slowdown.p99 <= 1.5 + 1e-9
        && rep.jain >= 0.9;
    println!(
        "\nacceptance gate (shed under 2x load, p99 slowdown <= 1.5x, Jain >= 0.9): {}",
        if accepted_ok { "PASS" } else { "FAIL" }
    );
    if !accepted_ok {
        std::process::exit(1);
    }
}
