//! Tuning-strategy comparison (§7: "we plan to try optimization strategies
//! other than Nelder-Mead"): NM vs simulated annealing vs coordinate
//! descent vs random search, on equal execution budgets, against the real
//! simulated objective.
//!
//! ```sh
//! cargo run -p fft-bench --release --bin strategies [-- N p budget]
//! ```

use fft3d::{fft3_simulated, ProblemSpec, TuningParams, Variant};
use simnet::model::umd_cluster;
use tuner::anneal::{anneal_new, coordinate_descent_new};
use tuner::driver::tune_new;
use tuner::random::random_search;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let budget: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100);
    let spec = ProblemSpec::cube(n, p);
    println!(
        "strategy comparison on the UMD model, N = {n}³, p = {p}, ≈{budget} executed configs\n"
    );

    let objective = |params: &TuningParams| {
        fft3_simulated(umd_cluster(), spec, Variant::New, *params, true).time
    };

    let seed_val = objective(&TuningParams::seed(&spec));
    println!(
        "{:<22} {:>10} {:>8} {:>12}",
        "strategy", "best (s)", "execs", "tuning (s)"
    );
    println!(
        "{:<22} {:>10.4} {:>8} {:>12}",
        "seed (no tuning)", seed_val, 1, "-"
    );

    // NM requests ≈ 1.6 × executions in practice; give it a matching budget.
    let nm = tune_new(&spec, objective, budget * 8 / 5);
    println!(
        "{:<22} {:>10.4} {:>8} {:>12.1}",
        "Nelder-Mead", nm.best_value, nm.executed, nm.tuning_cost
    );

    let sa = anneal_new(&spec, objective, budget, 2014);
    println!(
        "{:<22} {:>10.4} {:>8} {:>12.1}",
        "simulated annealing", sa.best_value, sa.executed, sa.tuning_cost
    );

    let cd = coordinate_descent_new(&spec, objective, budget);
    println!(
        "{:<22} {:>10.4} {:>8} {:>12.1}",
        "coordinate descent", cd.best_value, cd.executed, cd.tuning_cost
    );

    let (_, rs_best, rs_values) = random_search(&spec, budget, 0xF1645, objective);
    let rs_cost: f64 = rs_values.iter().sum();
    println!(
        "{:<22} {:>10.4} {:>8} {:>12.1}",
        "random search",
        rs_best,
        rs_values.len(),
        rs_cost
    );

    println!(
        "\nAll strategies share the feasibility-penalty / history-cache harness;\n\
         the paper's NM choice is competitive and deterministic — the property\n\
         Active Harmony's deployment valued."
    );
}
