//! Calibration probe: prints the simulated FFTW / NEW(seed) / TH(seed)
//! times for every Table 2 cell next to the paper's numbers, so the
//! platform constants in `simnet::model` can be fitted to the FFTW column.
//!
//! Usage: `cargo run -p fft-bench --release --bin calibrate`

use fft3d::{fft3_simulated, th_simulated, ProblemSpec, ThParams, TuningParams, Variant};
use fft_bench::paper::TABLE2;
use simnet::model::{hopper, umd_cluster, Platform};
use std::time::Instant;

fn platform(name: &str) -> Platform {
    match name {
        "umd" => umd_cluster(),
        _ => hopper(),
    }
}

fn main() {
    println!(
        "{:<8} {:>4} {:>5} | {:>8} {:>8} {:>6} | {:>8} {:>8} | {:>8} {:>8} | {:>6}",
        "plat",
        "p",
        "N",
        "fftw(p)",
        "fftw(m)",
        "ratio",
        "new(p)",
        "new(m)",
        "th(p)",
        "th(m)",
        "wall"
    );
    let mut log_err_sum = 0.0;
    for &(plat, p, n, fftw_p, new_p, th_p) in TABLE2 {
        let spec = ProblemSpec::cube(n, p);
        let seed = TuningParams::seed(&spec);
        let t0 = Instant::now();
        let fftw = fft3_simulated(platform(plat), spec, Variant::Fftw, seed, false).time;
        let new = fft3_simulated(platform(plat), spec, Variant::New, seed, false).time;
        let th = th_simulated(platform(plat), spec, ThParams::seed(&spec), false).time;
        let wall = t0.elapsed().as_secs_f64();
        let ratio = fftw / fftw_p;
        log_err_sum += (fftw / fftw_p).ln().powi(2);
        println!(
            "{plat:<8} {p:>4} {n:>5} | {fftw_p:>8.3} {fftw:>8.3} {ratio:>6.2} | {new_p:>8.3} {new:>8.3} | {th_p:>8.3} {th:>8.3} | {wall:>6.2}s"
        );
    }
    let rms = (log_err_sum / TABLE2.len() as f64).sqrt();
    println!("\nFFTW-column RMS log error: {rms:.3} (×{:.2})", rms.exp());
}
