//! # fft-bench — experiment harness regenerating the paper's evaluation
//!
//! One binary per table/figure (see DESIGN.md §4 for the index):
//!
//! * `fig5` — random-configuration CDF + NM-vs-random (§5.3.1)
//! * `table2 -- --platform {umd|hopper|hopper-large|all}` — Tables 2–4 and
//!   Figure 7
//! * `fig8` — per-step breakdowns (NEW / NEW-0 / TH / TH-0)
//! * `fig9` — cross-platform test
//! * `calibrate` — model-vs-paper calibration probe
//! * `repro_all` — everything, rewriting EXPERIMENTS.md
pub mod cells;
pub mod experiments;
pub mod paper;
pub mod report;
