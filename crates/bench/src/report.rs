//! Markdown/console rendering of experiment results next to the paper's
//! published numbers.

use crate::cells::CellResult;
use crate::paper;
use fft3d::StepTimes;
use std::fmt::Write as _;

/// Finds the paper's Table 2 row for a cell.
pub fn paper_table2(platform: &str, p: usize, n: usize) -> Option<(f64, f64, f64)> {
    paper::TABLE2
        .iter()
        .find(|&&(pl, pp, nn, ..)| pl == platform && pp == p && nn == n)
        .map(|&(_, _, _, f, ne, t)| (f, ne, t))
}

/// Finds the paper's Table 4 row for a cell.
pub fn paper_table4(platform: &str, p: usize, n: usize) -> Option<(f64, f64, f64)> {
    paper::TABLE4
        .iter()
        .find(|&&(pl, pp, nn, ..)| pl == platform && pp == p && nn == n)
        .map(|&(_, _, _, f, ne, t)| (f, ne, t))
}

/// Renders Table 2 + Figure 7 (times and speedups, paper vs measured).
pub fn render_table2(cells: &[CellResult]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "| plat | p | N | FFTW paper | FFTW sim | NEW paper | NEW sim | TH paper | TH sim | NEW× paper | NEW× sim | TH× paper | TH× sim |"
    )
    .expect("write to String cannot fail");
    writeln!(s, "|---|---|---|---|---|---|---|---|---|---|---|---|---|")
        .expect("write to String cannot fail");
    for c in cells {
        let (fp, np, tp) =
            paper_table2(c.platform, c.p, c.n).unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        writeln!(
            s,
            "| {} | {} | {}³ | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | {:.2} | {:.2} | {:.2} | {:.2} |",
            c.platform,
            c.p,
            c.n,
            fp,
            c.fftw,
            np,
            c.new,
            tp,
            c.th,
            fp / np,
            c.speedup_new(),
            fp / tp,
            c.speedup_th(),
        )
        .expect("write to String cannot fail");
    }
    s
}

/// Renders Table 3 (tuned parameter values, paper beside measured).
pub fn render_table3(cells: &[CellResult]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "| plat | p | N | src | T | W | Px | Pz | Uy | Uz | Fy | Fp | Fu | Fx |"
    )
    .expect("write to String cannot fail");
    writeln!(
        s,
        "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|"
    )
    .expect("write to String cannot fail");
    for c in cells {
        if let Some(&(_, _, _, v)) = paper::TABLE3
            .iter()
            .find(|&&(pl, pp, nn, _)| pl == c.platform && pp == c.p && nn == c.n)
        {
            writeln!(
                s,
                "| {} | {} | {}³ | paper | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                c.platform, c.p, c.n, v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7], v[8], v[9]
            )
            .expect("write to String cannot fail");
        }
        let q = &c.new_params;
        writeln!(
            s,
            "| {} | {} | {}³ | sim | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            c.platform, c.p, c.n, q.t, q.w, q.px, q.pz, q.uy, q.uz, q.fy, q.fp, q.fu, q.fx
        )
        .expect("write to String cannot fail");
    }
    s
}

/// Renders Table 4 (auto-tuning time).
pub fn render_table4(cells: &[CellResult]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "| plat | p | N | FFTW paper | FFTW sim | NEW paper | NEW sim | TH paper | TH sim | NEW evals | TH evals |"
    )
    .expect("write to String cannot fail");
    writeln!(s, "|---|---|---|---|---|---|---|---|---|---|---|")
        .expect("write to String cannot fail");
    for c in cells {
        let (fp, np, tp) =
            paper_table4(c.platform, c.p, c.n).unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        writeln!(
            s,
            "| {} | {} | {}³ | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {} | {} |",
            c.platform,
            c.p,
            c.n,
            fp,
            c.fftw_tuning,
            np,
            c.new_tuning,
            tp,
            c.th_tuning,
            c.new_evals,
            c.th_evals
        )
        .expect("write to String cannot fail");
    }
    s
}

/// Renders one Figure 8 panel: per-step breakdown columns for NEW, NEW-0,
/// TH, TH-0.
pub fn render_fig8_panel(
    title: &str,
    new: &StepTimes,
    new0: &StepTimes,
    th: &StepTimes,
    th0: &StepTimes,
) -> String {
    let mut s = String::new();
    writeln!(s, "### {title}").expect("write to String cannot fail");
    writeln!(s, "| step | NEW | NEW-0 | TH | TH-0 |").expect("write to String cannot fail");
    writeln!(s, "|---|---|---|---|---|").expect("write to String cannot fail");
    let (en, e0, et, et0) = (new.entries(), new0.entries(), th.entries(), th0.entries());
    for i in 0..en.len() {
        writeln!(
            s,
            "| {} | {:.3} | {:.3} | {:.3} | {:.3} |",
            en[i].0, en[i].1, e0[i].1, et[i].1, et0[i].1
        )
        .expect("write to String cannot fail");
    }
    writeln!(
        s,
        "| **total** | {:.3} | {:.3} | {:.3} | {:.3} |",
        new.total(),
        new0.total(),
        th.total(),
        th0.total()
    )
    .expect("write to String cannot fail");
    s
}

/// Renders one rank's overlap-efficiency summary (derived from a trace —
/// see `fft3d::trace`) as a small table.
pub fn render_overlap(rank: usize, s: &fft3d::OverlapSummary) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "| rank | in-flight (s) | covered (s) | coverage | wait stall (s) | tests | tests/tile |"
    )
    .expect("write to String cannot fail");
    writeln!(out, "|---|---|---|---|---|---|---|").expect("write to String cannot fail");
    writeln!(
        out,
        "| {} | {:.4} | {:.4} | {:.1} % | {:.4} | {} | {:.1} |",
        rank,
        s.inflight,
        s.covered,
        100.0 * s.coverage,
        s.wait_stall,
        s.tests,
        s.tests_per_tile
    )
    .expect("write to String cannot fail");
    out
}

/// ASCII cumulative-distribution rendering for Figure 5.
pub fn render_cdf(values: &[f64], bins: usize) -> String {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let (lo, hi) = (sorted[0], sorted[sorted.len() - 1]);
    let mut s = String::new();
    writeln!(s, "| time (s) | cumulative fraction |").expect("write to String cannot fail");
    writeln!(s, "|---|---|").expect("write to String cannot fail");
    for b in 0..=bins {
        let x = lo + (hi - lo) * b as f64 / bins as f64;
        let frac = sorted.iter().filter(|&&v| v <= x).count() as f64 / sorted.len() as f64;
        writeln!(s, "| {x:.3} | {frac:.3} |").expect("write to String cannot fail");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lookups_work() {
        assert_eq!(paper_table2("umd", 16, 256), Some((0.369, 0.245, 0.319)));
        assert_eq!(
            paper_table4("hopper", 256, 2048),
            Some((465.411, 224.744, 75.616))
        );
        assert_eq!(paper_table2("umd", 16, 999), None);
    }

    #[test]
    fn overlap_rendering_includes_coverage_percent() {
        let s = fft3d::OverlapSummary {
            inflight: 2.0,
            covered: 1.0,
            coverage: 0.5,
            wait_stall: 0.25,
            tests: 12,
            tests_completed: 3,
            tiles: 4,
            tests_per_tile: 3.0,
        };
        let out = render_overlap(0, &s);
        assert!(out.contains("50.0 %"), "{out}");
        assert!(out.contains("| 12 |"), "{out}");
    }

    #[test]
    fn cdf_rendering_is_monotone() {
        let vals = vec![0.3, 0.1, 0.2, 0.25, 0.4];
        let table = render_cdf(&vals, 4);
        let fracs: Vec<f64> = table
            .lines()
            .skip(2)
            .map(|l| l.split('|').nth(2).unwrap().trim().parse().unwrap())
            .collect();
        assert!(fracs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*fracs.last().unwrap(), 1.0);
    }
}
