//! Micro-benchmarks of the Transpose-step implementations — the real-code
//! counterpart of the model's three transpose cost tiers (§3.5 and TH's
//! naive rearrangement), plus the blocked 2-D kernel.

use cfft::transpose::{permute3, transpose2, xzy_fast, Dims3, XYZ_TO_ZXY};
use cfft::Complex64;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn cube(n: usize) -> (Dims3, Vec<Complex64>) {
    let d = Dims3::new(n, n, n);
    let v = (0..d.len())
        .map(|i| Complex64::new(i as f64, -(i as f64)))
        .collect();
    (d, v)
}

/// The unblocked triple loop TH's kernel effectively performs.
fn naive_zxy(src: &[Complex64], dst: &mut [Complex64], d: Dims3) {
    for x in 0..d.n0 {
        for y in 0..d.n1 {
            for z in 0..d.n2 {
                dst[(z * d.n0 + x) * d.n1 + y] = src[(x * d.n1 + y) * d.n2 + z];
            }
        }
    }
}

fn bench_transpose_tiers(c: &mut Criterion) {
    let mut g = c.benchmark_group("transpose_tiers");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for n in [32usize, 64] {
        let (d, src) = cube(n);
        g.throughput(Throughput::Bytes((d.len() * 16) as u64));
        let mut dst = vec![Complex64::ZERO; d.len()];
        g.bench_with_input(BenchmarkId::new("fast_xzy", n), &n, |b, _| {
            b.iter(|| xzy_fast(&src, &mut dst, d));
        });
        g.bench_with_input(BenchmarkId::new("blocked_zxy", n), &n, |b, _| {
            b.iter(|| permute3(&src, &mut dst, d, XYZ_TO_ZXY));
        });
        g.bench_with_input(BenchmarkId::new("naive_zxy", n), &n, |b, _| {
            b.iter(|| naive_zxy(&src, &mut dst, d));
        });
    }
    g.finish();
}

fn bench_transpose2(c: &mut Criterion) {
    let mut g = c.benchmark_group("transpose2d");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for n in [256usize, 1024] {
        let src: Vec<Complex64> = (0..n * n).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let mut dst = vec![Complex64::ZERO; n * n];
        g.throughput(Throughput::Bytes((n * n * 16) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| transpose2(&src, &mut dst, n, n));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_transpose_tiers, bench_transpose2);
criterion_main!(benches);
