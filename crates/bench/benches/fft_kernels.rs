//! Micro-benchmarks of the 1-D FFT kernels — the substrate whose per-line
//! cost the machine model's `fft_flops` constant abstracts.

use cfft::bluestein::BluesteinPlan;
use cfft::mixed::MixedRadixPlan;
use cfft::planner::{Planner, Rigor};
use cfft::radix2::Radix2Plan;
use cfft::{Complex64, Direction};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|j| Complex64::new((j as f64 * 0.1).sin(), (j as f64 * 0.07).cos()))
        .collect()
}

fn bench_power_of_two_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("pow2_kernels");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for n in [256usize, 1024, 4096] {
        g.throughput(Throughput::Elements(n as u64));
        let x = signal(n);

        let r2 = Radix2Plan::new(n, Direction::Forward).unwrap();
        g.bench_with_input(BenchmarkId::new("radix2_inplace", n), &n, |b, _| {
            let mut data = x.clone();
            b.iter(|| r2.execute(&mut data));
        });

        let mx = MixedRadixPlan::new(n, Direction::Forward).unwrap();
        let mut scratch = vec![Complex64::ZERO; n];
        g.bench_with_input(BenchmarkId::new("stockham", n), &n, |b, _| {
            let mut data = x.clone();
            b.iter(|| mx.execute(&mut data, &mut scratch));
        });
    }
    g.finish();
}

fn bench_paper_line_lengths(c: &mut Criterion) {
    // The 1-D lengths the paper's grids induce: 256..2048 per line.
    let mut g = c.benchmark_group("paper_line_lengths");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let mut planner = Planner::new(Rigor::Measure);
    for n in [256usize, 384, 512, 640, 1280, 2048] {
        g.throughput(Throughput::Elements(n as u64));
        let plan = planner.plan(n, Direction::Forward);
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        let x = signal(n);
        g.bench_with_input(BenchmarkId::new("planned", n), &n, |b, _| {
            let mut data = x.clone();
            b.iter(|| plan.execute(&mut data, &mut scratch));
        });
    }
    g.finish();
}

fn bench_bluestein_primes(c: &mut Criterion) {
    let mut g = c.benchmark_group("bluestein_primes");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for n in [251usize, 509, 1021] {
        g.throughput(Throughput::Elements(n as u64));
        let plan = BluesteinPlan::new(n, Direction::Forward);
        let mut scratch = vec![Complex64::ZERO; 2 * plan.conv_len()];
        let x = signal(n);
        g.bench_with_input(BenchmarkId::new("bluestein", n), &n, |b, _| {
            let mut data = x.clone();
            b.iter(|| plan.execute(&mut data, &mut scratch));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_power_of_two_strategies,
    bench_paper_line_lengths,
    bench_bluestein_primes
);
criterion_main!(benches);
