//! Wall-clock benchmarks of the real (thread-runtime) distributed 3-D FFT
//! at laptop scale: NEW vs TH vs the FFTW-style baseline on actual data.
//!
//! On shared-memory threads the communication is memcpy-fast, so — unlike
//! on a cluster — overlap buys little here; this bench exists to show the
//! pipeline's *overhead* is small, not to reproduce Table 2 (that is the
//! simulator's job).

use cfft::planner::Rigor;
use cfft::Direction;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fft3d::real_env::{fft3_dist, local_test_slab};
use fft3d::{ProblemSpec, TuningParams, Variant};
use std::time::Duration;

fn bench_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributed_real");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for n in [32usize, 64] {
        let spec = ProblemSpec::cube(n, 4);
        let params = TuningParams::seed(&spec);
        g.throughput(Throughput::Elements(spec.len() as u64));
        for (label, variant) in [
            ("new", Variant::New),
            ("th", Variant::Th),
            ("fftw_style", Variant::Fftw),
        ] {
            g.bench_with_input(
                BenchmarkId::new(label, format!("{n}cubed_p4")),
                &spec,
                |b, &spec| {
                    b.iter(|| {
                        mpisim::run(spec.p, move |comm| {
                            let input = local_test_slab(&spec, comm.rank());
                            let out = fft3_dist(
                                &comm,
                                spec,
                                variant,
                                params,
                                Direction::Forward,
                                Rigor::Estimate,
                                &input,
                            );
                            out.data[0]
                        })
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_serial_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("serial_reference");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for n in [32usize, 64] {
        let x = fft3d::serial::full_test_array(n, n, n);
        g.throughput(Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut v = x.clone();
                fft3d::serial::fft3_serial(&mut v, n, n, n, Direction::Forward);
                v[0]
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_variants, bench_serial_reference);
criterion_main!(benches);
