//! Benchmarks of the mpisim runtime's collectives: blocking vs
//! test-progressed non-blocking all-to-all, and the barrier.

use cfft::Complex64;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn bench_alltoall(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoall");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (p, count) in [(4usize, 1024usize), (8, 1024), (4, 16384)] {
        let bytes = (p * count * 16) as u64;
        g.throughput(Throughput::Bytes(bytes));
        g.bench_with_input(
            BenchmarkId::new("blocking", format!("p{p}_c{count}")),
            &(p, count),
            |b, &(p, count)| {
                b.iter(|| {
                    mpisim::run(p, move |comm| {
                        let send = vec![Complex64::new(comm.rank() as f64, 0.0); p * count];
                        let mut recv = vec![Complex64::ZERO; p * count];
                        comm.alltoall(&send, count, &mut recv);
                        recv[0]
                    })
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("nonblocking_tested", format!("p{p}_c{count}")),
            &(p, count),
            |b, &(p, count)| {
                b.iter(|| {
                    mpisim::run(p, move |comm| {
                        let send = vec![Complex64::new(comm.rank() as f64, 0.0); p * count];
                        let mut req =
                            comm.ialltoall(&send, count, vec![Complex64::ZERO; p * count]);
                        while !req.test(&comm) {
                            std::hint::spin_loop();
                        }
                        req.take_recv()[0]
                    })
                });
            },
        );
    }
    g.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("barrier");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for p in [2usize, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                mpisim::run(p, |comm| {
                    for _ in 0..10 {
                        comm.barrier();
                    }
                })
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_alltoall, bench_barrier);
criterion_main!(benches);
