//! # faultplan — deterministic, seeded fault injection for the overlapped
//! all-to-all
//!
//! The paper's design hinges on manual asynchronous progression: a rank that
//! stops calling `MPI_Test` stalls every peer's rounds. To claim the NEW
//! variant degrades gracefully under node imbalance and flaky interconnects,
//! we must be able to *reproduce* those conditions on demand. A [`FaultPlan`]
//! is a pure description of the conditions to inject, interpreted by both
//! backends:
//!
//! * the **mpisim** runtime turns straggler/send delays into real `sleep`s
//!   before non-blocking-collective sends, drops messages per the seeded
//!   drop decision (retrying within the retransmit budget), and blackholes
//!   a rank's late-round sends to force a hard stall;
//! * the **simnet** simulator scales a straggler rank's compute time and
//!   every rank's all-to-all round time, reproducing Figure-8-style
//!   breakdowns under imbalance without touching real wall clocks.
//!
//! Every decision is a pure function of the plan's `seed` and the message
//! coordinates `(collective, src, dest, round, attempt)`, so a faulted run
//! is exactly repeatable — the property the chaos sweeps and CI fault
//! matrix rely on.

// Error-path hygiene shared with the runtime crates: typed errors or
// diagnostic `expect`s, never a bare `.unwrap()` outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::time::Duration;

/// A rank that runs slower than its peers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// World rank of the slow process.
    pub rank: usize,
    /// Multiplier (≥ 1) applied to this rank's compute phases by the
    /// simulated backend.
    pub compute_factor: f64,
    /// Real delay injected before each of this rank's non-blocking
    /// collective sends by the mpisim backend.
    pub send_delay: Duration,
}

impl Straggler {
    /// A straggler of dimensionless `severity ≥ 0`: compute runs
    /// `1 + severity` times slower (simnet) and every NBC send is preceded
    /// by `severity · 2 ms` of delay (mpisim).
    pub fn severity(rank: usize, severity: f64) -> Self {
        assert!(severity >= 0.0, "severity must be non-negative");
        Straggler {
            rank,
            compute_factor: 1.0 + severity,
            send_delay: Duration::from_micros((severity * 2000.0) as u64),
        }
    }
}

/// Transient message loss on the non-blocking all-to-all rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropSpec {
    /// Per-attempt probability in `[0, 1)` that a round send is dropped.
    pub probability: f64,
    /// Retransmit attempts allowed after the first drop before the budget
    /// is exhausted.
    pub max_retransmits: u32,
    /// What happens once the budget is exhausted: `true` surfaces a typed
    /// `Dropped` error, `false` force-delivers (a transient fault that
    /// healed).
    pub fail_after_budget: bool,
}

/// Silent payload corruption on the non-blocking all-to-all rounds: a
/// seeded fraction of round sends arrive with one flipped bit. Unlike
/// [`DropSpec`] there is no "force-deliver" mode — an exhausted retransmit
/// budget always surfaces a typed `Corrupt` error, because delivering data
/// known to be corrupt is never acceptable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptSpec {
    /// Per-attempt probability in `[0, 1)` that a round send is corrupted
    /// in transit.
    pub probability: f64,
    /// Retransmit attempts allowed after the first detected corruption
    /// before the budget is exhausted.
    pub max_retransmits: u32,
}

/// A single silent bit-flip in a rank's *resident* slab data — the memory
/// SDC scenario: no message is involved, so wire checksums cannot see it;
/// only the pipeline's own integrity checks (resident hashes / ABFT
/// checksum lines) can.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBitflip {
    /// World rank whose resident data is hit.
    pub rank: usize,
    /// Tile boundary at which the flip lands (0 = before the first
    /// exchange) — the same coordinate system as [`FaultKind::RankCrash`].
    pub at_tile: usize,
}

/// A rank whose sends silently vanish after a given round — the hard-stall
/// scenario: the rank *believes* it sent, so it never retries, and every
/// peer's watchdog must fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blackhole {
    /// World rank whose sends are swallowed.
    pub rank: usize,
    /// Rounds `> after_round` are blackholed; earlier rounds deliver.
    pub after_round: usize,
}

/// A rank that dies outright — the process-loss scenario. The rank's thread
/// unwinds at a tile (phase) boundary; survivors must detect the loss,
/// shrink, and recover rather than hang (ULFM-style, DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `rank` exits just before starting communication tile `at_tile`.
    RankCrash {
        /// World rank that dies.
        rank: usize,
        /// Tile boundary at which it dies (0 = before the first exchange).
        at_tile: usize,
    },
}

/// A deterministic, seeded description of the faults to inject into one run.
///
/// The default plan ([`FaultPlan::none`]) injects nothing and is free to
/// consult on hot paths ([`FaultPlan::is_active`] is a field read).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// Slow ranks.
    pub stragglers: Vec<Straggler>,
    /// Delay before every rank's NBC sends (mpisim).
    pub send_delay: Duration,
    /// Delay charged when an NBC round message is consumed (mpisim).
    pub recv_delay: Duration,
    /// Transient message loss.
    pub drop: Option<DropSpec>,
    /// Hard-stall injection.
    pub blackhole: Option<Blackhole>,
    /// Multiplier (≥ 1) on all-to-all round time (simnet): a degraded
    /// interconnect.
    pub link_degradation: f64,
    /// Process-loss injection (at most one per run).
    pub crash: Option<FaultKind>,
    /// Silent in-transit payload corruption.
    pub corrupt: Option<CorruptSpec>,
    /// Silent resident-memory bit-flip (at most one per run).
    pub bitflip: Option<MemoryBitflip>,
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An empty plan carrying `seed` for later probabilistic faults.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds a straggler of the given dimensionless severity (see
    /// [`Straggler::severity`]).
    pub fn with_straggler(mut self, rank: usize, severity: f64) -> Self {
        self.stragglers.push(Straggler::severity(rank, severity));
        self
    }

    /// Adds a fully specified straggler.
    pub fn with_straggler_spec(mut self, s: Straggler) -> Self {
        self.stragglers.push(s);
        self
    }

    /// Sets the global per-send delay (mpisim).
    pub fn with_send_delay(mut self, d: Duration) -> Self {
        self.send_delay = d;
        self
    }

    /// Sets the global per-receive delay (mpisim).
    pub fn with_recv_delay(mut self, d: Duration) -> Self {
        self.recv_delay = d;
        self
    }

    /// Enables transient message drops.
    pub fn with_drops(mut self, probability: f64, max_retransmits: u32) -> Self {
        assert!(
            (0.0..1.0).contains(&probability),
            "drop probability must be in [0, 1)"
        );
        self.drop = Some(DropSpec {
            probability,
            max_retransmits,
            fail_after_budget: false,
        });
        self
    }

    /// Enables drops whose exhausted retransmit budget surfaces a typed
    /// `Dropped` error instead of force-delivering.
    pub fn with_fatal_drops(mut self, probability: f64, max_retransmits: u32) -> Self {
        self = self.with_drops(probability, max_retransmits);
        if let Some(d) = &mut self.drop {
            d.fail_after_budget = true;
        }
        self
    }

    /// Blackholes `rank`'s sends for rounds `> after_round`.
    pub fn with_blackhole(mut self, rank: usize, after_round: usize) -> Self {
        self.blackhole = Some(Blackhole { rank, after_round });
        self
    }

    /// Scales every all-to-all round by `factor ≥ 1` (simnet).
    pub fn with_degraded_links(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "link degradation must be ≥ 1");
        self.link_degradation = factor;
        self
    }

    /// Kills `rank` at the boundary of communication tile `at_tile`.
    pub fn with_rank_crash(mut self, rank: usize, at_tile: usize) -> Self {
        self.crash = Some(FaultKind::RankCrash { rank, at_tile });
        self
    }

    /// Enables silent in-transit payload corruption: each round send is
    /// independently corrupted with `probability`, and a detected
    /// corruption may be retransmitted up to `max_retransmits` times before
    /// the typed `Corrupt` error surfaces.
    pub fn with_payload_corruption(mut self, probability: f64, max_retransmits: u32) -> Self {
        assert!(
            (0.0..1.0).contains(&probability),
            "corruption probability must be in [0, 1)"
        );
        self.corrupt = Some(CorruptSpec {
            probability,
            max_retransmits,
        });
        self
    }

    /// Flips one bit of `rank`'s resident slab data at the boundary of
    /// communication tile `at_tile`.
    pub fn with_memory_bitflip(mut self, rank: usize, at_tile: usize) -> Self {
        self.bitflip = Some(MemoryBitflip { rank, at_tile });
        self
    }

    /// Reseeds the plan for an isolated scope (a service job, a retry
    /// attempt) identified by `salt`: the fault *structure* — which ranks
    /// straggle, what crashes, how degraded the links are — is preserved,
    /// but every probabilistic decision (drops, corruption, bit-flip
    /// positions) draws from an independent stream. Two jobs sharing one
    /// tenant-supplied plan therefore fault independently, which is what
    /// per-job fault scoping in `fft3d::service` needs.
    pub fn scoped(mut self, salt: u64) -> Self {
        self.seed = hash5(self.seed, salt, 0x5c09_e0d5, 0, 0);
        self
    }

    /// `true` when the plan injects anything at all — the hot-path gate.
    pub fn is_active(&self) -> bool {
        !self.stragglers.is_empty()
            || !self.send_delay.is_zero()
            || !self.recv_delay.is_zero()
            || self.drop.is_some()
            || self.blackhole.is_some()
            || self.link_degradation > 1.0
            || self.crash.is_some()
            || self.corrupt.is_some()
            || self.bitflip.is_some()
    }

    /// `true` when the plan schedules a rank death.
    pub fn has_crash(&self) -> bool {
        self.crash.is_some()
    }

    /// The tile boundary at which `rank` is scheduled to die, if any.
    pub fn crash_at(&self, rank: usize) -> Option<usize> {
        match self.crash {
            Some(FaultKind::RankCrash { rank: r, at_tile }) if r == rank => Some(at_tile),
            _ => None,
        }
    }

    /// Compute-time multiplier for `rank` (1.0 for non-stragglers).
    pub fn compute_factor(&self, rank: usize) -> f64 {
        self.stragglers
            .iter()
            .find(|s| s.rank == rank)
            .map(|s| s.compute_factor)
            .unwrap_or(1.0)
    }

    /// Delay to inject before one of `rank`'s NBC sends: the global send
    /// delay plus the rank's straggler delay.
    pub fn send_delay_for(&self, rank: usize) -> Duration {
        self.send_delay
            + self
                .stragglers
                .iter()
                .find(|s| s.rank == rank)
                .map(|s| s.send_delay)
                .unwrap_or(Duration::ZERO)
    }

    /// All-to-all round-time multiplier (≥ 1).
    pub fn link_factor(&self) -> f64 {
        self.link_degradation.max(1.0)
    }

    /// `true` when `rank`'s send for `round` is blackholed.
    pub fn is_blackholed(&self, rank: usize, round: usize) -> bool {
        matches!(self.blackhole, Some(b) if b.rank == rank && round > b.after_round)
    }

    /// Seeded drop decision for one send attempt. `salt` distinguishes
    /// collectives (mpisim passes the collective sequence number), so the
    /// same round of different tiles draws independently.
    pub fn should_drop(
        &self,
        salt: u64,
        src: usize,
        dest: usize,
        round: usize,
        attempt: u32,
    ) -> bool {
        let Some(d) = self.drop else { return false };
        let h = hash5(
            self.seed,
            salt,
            ((src as u64) << 32) | dest as u64,
            round as u64,
            attempt as u64,
        );
        // Top 53 bits → uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < d.probability
    }

    /// Retransmit attempts allowed after the first drop (0 when drops are
    /// disabled).
    pub fn max_retransmits(&self) -> u32 {
        self.drop.map(|d| d.max_retransmits).unwrap_or(0)
    }

    /// Whether an exhausted retransmit budget is fatal.
    pub fn fail_after_budget(&self) -> bool {
        self.drop.map(|d| d.fail_after_budget).unwrap_or(false)
    }

    /// Seeded corruption decision for one send attempt: `Some(h)` when this
    /// attempt's payload is corrupted in transit, where `h` is a nonzero
    /// draw-specific hash the injection site uses to pick the flipped bit.
    /// Drawn from a different domain than [`FaultPlan::should_drop`], so
    /// drop and corruption decisions on the same coordinates are
    /// independent.
    pub fn should_corrupt(
        &self,
        salt: u64,
        src: usize,
        dest: usize,
        round: usize,
        attempt: u32,
    ) -> Option<u64> {
        let c = self.corrupt?;
        let h = hash5(
            self.seed ^ 0xc0_44u64.rotate_left(32),
            salt,
            ((src as u64) << 32) | dest as u64,
            round as u64,
            attempt as u64,
        );
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        (u < c.probability).then(|| mix(h) | 1)
    }

    /// Retransmit attempts allowed after a detected corruption (0 when
    /// corruption is disabled).
    pub fn corrupt_retransmits(&self) -> u32 {
        self.corrupt.map(|c| c.max_retransmits).unwrap_or(0)
    }

    /// The tile boundary at which `rank`'s resident data takes a bit-flip,
    /// if any.
    pub fn bitflip_at(&self, rank: usize) -> Option<usize> {
        match self.bitflip {
            Some(b) if b.rank == rank => Some(b.at_tile),
            _ => None,
        }
    }

    /// Seeded site hash for `rank`'s memory bit-flip — the injection site
    /// reduces it modulo its buffer length / element width to pick the
    /// element and bit. Nonzero, so `h % n | h >> k` style reductions never
    /// all collapse to zero.
    pub fn bitflip_site(&self, rank: usize) -> u64 {
        let at = self.bitflip_at(rank).unwrap_or(0) as u64;
        hash5(
            self.seed ^ 0xb1_7fu64.rotate_left(24),
            rank as u64,
            at,
            0,
            0,
        ) | 1
    }
}

/// Byte-level view of a payload element: enough to checksum it on the wire
/// and to flip one of its bits for fault injection. Implemented here for
/// the integer and float primitives; `cfft` implements it for `Complex64`
/// (the orphan rule puts that impl next to the type).
///
/// The contract ties detection to injection: flipping any in-range bit of
/// any element MUST change the value [`PayloadBits::fold_bits`] folds, so a
/// seeded injected flip is always visible to a fold-based checksum.
pub trait PayloadBits {
    /// Bits per element (the range `flip_bit` accepts).
    const BITS: u32;

    /// Folds this element's bit pattern into a running [`mix`]-style hash.
    fn fold_bits(&self, h: u64) -> u64;

    /// Flips bit `bit ∈ [0, Self::BITS)` of this element's representation.
    fn flip_bit(&mut self, bit: u32);
}

macro_rules! payload_bits_int {
    ($($t:ty),*) => {$(
        impl PayloadBits for $t {
            const BITS: u32 = <$t>::BITS;
            fn fold_bits(&self, h: u64) -> u64 {
                mix(h ^ (*self as u64))
            }
            fn flip_bit(&mut self, bit: u32) {
                *self ^= (1 as $t).rotate_left(bit % <$t>::BITS);
            }
        }
    )*};
}

payload_bits_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PayloadBits for f32 {
    const BITS: u32 = 32;
    fn fold_bits(&self, h: u64) -> u64 {
        mix(h ^ self.to_bits() as u64)
    }
    fn flip_bit(&mut self, bit: u32) {
        *self = f32::from_bits(self.to_bits() ^ 1u32.rotate_left(bit % 32));
    }
}

impl PayloadBits for f64 {
    const BITS: u32 = 64;
    fn fold_bits(&self, h: u64) -> u64 {
        mix(h ^ self.to_bits())
    }
    fn flip_bit(&mut self, bit: u32) {
        *self = f64::from_bits(self.to_bits() ^ 1u64.rotate_left(bit % 64));
    }
}

/// Checksum of a payload slice: a seeded fold over every element's bit
/// pattern plus the length, so both a flipped bit and a truncated block
/// change the sum. Order-sensitive by construction ([`mix`] chains).
pub fn checksum<T: PayloadBits>(data: &[T]) -> u64 {
    let mut h = mix(0x5ca1_ab1e ^ data.len() as u64);
    for v in data {
        h = v.fold_bits(h);
    }
    h
}

/// Flips one seeded bit of `data` in place: `site` (see
/// [`FaultPlan::bitflip_site`] / [`FaultPlan::should_corrupt`]) picks the
/// element and the bit within it. No-op on an empty slice. Returns the
/// `(element, bit)` coordinates actually hit.
pub fn flip_seeded_bit<T: PayloadBits>(data: &mut [T], site: u64) -> Option<(usize, u32)> {
    if data.is_empty() {
        return None;
    }
    let idx = (site % data.len() as u64) as usize;
    let bit = ((site >> 32) % T::BITS as u64) as u32;
    data[idx].flip_bit(bit);
    Some((idx, bit))
}

/// SplitMix64 finalizer — the workspace's shared seeded-decision primitive.
///
/// Public so every deterministic subsystem (fault injection here, the
/// `mpisim` virtual scheduler, `mpicheck`'s schedule exploration) draws from
/// the *same* mixing function: a schedule descriptor plus a seed fully
/// determines every decision, with no hidden RNG state anywhere.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes five words into one, order-sensitively (see [`mix`] for why this
/// is public).
pub fn hash5(a: u64, b: u64, c: u64, d: u64, e: u64) -> u64 {
    let mut h = mix(a);
    for w in [b, c, d, e] {
        h = mix(h ^ w.wrapping_mul(0xff51_afd7_ed55_8ccd));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inactive_and_injects_nothing() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert_eq!(p.compute_factor(3), 1.0);
        assert_eq!(p.send_delay_for(3), Duration::ZERO);
        assert_eq!(p.link_factor(), 1.0);
        assert!(!p.is_blackholed(0, 99));
        assert!(!p.should_drop(0, 0, 1, 2, 0));
        assert_eq!(p.max_retransmits(), 0);
    }

    #[test]
    fn straggler_affects_only_its_rank() {
        let p = FaultPlan::seeded(7).with_straggler(2, 1.5);
        assert!(p.is_active());
        assert!((p.compute_factor(2) - 2.5).abs() < 1e-12);
        assert_eq!(p.compute_factor(0), 1.0);
        assert_eq!(p.send_delay_for(2), Duration::from_millis(3));
        assert_eq!(p.send_delay_for(0), Duration::ZERO);
    }

    #[test]
    fn drop_decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(1).with_drops(0.5, 3);
        let b = FaultPlan::seeded(2).with_drops(0.5, 3);
        let decisions = |p: &FaultPlan| -> Vec<bool> {
            (0..64).map(|r| p.should_drop(9, 0, 1, r, 0)).collect()
        };
        assert_eq!(decisions(&a), decisions(&a), "same seed ⇒ same decisions");
        assert_ne!(decisions(&a), decisions(&b), "different seed ⇒ different");
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let p = FaultPlan::seeded(42).with_drops(0.3, 3);
        let n = 10_000;
        let drops = (0..n)
            .filter(|&i| p.should_drop(i as u64, i % 8, (i + 1) % 8, i % 16, 0))
            .count();
        let rate = drops as f64 / n as f64;
        assert!((0.25..0.35).contains(&rate), "rate {rate}");
    }

    #[test]
    fn attempts_draw_independently() {
        // A dropped attempt must not doom every retransmit: some coordinate
        // with attempt 0 dropped must pass on a later attempt.
        let p = FaultPlan::seeded(5).with_drops(0.5, 8);
        let healed = (0..200).any(|r| {
            p.should_drop(1, 0, 1, r, 0) && !(1..=8).all(|a| p.should_drop(1, 0, 1, r, a))
        });
        assert!(healed);
    }

    #[test]
    fn blackhole_swallows_only_late_rounds_of_its_rank() {
        let p = FaultPlan::none().with_blackhole(1, 2);
        assert!(!p.is_blackholed(1, 2));
        assert!(p.is_blackholed(1, 3));
        assert!(!p.is_blackholed(0, 3));
    }

    #[test]
    fn fatal_drops_flip_the_budget_policy() {
        let transient = FaultPlan::seeded(3).with_drops(0.1, 2);
        assert!(!transient.fail_after_budget());
        let fatal = FaultPlan::seeded(3).with_fatal_drops(0.1, 2);
        assert!(fatal.fail_after_budget());
        assert_eq!(fatal.max_retransmits(), 2);
    }

    #[test]
    fn rank_crash_targets_only_its_rank() {
        let p = FaultPlan::seeded(11).with_rank_crash(2, 3);
        assert!(p.is_active());
        assert_eq!(p.crash_at(2), Some(3));
        assert_eq!(p.crash_at(0), None);
        assert_eq!(FaultPlan::none().crash_at(2), None);
    }

    #[test]
    fn degraded_links_scale_round_time() {
        let p = FaultPlan::none().with_degraded_links(2.5);
        assert!(p.is_active());
        assert!((p.link_factor() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn corruption_decisions_are_deterministic_and_independent_of_drops() {
        let p = FaultPlan::seeded(9)
            .with_drops(0.5, 3)
            .with_payload_corruption(0.5, 3);
        assert!(p.is_active());
        let corrupts = |p: &FaultPlan| -> Vec<bool> {
            (0..128)
                .map(|r| p.should_corrupt(7, 0, 1, r, 0).is_some())
                .collect()
        };
        assert_eq!(corrupts(&p), corrupts(&p), "same seed ⇒ same decisions");
        // Independence: on some coordinate the drop and corruption draws
        // must disagree both ways (drop without corrupt, corrupt without
        // drop) — they share coordinates but not a domain.
        let disagree = (0..128)
            .any(|r| p.should_drop(7, 0, 1, r, 0) && p.should_corrupt(7, 0, 1, r, 0).is_none())
            && (0..128).any(|r| {
                !p.should_drop(7, 0, 1, r, 0) && p.should_corrupt(7, 0, 1, r, 0).is_some()
            });
        assert!(disagree, "drop and corruption draws must be independent");
    }

    #[test]
    fn corruption_rate_tracks_probability() {
        let p = FaultPlan::seeded(42).with_payload_corruption(0.3, 3);
        let n = 10_000;
        let hits = (0..n)
            .filter(|&i| {
                p.should_corrupt(i as u64, i % 8, (i + 1) % 8, i % 16, 0)
                    .is_some()
            })
            .count();
        let rate = hits as f64 / n as f64;
        assert!((0.25..0.35).contains(&rate), "rate {rate}");
    }

    #[test]
    fn corrupt_attempts_draw_independently() {
        // A corrupted attempt must not doom every retransmit.
        let p = FaultPlan::seeded(5).with_payload_corruption(0.5, 8);
        let healed = (0..200).any(|r| {
            p.should_corrupt(1, 0, 1, r, 0).is_some()
                && !(1..=8).all(|a| p.should_corrupt(1, 0, 1, r, a).is_some())
        });
        assert!(healed);
        assert_eq!(p.corrupt_retransmits(), 8);
        assert_eq!(FaultPlan::none().corrupt_retransmits(), 0);
    }

    #[test]
    fn memory_bitflip_targets_only_its_rank() {
        let p = FaultPlan::seeded(11).with_memory_bitflip(2, 3);
        assert!(p.is_active());
        assert_eq!(p.bitflip_at(2), Some(3));
        assert_eq!(p.bitflip_at(0), None);
        assert_eq!(FaultPlan::none().bitflip_at(2), None);
        assert_eq!(
            p.bitflip_site(2),
            p.bitflip_site(2),
            "site is deterministic"
        );
        assert_ne!(
            p.bitflip_site(2),
            FaultPlan::seeded(12)
                .with_memory_bitflip(2, 3)
                .bitflip_site(2),
            "site is seed-sensitive"
        );
    }

    #[test]
    fn checksum_detects_any_single_bit_flip() {
        let mut data: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
        let clean = checksum(&data);
        assert_eq!(clean, checksum(&data), "checksum is deterministic");
        for site in [1u64, 0x1234_5678_9abc_def1, u64::MAX] {
            let (idx, bit) = flip_seeded_bit(&mut data, site).expect("non-empty");
            assert_ne!(checksum(&data), clean, "flip at ({idx}, {bit}) missed");
            data[idx].flip_bit(bit); // restore
            assert_eq!(checksum(&data), clean);
        }
    }

    #[test]
    fn checksum_distinguishes_length_and_order() {
        let a = [1u32, 2, 3];
        let b = [1u32, 2];
        let c = [2u32, 1, 3];
        assert_ne!(checksum(&a), checksum(&b));
        assert_ne!(checksum(&a), checksum(&c));
        assert_eq!(checksum::<u64>(&[]), checksum::<u64>(&[]));
    }

    #[test]
    fn flip_bit_round_trips_on_every_primitive() {
        fn check<T: PayloadBits + Copy + PartialEq + std::fmt::Debug>(v: T) {
            for bit in 0..T::BITS {
                let mut w = v;
                w.flip_bit(bit);
                assert_ne!(w.fold_bits(0), v.fold_bits(0), "bit {bit} invisible");
                w.flip_bit(bit);
                assert_eq!(w, v);
            }
        }
        check(0xa5u8);
        check(-7i32);
        check(123_456_789_012u64);
        check(0.577_f32);
        check(-2.75_f64);
    }
}
