//! # faultplan — deterministic, seeded fault injection for the overlapped
//! all-to-all
//!
//! The paper's design hinges on manual asynchronous progression: a rank that
//! stops calling `MPI_Test` stalls every peer's rounds. To claim the NEW
//! variant degrades gracefully under node imbalance and flaky interconnects,
//! we must be able to *reproduce* those conditions on demand. A [`FaultPlan`]
//! is a pure description of the conditions to inject, interpreted by both
//! backends:
//!
//! * the **mpisim** runtime turns straggler/send delays into real `sleep`s
//!   before non-blocking-collective sends, drops messages per the seeded
//!   drop decision (retrying within the retransmit budget), and blackholes
//!   a rank's late-round sends to force a hard stall;
//! * the **simnet** simulator scales a straggler rank's compute time and
//!   every rank's all-to-all round time, reproducing Figure-8-style
//!   breakdowns under imbalance without touching real wall clocks.
//!
//! Every decision is a pure function of the plan's `seed` and the message
//! coordinates `(collective, src, dest, round, attempt)`, so a faulted run
//! is exactly repeatable — the property the chaos sweeps and CI fault
//! matrix rely on.

// Error-path hygiene shared with the runtime crates: typed errors or
// diagnostic `expect`s, never a bare `.unwrap()` outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::time::Duration;

/// A rank that runs slower than its peers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// World rank of the slow process.
    pub rank: usize,
    /// Multiplier (≥ 1) applied to this rank's compute phases by the
    /// simulated backend.
    pub compute_factor: f64,
    /// Real delay injected before each of this rank's non-blocking
    /// collective sends by the mpisim backend.
    pub send_delay: Duration,
}

impl Straggler {
    /// A straggler of dimensionless `severity ≥ 0`: compute runs
    /// `1 + severity` times slower (simnet) and every NBC send is preceded
    /// by `severity · 2 ms` of delay (mpisim).
    pub fn severity(rank: usize, severity: f64) -> Self {
        assert!(severity >= 0.0, "severity must be non-negative");
        Straggler {
            rank,
            compute_factor: 1.0 + severity,
            send_delay: Duration::from_micros((severity * 2000.0) as u64),
        }
    }
}

/// Transient message loss on the non-blocking all-to-all rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropSpec {
    /// Per-attempt probability in `[0, 1)` that a round send is dropped.
    pub probability: f64,
    /// Retransmit attempts allowed after the first drop before the budget
    /// is exhausted.
    pub max_retransmits: u32,
    /// What happens once the budget is exhausted: `true` surfaces a typed
    /// `Dropped` error, `false` force-delivers (a transient fault that
    /// healed).
    pub fail_after_budget: bool,
}

/// A rank whose sends silently vanish after a given round — the hard-stall
/// scenario: the rank *believes* it sent, so it never retries, and every
/// peer's watchdog must fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blackhole {
    /// World rank whose sends are swallowed.
    pub rank: usize,
    /// Rounds `> after_round` are blackholed; earlier rounds deliver.
    pub after_round: usize,
}

/// A rank that dies outright — the process-loss scenario. The rank's thread
/// unwinds at a tile (phase) boundary; survivors must detect the loss,
/// shrink, and recover rather than hang (ULFM-style, DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `rank` exits just before starting communication tile `at_tile`.
    RankCrash {
        /// World rank that dies.
        rank: usize,
        /// Tile boundary at which it dies (0 = before the first exchange).
        at_tile: usize,
    },
}

/// A deterministic, seeded description of the faults to inject into one run.
///
/// The default plan ([`FaultPlan::none`]) injects nothing and is free to
/// consult on hot paths ([`FaultPlan::is_active`] is a field read).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// Slow ranks.
    pub stragglers: Vec<Straggler>,
    /// Delay before every rank's NBC sends (mpisim).
    pub send_delay: Duration,
    /// Delay charged when an NBC round message is consumed (mpisim).
    pub recv_delay: Duration,
    /// Transient message loss.
    pub drop: Option<DropSpec>,
    /// Hard-stall injection.
    pub blackhole: Option<Blackhole>,
    /// Multiplier (≥ 1) on all-to-all round time (simnet): a degraded
    /// interconnect.
    pub link_degradation: f64,
    /// Process-loss injection (at most one per run).
    pub crash: Option<FaultKind>,
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An empty plan carrying `seed` for later probabilistic faults.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds a straggler of the given dimensionless severity (see
    /// [`Straggler::severity`]).
    pub fn with_straggler(mut self, rank: usize, severity: f64) -> Self {
        self.stragglers.push(Straggler::severity(rank, severity));
        self
    }

    /// Adds a fully specified straggler.
    pub fn with_straggler_spec(mut self, s: Straggler) -> Self {
        self.stragglers.push(s);
        self
    }

    /// Sets the global per-send delay (mpisim).
    pub fn with_send_delay(mut self, d: Duration) -> Self {
        self.send_delay = d;
        self
    }

    /// Sets the global per-receive delay (mpisim).
    pub fn with_recv_delay(mut self, d: Duration) -> Self {
        self.recv_delay = d;
        self
    }

    /// Enables transient message drops.
    pub fn with_drops(mut self, probability: f64, max_retransmits: u32) -> Self {
        assert!(
            (0.0..1.0).contains(&probability),
            "drop probability must be in [0, 1)"
        );
        self.drop = Some(DropSpec {
            probability,
            max_retransmits,
            fail_after_budget: false,
        });
        self
    }

    /// Enables drops whose exhausted retransmit budget surfaces a typed
    /// `Dropped` error instead of force-delivering.
    pub fn with_fatal_drops(mut self, probability: f64, max_retransmits: u32) -> Self {
        self = self.with_drops(probability, max_retransmits);
        if let Some(d) = &mut self.drop {
            d.fail_after_budget = true;
        }
        self
    }

    /// Blackholes `rank`'s sends for rounds `> after_round`.
    pub fn with_blackhole(mut self, rank: usize, after_round: usize) -> Self {
        self.blackhole = Some(Blackhole { rank, after_round });
        self
    }

    /// Scales every all-to-all round by `factor ≥ 1` (simnet).
    pub fn with_degraded_links(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "link degradation must be ≥ 1");
        self.link_degradation = factor;
        self
    }

    /// Kills `rank` at the boundary of communication tile `at_tile`.
    pub fn with_rank_crash(mut self, rank: usize, at_tile: usize) -> Self {
        self.crash = Some(FaultKind::RankCrash { rank, at_tile });
        self
    }

    /// `true` when the plan injects anything at all — the hot-path gate.
    pub fn is_active(&self) -> bool {
        !self.stragglers.is_empty()
            || !self.send_delay.is_zero()
            || !self.recv_delay.is_zero()
            || self.drop.is_some()
            || self.blackhole.is_some()
            || self.link_degradation > 1.0
            || self.crash.is_some()
    }

    /// `true` when the plan schedules a rank death.
    pub fn has_crash(&self) -> bool {
        self.crash.is_some()
    }

    /// The tile boundary at which `rank` is scheduled to die, if any.
    pub fn crash_at(&self, rank: usize) -> Option<usize> {
        match self.crash {
            Some(FaultKind::RankCrash { rank: r, at_tile }) if r == rank => Some(at_tile),
            _ => None,
        }
    }

    /// Compute-time multiplier for `rank` (1.0 for non-stragglers).
    pub fn compute_factor(&self, rank: usize) -> f64 {
        self.stragglers
            .iter()
            .find(|s| s.rank == rank)
            .map(|s| s.compute_factor)
            .unwrap_or(1.0)
    }

    /// Delay to inject before one of `rank`'s NBC sends: the global send
    /// delay plus the rank's straggler delay.
    pub fn send_delay_for(&self, rank: usize) -> Duration {
        self.send_delay
            + self
                .stragglers
                .iter()
                .find(|s| s.rank == rank)
                .map(|s| s.send_delay)
                .unwrap_or(Duration::ZERO)
    }

    /// All-to-all round-time multiplier (≥ 1).
    pub fn link_factor(&self) -> f64 {
        self.link_degradation.max(1.0)
    }

    /// `true` when `rank`'s send for `round` is blackholed.
    pub fn is_blackholed(&self, rank: usize, round: usize) -> bool {
        matches!(self.blackhole, Some(b) if b.rank == rank && round > b.after_round)
    }

    /// Seeded drop decision for one send attempt. `salt` distinguishes
    /// collectives (mpisim passes the collective sequence number), so the
    /// same round of different tiles draws independently.
    pub fn should_drop(
        &self,
        salt: u64,
        src: usize,
        dest: usize,
        round: usize,
        attempt: u32,
    ) -> bool {
        let Some(d) = self.drop else { return false };
        let h = hash5(
            self.seed,
            salt,
            ((src as u64) << 32) | dest as u64,
            round as u64,
            attempt as u64,
        );
        // Top 53 bits → uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < d.probability
    }

    /// Retransmit attempts allowed after the first drop (0 when drops are
    /// disabled).
    pub fn max_retransmits(&self) -> u32 {
        self.drop.map(|d| d.max_retransmits).unwrap_or(0)
    }

    /// Whether an exhausted retransmit budget is fatal.
    pub fn fail_after_budget(&self) -> bool {
        self.drop.map(|d| d.fail_after_budget).unwrap_or(false)
    }
}

/// SplitMix64 finalizer — the workspace's shared seeded-decision primitive.
///
/// Public so every deterministic subsystem (fault injection here, the
/// `mpisim` virtual scheduler, `mpicheck`'s schedule exploration) draws from
/// the *same* mixing function: a schedule descriptor plus a seed fully
/// determines every decision, with no hidden RNG state anywhere.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes five words into one, order-sensitively (see [`mix`] for why this
/// is public).
pub fn hash5(a: u64, b: u64, c: u64, d: u64, e: u64) -> u64 {
    let mut h = mix(a);
    for w in [b, c, d, e] {
        h = mix(h ^ w.wrapping_mul(0xff51_afd7_ed55_8ccd));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inactive_and_injects_nothing() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert_eq!(p.compute_factor(3), 1.0);
        assert_eq!(p.send_delay_for(3), Duration::ZERO);
        assert_eq!(p.link_factor(), 1.0);
        assert!(!p.is_blackholed(0, 99));
        assert!(!p.should_drop(0, 0, 1, 2, 0));
        assert_eq!(p.max_retransmits(), 0);
    }

    #[test]
    fn straggler_affects_only_its_rank() {
        let p = FaultPlan::seeded(7).with_straggler(2, 1.5);
        assert!(p.is_active());
        assert!((p.compute_factor(2) - 2.5).abs() < 1e-12);
        assert_eq!(p.compute_factor(0), 1.0);
        assert_eq!(p.send_delay_for(2), Duration::from_millis(3));
        assert_eq!(p.send_delay_for(0), Duration::ZERO);
    }

    #[test]
    fn drop_decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(1).with_drops(0.5, 3);
        let b = FaultPlan::seeded(2).with_drops(0.5, 3);
        let decisions = |p: &FaultPlan| -> Vec<bool> {
            (0..64).map(|r| p.should_drop(9, 0, 1, r, 0)).collect()
        };
        assert_eq!(decisions(&a), decisions(&a), "same seed ⇒ same decisions");
        assert_ne!(decisions(&a), decisions(&b), "different seed ⇒ different");
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let p = FaultPlan::seeded(42).with_drops(0.3, 3);
        let n = 10_000;
        let drops = (0..n)
            .filter(|&i| p.should_drop(i as u64, i % 8, (i + 1) % 8, i % 16, 0))
            .count();
        let rate = drops as f64 / n as f64;
        assert!((0.25..0.35).contains(&rate), "rate {rate}");
    }

    #[test]
    fn attempts_draw_independently() {
        // A dropped attempt must not doom every retransmit: some coordinate
        // with attempt 0 dropped must pass on a later attempt.
        let p = FaultPlan::seeded(5).with_drops(0.5, 8);
        let healed = (0..200).any(|r| {
            p.should_drop(1, 0, 1, r, 0) && !(1..=8).all(|a| p.should_drop(1, 0, 1, r, a))
        });
        assert!(healed);
    }

    #[test]
    fn blackhole_swallows_only_late_rounds_of_its_rank() {
        let p = FaultPlan::none().with_blackhole(1, 2);
        assert!(!p.is_blackholed(1, 2));
        assert!(p.is_blackholed(1, 3));
        assert!(!p.is_blackholed(0, 3));
    }

    #[test]
    fn fatal_drops_flip_the_budget_policy() {
        let transient = FaultPlan::seeded(3).with_drops(0.1, 2);
        assert!(!transient.fail_after_budget());
        let fatal = FaultPlan::seeded(3).with_fatal_drops(0.1, 2);
        assert!(fatal.fail_after_budget());
        assert_eq!(fatal.max_retransmits(), 2);
    }

    #[test]
    fn rank_crash_targets_only_its_rank() {
        let p = FaultPlan::seeded(11).with_rank_crash(2, 3);
        assert!(p.is_active());
        assert_eq!(p.crash_at(2), Some(3));
        assert_eq!(p.crash_at(0), None);
        assert_eq!(FaultPlan::none().crash_at(2), None);
    }

    #[test]
    fn degraded_links_scale_round_time() {
        let p = FaultPlan::none().with_degraded_links(2.5);
        assert!(p.is_active());
        assert!((p.link_factor() - 2.5).abs() < 1e-12);
    }
}
