//! Discrete parameter spaces with log-scale reduction (§4.4, technique 4).
//!
//! "Instead of searching a whole set of all possible values of a parameter,
//! we reduce a search space to a log scale and consider power-of-two values
//! for testing. The minimum and maximum values are additionally considered
//! … As an exception, the log-scale reduction is not applied to W because
//! there are few possible values for W."

use fft3d::{PencilGrid, ProblemSpec, ThParams, TuningParams};

/// One searchable dimension: an ordered list of candidate values.
#[derive(Debug, Clone)]
pub struct DimSpec {
    /// Parameter name (Table 1's notation).
    pub name: &'static str,
    /// Sorted candidate values.
    pub values: Vec<usize>,
}

impl DimSpec {
    /// Log-scale-reduced candidates for the range `[lo, hi]`: the powers of
    /// two inside it plus both boundaries.
    pub fn log_scale(name: &'static str, lo: usize, hi: usize) -> Self {
        assert!(lo >= 1 && hi >= lo, "bad range [{lo}, {hi}] for {name}");
        let mut values = vec![lo];
        let mut v = 1usize;
        while v <= hi {
            if v > lo && v < hi {
                values.push(v);
            }
            v = v.saturating_mul(2);
        }
        if hi > lo {
            values.push(hi);
        }
        values.dedup();
        DimSpec { name, values }
    }

    /// Every value in `[lo, hi]` (the W exception).
    pub fn full_range(name: &'static str, lo: usize, hi: usize) -> Self {
        DimSpec {
            name,
            values: (lo..=hi).collect(),
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if there are no candidates (never happens for valid ranges).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Index of the candidate closest to `value` (for seeding the simplex
    /// at a specific parameter configuration).
    pub fn nearest_index(&self, value: usize) -> usize {
        self.values
            .iter()
            .enumerate()
            .min_by_key(|(_, &v)| v.abs_diff(value))
            .map(|(i, _)| i)
            .expect("dimension has candidates")
    }

    /// Candidate at a clamped, rounded continuous coordinate.
    pub fn at_coord(&self, x: f64) -> usize {
        let i = x.round().clamp(0.0, (self.values.len() - 1) as f64) as usize;
        self.values[i]
    }
}

/// An ordered set of dimensions plus a decoder to the concrete parameter
/// type.
pub struct Space {
    /// The dimensions, in a fixed order.
    pub dims: Vec<DimSpec>,
}

impl Space {
    /// Dimensionality `d` (NM simplices have `d + 1` vertices).
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Rounds a continuous point to concrete candidate values.
    pub fn decode(&self, x: &[f64]) -> Vec<usize> {
        assert_eq!(x.len(), self.dims.len());
        x.iter()
            .zip(&self.dims)
            .map(|(&c, d)| d.at_coord(c))
            .collect()
    }

    /// Continuous coordinates of a concrete value vector.
    pub fn encode(&self, values: &[usize]) -> Vec<f64> {
        assert_eq!(values.len(), self.dims.len());
        values
            .iter()
            .zip(&self.dims)
            .map(|(&v, d)| d.nearest_index(v) as f64)
            .collect()
    }

    /// A conservative size estimate (product of per-dim candidate counts).
    pub fn size(&self) -> u128 {
        self.dims.iter().map(|d| d.len() as u128).product()
    }
}

/// Builds the eleven-dimensional NEW space for `spec` (Table 1, reduced
/// per §4.4, plus the `Th` intra-rank thread count).
pub fn new_space(spec: &ProblemSpec) -> Space {
    let nxl = spec.nx.div_ceil(spec.p).max(1);
    let nyl = spec.ny.div_ceil(spec.p).max(1);
    let max_tiles = spec.nz; // T = 1
    let f_max = (16 * spec.p).next_power_of_two().clamp(64, 4096);
    // Simulation-tractability clamp: cap the tile count at 256 (T ≥ Nz/256).
    // Sub-plane tiles are never competitive — each tile pays a full
    // all-to-all round structure — and simulating thousands of collectives
    // per evaluation would dominate tuning wall time.
    let t_min = (spec.nz / 256).max(1);
    Space {
        dims: vec![
            DimSpec::log_scale("T", t_min, spec.nz),
            DimSpec::full_range("W", 1, max_tiles.min(8)),
            DimSpec::log_scale("Px", 1, nxl),
            DimSpec::log_scale("Pz", 1, spec.nz),
            DimSpec::log_scale("Uy", 1, nyl),
            DimSpec::log_scale("Uz", 1, spec.nz),
            DimSpec::log_scale("Fy", 1, f_max),
            DimSpec::log_scale("Fp", 1, f_max),
            DimSpec::log_scale("Fu", 1, f_max),
            DimSpec::log_scale("Fx", 1, f_max),
            // Machine-independent candidate set: the simulator models
            // perfect kernel scaling, so going beyond 8 workers only
            // inflates the space without changing the overlap trade-offs.
            DimSpec::log_scale("Th", 1, 8),
        ],
    }
}

/// Decodes an eleven-value vector from [`new_space`] into [`TuningParams`].
pub fn decode_new(values: &[usize]) -> TuningParams {
    assert_eq!(values.len(), 11);
    TuningParams {
        t: values[0],
        w: values[1],
        px: values[2],
        pz: values[3],
        uy: values[4],
        uz: values[5],
        fy: values[6] as u32,
        fp: values[7] as u32,
        fu: values[8] as u32,
        fx: values[9] as u32,
        threads: values[10],
    }
}

/// Encodes [`TuningParams`] into the value vector of [`new_space`].
pub fn encode_new(p: &TuningParams) -> Vec<usize> {
    vec![
        p.t,
        p.w,
        p.px,
        p.pz,
        p.uy,
        p.uz,
        p.fy as usize,
        p.fp as usize,
        p.fu as usize,
        p.fx as usize,
        p.threads,
    ]
}

/// Builds the twelve-dimensional pencil space: the eleven NEW knobs plus
/// `G`, the process-grid shape as an index into
/// [`PencilGrid::divisor_pairs`]`(p)`. The grid shape is a *constrained*
/// dimension — only divisor pairs of `p` are representable — so the
/// simplex moves along the ordered divisor list rather than over a
/// (mostly infeasible) `pr × pc` rectangle. `T` tiles the pencil stages
/// along local x and z (the backend clamps it per stage), and the slab
/// subtile knobs (`Px`/`Pz`/`Uy`/`Uz`) are inert for this backend but
/// kept so both spaces share structure and seed encoding.
pub fn pencil_space(spec: &ProblemSpec) -> Space {
    let mut dims = new_space(spec).dims;
    let npairs = PencilGrid::divisor_pairs(spec.p).len().max(1);
    dims.push(DimSpec::full_range("G", 0, npairs - 1));
    Space { dims }
}

/// Decodes a twelve-value vector from [`pencil_space`] into the tuning
/// parameters and the grid shape.
pub fn decode_pencil(spec: &ProblemSpec, values: &[usize]) -> (TuningParams, PencilGrid) {
    assert_eq!(values.len(), 12);
    let pairs = PencilGrid::divisor_pairs(spec.p);
    let grid = pairs[values[11].min(pairs.len().saturating_sub(1))];
    (decode_new(&values[..11]), grid)
}

/// Encodes a `(params, grid)` pair into the value vector of
/// [`pencil_space`]. A grid that is not a divisor pair of `spec.p` maps
/// to index 0 (the `1×p` shape).
pub fn encode_pencil(spec: &ProblemSpec, params: &TuningParams, grid: PencilGrid) -> Vec<usize> {
    let mut v = encode_new(params);
    let pairs = PencilGrid::divisor_pairs(spec.p);
    v.push(pairs.iter().position(|g| *g == grid).unwrap_or(0));
    v
}

/// Builds the three-dimensional TH space (T, W, F).
pub fn th_space(spec: &ProblemSpec) -> Space {
    let f_max = (16 * spec.p).next_power_of_two().clamp(64, 4096);
    Space {
        dims: vec![
            DimSpec::log_scale("T", 1, spec.nz),
            DimSpec::full_range("W", 1, spec.nz.min(8)),
            DimSpec::log_scale("F", 1, f_max),
        ],
    }
}

/// Decodes a three-value vector from [`th_space`].
pub fn decode_th(values: &[usize]) -> ThParams {
    assert_eq!(values.len(), 3);
    ThParams {
        t: values[0],
        w: values[1],
        f: values[2] as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_scale_matches_paper_example() {
        // "when Nz = 24, T can be 1, 2, 4, 8, 16, or 24."
        let d = DimSpec::log_scale("T", 1, 24);
        assert_eq!(d.values, vec![1, 2, 4, 8, 16, 24]);
    }

    #[test]
    fn log_scale_with_power_of_two_bounds() {
        let d = DimSpec::log_scale("T", 1, 32);
        assert_eq!(d.values, vec![1, 2, 4, 8, 16, 32]);
        let d = DimSpec::log_scale("X", 4, 16);
        assert_eq!(d.values, vec![4, 8, 16]);
    }

    #[test]
    fn degenerate_single_value_range() {
        let d = DimSpec::log_scale("T", 1, 1);
        assert_eq!(d.values, vec![1]);
    }

    #[test]
    fn nearest_index_and_coords() {
        let d = DimSpec::log_scale("T", 1, 24);
        assert_eq!(d.values[d.nearest_index(24)], 24);
        assert_eq!(d.values[d.nearest_index(9)], 8);
        assert_eq!(d.at_coord(-3.0), 1);
        assert_eq!(d.at_coord(100.0), 24);
        assert_eq!(d.at_coord(2.4), 4);
    }

    #[test]
    fn new_space_has_eleven_dims_and_large_size() {
        let spec = ProblemSpec::cube(256, 16);
        let s = new_space(&spec);
        assert_eq!(s.ndims(), 11);
        // The reduced space is large but tractable; the raw space (the
        // paper's "conservative" 10^10) is what reduction avoids.
        assert!(s.size() > 100_000, "size = {}", s.size());
    }

    #[test]
    fn decode_encode_round_trip() {
        let spec = ProblemSpec::cube(256, 16);
        let s = new_space(&spec);
        let seed = TuningParams::seed(&spec);
        let coords = s.encode(&encode_new(&seed));
        let decoded = decode_new(&s.decode(&coords));
        // The seed is on-grid for cubes of powers of two, so the round trip
        // is exact.
        assert_eq!(decoded, seed);
    }

    #[test]
    fn pencil_space_adds_the_grid_dimension() {
        let spec = ProblemSpec::cube(256, 16);
        let s = pencil_space(&spec);
        assert_eq!(s.ndims(), 12);
        // 16 has five divisors: 1, 2, 4, 8, 16.
        assert_eq!(s.dims[11].len(), 5);
        assert_eq!(s.dims[11].name, "G");
    }

    #[test]
    fn pencil_decode_encode_round_trips_grid_shapes() {
        let spec = ProblemSpec::cube(64, 12);
        let s = pencil_space(&spec);
        let params = fft3d::pencil_seed(&spec, PencilGrid { pr: 3, pc: 4 });
        for grid in PencilGrid::divisor_pairs(12) {
            let v = encode_pencil(&spec, &params, grid);
            let coords = s.encode(&v);
            let (_, decoded) = decode_pencil(&spec, &s.decode(&coords));
            assert_eq!(decoded, grid);
        }
    }

    #[test]
    fn th_space_is_three_dimensional() {
        let spec = ProblemSpec::cube(256, 16);
        let s = th_space(&spec);
        assert_eq!(s.ndims(), 3);
        assert!(s.size() < 1000);
    }
}
