//! # tuner — Active Harmony-style auto-tuning for the overlapped 3-D FFT
//!
//! Stand-in for the Active Harmony framework (§4.3): a Nelder–Mead search
//! over a discrete, log-scale-reduced parameter space, with the paper's
//! five §4.4 acceleration techniques (infeasible-configuration penalty,
//! history reuse, fixed-step skipping, search-space reduction, constructed
//! initial simplex), plus the random-search baseline of §5.3.1.
//!
//! ```
//! use fft3d::{ProblemSpec, TuningParams};
//! use tuner::driver::tune_new;
//!
//! // Tune against a synthetic objective with an optimum at T = 8.
//! let spec = ProblemSpec::cube(64, 4);
//! let result = tune_new(&spec, |p| ((p.t as f64).log2() - 3.0).abs(), 200);
//! assert!(result.best.is_feasible(&spec));
//! assert!(result.best_value <= ((TuningParams::seed(&spec).t as f64).log2() - 3.0).abs());
//! ```

pub mod anneal;
pub mod driver;
pub mod nelder_mead;
pub mod random;
pub mod space;

pub use anneal::{anneal_new, coordinate_descent_new, AnnealResult};
pub use driver::{tune_new, tune_pencil, tune_th, TuneResult, DEFAULT_MAX_EVALS};
pub use random::{percentile_rank, random_configs, random_search};
