//! Simulated annealing over the reduced parameter space — one of the
//! alternative optimisation strategies the paper's §7 plans to try against
//! Nelder–Mead.
//!
//! Neighbour moves step one dimension by one grid index; the temperature
//! schedule is geometric. Shares the feasibility-penalty and history-cache
//! treatment with the NM driver so comparisons are apples-to-apples.

use crate::space::{decode_new, encode_new, new_space};
use fft3d::{ProblemSpec, TuningParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Result of an annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult {
    /// Best feasible configuration found.
    pub best: TuningParams,
    /// Its objective value.
    pub best_value: f64,
    /// Configurations actually executed (cache misses).
    pub executed: usize,
    /// Σ execution time of executed configurations.
    pub tuning_cost: f64,
}

/// Tunes the ten NEW parameters by simulated annealing with `max_execs`
/// executed evaluations.
pub fn anneal_new(
    spec: &ProblemSpec,
    mut objective: impl FnMut(&TuningParams) -> f64,
    max_execs: usize,
    rng_seed: u64,
) -> AnnealResult {
    let space = new_space(spec);
    let dims: Vec<usize> = space.dims.iter().map(|d| d.len()).collect();
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut cache: HashMap<Vec<usize>, f64> = HashMap::new();
    let mut executed = 0usize;
    let mut tuning_cost = 0.0;

    let eval = |idx: &[usize],
                cache: &mut HashMap<Vec<usize>, f64>,
                executed: &mut usize,
                cost: &mut f64,
                objective: &mut dyn FnMut(&TuningParams) -> f64|
     -> f64 {
        let values: Vec<usize> = idx
            .iter()
            .zip(&space.dims)
            .map(|(&i, d)| d.values[i])
            .collect();
        let p = decode_new(&values);
        if !p.is_feasible(spec) {
            return f64::INFINITY;
        }
        if let Some(&v) = cache.get(&values) {
            return v;
        }
        let v = objective(&p);
        cache.insert(values, v);
        *executed += 1;
        *cost += v;
        v
    };

    // Start at the §4.4 seed.
    let seed = TuningParams::seed(spec);
    let seed_values = encode_new(&seed);
    let mut cur: Vec<usize> = seed_values
        .iter()
        .zip(&space.dims)
        .map(|(&v, d)| d.nearest_index(v))
        .collect();
    let mut cur_val = eval(
        &cur,
        &mut cache,
        &mut executed,
        &mut tuning_cost,
        &mut objective,
    );
    let mut best = cur.clone();
    let mut best_val = cur_val;

    // Geometric cooling sized to the execution budget.
    let mut temp = (cur_val.abs().max(1e-6)) * 0.5;
    let cooling = 0.93f64;
    while executed < max_execs {
        // Neighbour: ±1 index in a random dimension.
        let d = rng.gen_range(0..dims.len());
        let mut next = cur.clone();
        let up = rng.gen_bool(0.5);
        if up && next[d] + 1 < dims[d] {
            next[d] += 1;
        } else if !up && next[d] > 0 {
            next[d] -= 1;
        } else {
            continue;
        }
        let next_val = eval(
            &next,
            &mut cache,
            &mut executed,
            &mut tuning_cost,
            &mut objective,
        );
        let accept = next_val <= cur_val
            || (next_val.is_finite()
                && rng.gen_bool(((cur_val - next_val) / temp).exp().clamp(0.0, 1.0)));
        if accept {
            cur = next;
            cur_val = next_val;
            if cur_val < best_val {
                best = cur.clone();
                best_val = cur_val;
            }
        }
        temp = (temp * cooling).max(1e-9);
    }

    let values: Vec<usize> = best
        .iter()
        .zip(&space.dims)
        .map(|(&i, d)| d.values[i])
        .collect();
    AnnealResult {
        best: decode_new(&values),
        best_value: best_val,
        executed,
        tuning_cost,
    }
}

/// Cyclic coordinate descent: sweep dimensions, trying every candidate of
/// one dimension while holding the others fixed; repeat until a full sweep
/// makes no progress. The greedy end of the strategy spectrum.
pub fn coordinate_descent_new(
    spec: &ProblemSpec,
    mut objective: impl FnMut(&TuningParams) -> f64,
    max_execs: usize,
) -> AnnealResult {
    let space = new_space(spec);
    let mut cache: HashMap<Vec<usize>, f64> = HashMap::new();
    let mut executed = 0usize;
    let mut tuning_cost = 0.0;

    let seed = TuningParams::seed(spec);
    let mut cur: Vec<usize> = encode_new(&seed)
        .iter()
        .zip(&space.dims)
        .map(|(&v, d)| d.nearest_index(v))
        .collect();

    let eval = |idx: &[usize],
                cache: &mut HashMap<Vec<usize>, f64>,
                executed: &mut usize,
                cost: &mut f64,
                objective: &mut dyn FnMut(&TuningParams) -> f64|
     -> f64 {
        let values: Vec<usize> = idx
            .iter()
            .zip(&space.dims)
            .map(|(&i, d)| d.values[i])
            .collect();
        let p = decode_new(&values);
        if !p.is_feasible(spec) {
            return f64::INFINITY;
        }
        if let Some(&v) = cache.get(&values) {
            return v;
        }
        let v = objective(&p);
        cache.insert(values, v);
        *executed += 1;
        *cost += v;
        v
    };

    let mut cur_val = eval(
        &cur,
        &mut cache,
        &mut executed,
        &mut tuning_cost,
        &mut objective,
    );
    loop {
        let mut improved = false;
        for d in 0..space.dims.len() {
            if executed >= max_execs {
                break;
            }
            let mut best_i = cur[d];
            for i in 0..space.dims[d].len() {
                if i == cur[d] {
                    continue;
                }
                if executed >= max_execs {
                    break;
                }
                let mut cand = cur.clone();
                cand[d] = i;
                let v = eval(
                    &cand,
                    &mut cache,
                    &mut executed,
                    &mut tuning_cost,
                    &mut objective,
                );
                if v < cur_val {
                    cur_val = v;
                    best_i = i;
                    improved = true;
                }
            }
            cur[d] = best_i;
        }
        if !improved || executed >= max_execs {
            break;
        }
    }

    let values: Vec<usize> = cur
        .iter()
        .zip(&space.dims)
        .map(|(&i, d)| d.values[i])
        .collect();
    AnnealResult {
        best: decode_new(&values),
        best_value: cur_val,
        executed,
        tuning_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ProblemSpec {
        ProblemSpec::cube(64, 4)
    }

    fn synthetic(p: &TuningParams) -> f64 {
        ((p.t as f64).log2() - 3.0).powi(2)
            + 0.2 * (p.w as f64 - 2.0).abs()
            + 0.05 * ((p.fy as f64).log2() - 2.0).abs()
    }

    #[test]
    fn annealing_improves_on_the_seed() {
        let s = spec();
        let seed_val = synthetic(&TuningParams::seed(&s));
        let res = anneal_new(&s, synthetic, 150, 42);
        assert!(res.best_value <= seed_val);
        assert!(res.best.is_feasible(&s));
        assert!(res.executed <= 150);
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let s = spec();
        let a = anneal_new(&s, synthetic, 80, 7);
        let b = anneal_new(&s, synthetic, 80, 7);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_value, b.best_value);
    }

    #[test]
    fn coordinate_descent_finds_the_t_optimum() {
        let s = spec();
        let res = coordinate_descent_new(&s, synthetic, 400);
        assert_eq!(
            res.best.t, 8,
            "coordinate sweep must locate T = 8: {:?}",
            res.best
        );
        assert!(res.best.is_feasible(&s));
    }

    #[test]
    fn budgets_are_respected() {
        let s = spec();
        let mut calls = 0usize;
        let res = anneal_new(
            &s,
            |p| {
                calls += 1;
                synthetic(p)
            },
            30,
            1,
        );
        assert_eq!(calls, res.executed);
        assert!(calls <= 30);
    }
}
