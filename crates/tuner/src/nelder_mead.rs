//! Nelder–Mead simplex minimization (Nelder & Mead 1965), as used by the
//! Active Harmony framework the paper tunes with (§4.3).
//!
//! The search runs in a continuous coordinate space; the caller's objective
//! performs the round-to-grid, feasibility penalty, and history caching
//! (§4.4 techniques 1–2), exactly mirroring the AH client/server split.

/// Standard NM coefficients.
const ALPHA: f64 = 1.0; // reflection
const GAMMA: f64 = 2.0; // expansion
const RHO: f64 = 0.5; // contraction
const SIGMA: f64 = 0.5; // shrink

/// Outcome of a Nelder–Mead run.
#[derive(Debug, Clone)]
pub struct NmResult {
    /// Best point found (continuous coordinates).
    pub best_point: Vec<f64>,
    /// Objective value at the best point.
    pub best_value: f64,
    /// Number of objective invocations.
    pub evals: usize,
    /// Number of NM iterations performed.
    pub iterations: usize,
}

/// Minimizes `f` starting from `initial` (a `(d+1) × d` simplex).
///
/// Terminates when the simplex collapses (every vertex rounds to the same
/// grid cell: max coordinate spread < 0.5) or when `max_evals` objective
/// calls have been spent.
pub fn minimize<F>(initial: Vec<Vec<f64>>, mut f: F, max_evals: usize) -> NmResult
where
    F: FnMut(&[f64]) -> f64,
{
    let d = initial
        .first()
        .expect("initial simplex must be non-empty")
        .len();
    assert!(d >= 1, "dimension must be ≥ 1");
    assert_eq!(initial.len(), d + 1, "simplex needs d+1 vertices");

    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        f(x)
    };

    // Vertices with values, kept sorted best-first.
    let mut simplex: Vec<(Vec<f64>, f64)> = initial
        .into_iter()
        .map(|p| {
            let v = eval(&p, &mut evals);
            (p, v)
        })
        .collect();
    simplex.sort_by(|a, b| a.1.total_cmp(&b.1));

    let mut iterations = 0usize;
    while evals < max_evals {
        iterations += 1;

        // Collapse test: all vertices in the same rounded cell.
        let collapsed = (0..d).all(|j| {
            let lo = simplex
                .iter()
                .map(|(p, _)| p[j])
                .fold(f64::INFINITY, f64::min);
            let hi = simplex
                .iter()
                .map(|(p, _)| p[j])
                .fold(f64::NEG_INFINITY, f64::max);
            hi - lo < 0.5
        });
        if collapsed {
            break;
        }

        // Centroid of all but the worst.
        let worst = simplex[d].0.clone();
        let mut centroid = vec![0.0; d];
        for (p, _) in &simplex[..d] {
            for j in 0..d {
                centroid[j] += p[j] / d as f64;
            }
        }

        let lerp = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
            a.iter().zip(b).map(|(&x, &y)| x + t * (y - x)).collect()
        };

        // Reflection.
        let reflected = lerp(&centroid, &worst, -ALPHA);
        let fr = eval(&reflected, &mut evals);
        let (f_best, f_second_worst, f_worst) = (simplex[0].1, simplex[d - 1].1, simplex[d].1);

        if fr < f_best {
            // Expansion.
            let expanded = lerp(&centroid, &worst, -GAMMA);
            let fe = eval(&expanded, &mut evals);
            simplex[d] = if fe < fr {
                (expanded, fe)
            } else {
                (reflected, fr)
            };
        } else if fr < f_second_worst {
            simplex[d] = (reflected, fr);
        } else {
            // Contraction (outside if the reflection improved on the worst,
            // inside otherwise).
            let contracted = if fr < f_worst {
                lerp(&centroid, &reflected, RHO)
            } else {
                lerp(&centroid, &worst, RHO)
            };
            let fc = eval(&contracted, &mut evals);
            if fc < f_worst.min(fr) {
                simplex[d] = (contracted, fc);
            } else {
                // Shrink toward the best vertex.
                let best = simplex[0].0.clone();
                for vertex in simplex.iter_mut().take(d + 1).skip(1) {
                    let p = lerp(&best, &vertex.0, SIGMA);
                    let v = eval(&p, &mut evals);
                    *vertex = (p, v);
                }
            }
        }
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
    }

    let (best_point, best_value) = simplex.swap_remove(0);
    NmResult {
        best_point,
        best_value,
        evals,
        iterations,
    }
}

/// Builds the §4.4 initial simplex: the default point plus `d` neighbours,
/// each shifted by one grid step in one dimension (away from the nearer
/// boundary).
pub fn initial_simplex(seed: &[f64], dim_lens: &[usize]) -> Vec<Vec<f64>> {
    assert_eq!(seed.len(), dim_lens.len());
    let d = seed.len();
    let mut simplex = Vec::with_capacity(d + 1);
    simplex.push(seed.to_vec());
    for j in 0..d {
        let mut p = seed.to_vec();
        let hi = (dim_lens[j] - 1) as f64;
        // Step one candidate index; flip direction at the upper boundary.
        p[j] = if seed[j] + 1.0 <= hi {
            seed[j] + 1.0
        } else {
            (seed[j] - 1.0).max(0.0)
        };
        simplex.push(p);
    }
    simplex
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_convex_quadratic() {
        // f(x) = Σ (x_i − target_i)²
        let target = [3.0, -2.0, 5.0];
        let f = |x: &[f64]| -> f64 { x.iter().zip(&target).map(|(a, b)| (a - b) * (a - b)).sum() };
        let init = vec![
            vec![0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let res = minimize(init, f, 500);
        assert!(res.best_value < 0.3, "value={}", res.best_value);
        for (a, b) in res.best_point.iter().zip(&target) {
            assert!((a - b).abs() < 0.5, "point={:?}", res.best_point);
        }
    }

    #[test]
    fn respects_eval_budget() {
        let mut calls = 0usize;
        let f = |x: &[f64]| x[0] * x[0] + x[1] * x[1];
        let counted = |x: &[f64]| {
            calls += 1;
            f(x)
        };
        let init = vec![vec![10.0, 10.0], vec![11.0, 10.0], vec![10.0, 11.0]];
        let res = minimize(init, counted, 20);
        assert!(
            res.evals <= 22,
            "NM may finish the in-flight step but not run away"
        );
        assert!(res.evals >= 3);
    }

    #[test]
    fn handles_infinite_penalties() {
        // Half the space is infeasible; NM must still find the feasible
        // minimum at x = 2.
        let f = |x: &[f64]| {
            if x[0] < 0.0 {
                f64::INFINITY
            } else {
                (x[0] - 2.0) * (x[0] - 2.0)
            }
        };
        let init = vec![vec![8.0], vec![9.0]];
        let res = minimize(init, f, 100);
        assert!(res.best_value < 0.5);
        assert!(res.best_point[0] >= 0.0);
    }

    #[test]
    fn one_dimensional_search_works() {
        let f = |x: &[f64]| (x[0] - 7.0).abs();
        let init = vec![vec![0.0], vec![1.0]];
        let res = minimize(init, f, 100);
        assert!(res.best_value < 1.0);
    }

    #[test]
    fn initial_simplex_has_d_plus_1_distinct_points() {
        let seed = vec![2.0, 0.0, 5.0];
        let lens = vec![6, 4, 6];
        let s = initial_simplex(&seed, &lens);
        assert_eq!(s.len(), 4);
        for i in 0..s.len() {
            for j in i + 1..s.len() {
                assert_ne!(s[i], s[j], "vertices {i} and {j} coincide");
            }
        }
        // At the top boundary the step flips downward.
        let seed = vec![5.0];
        let s = initial_simplex(&seed, &[6]);
        assert_eq!(s[1][0], 4.0);
    }

    #[test]
    fn collapse_terminates_early() {
        // Constant objective: the simplex shrinks until collapse.
        let f = |_: &[f64]| 1.0;
        let init = vec![vec![0.0, 0.0], vec![4.0, 0.0], vec![0.0, 4.0]];
        let res = minimize(init, f, 10_000);
        assert!(
            res.evals < 200,
            "should collapse quickly, used {}",
            res.evals
        );
    }
}
