//! Random search over the reduced parameter space — the baseline the paper
//! compares Nelder–Mead against (§5.3.1) and the sampler behind Figure 5's
//! 200-configuration distribution.

use crate::space::{decode_new, new_space};
use fft3d::{ProblemSpec, TuningParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws `n` *feasible* configurations uniformly from the reduced space.
///
/// Deterministic for a given `seed`, so Figure 5 regenerates identically.
pub fn random_configs(spec: &ProblemSpec, n: usize, seed: u64) -> Vec<TuningParams> {
    let space = new_space(spec);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut draws = 0usize;
    while out.len() < n {
        draws += 1;
        assert!(
            draws < n * 10_000,
            "feasible-configuration rejection sampling is not converging"
        );
        let values: Vec<usize> = space
            .dims
            .iter()
            .map(|d| d.values[rng.gen_range(0..d.len())])
            .collect();
        let p = decode_new(&values);
        if p.is_feasible(spec) {
            out.push(p);
        }
    }
    out
}

/// Runs random search: evaluates `n` feasible configurations and returns
/// `(best, best_value, all_values)`.
pub fn random_search(
    spec: &ProblemSpec,
    n: usize,
    seed: u64,
    mut objective: impl FnMut(&TuningParams) -> f64,
) -> (TuningParams, f64, Vec<f64>) {
    let configs = random_configs(spec, n, seed);
    let mut best = configs[0];
    let mut best_value = f64::INFINITY;
    let mut values = Vec::with_capacity(n);
    for c in configs {
        let v = objective(&c);
        values.push(v);
        if v < best_value {
            best_value = v;
            best = c;
        }
    }
    (best, best_value, values)
}

/// Percentile rank (0 = best) of `value` within `distribution`.
pub fn percentile_rank(value: f64, distribution: &[f64]) -> f64 {
    if distribution.is_empty() {
        return 0.0;
    }
    let better = distribution.iter().filter(|&&v| v < value).count();
    100.0 * better as f64 / distribution.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ProblemSpec {
        ProblemSpec::cube(64, 4)
    }

    #[test]
    fn configs_are_feasible_and_deterministic() {
        let s = spec();
        let a = random_configs(&s, 50, 7);
        let b = random_configs(&s, 50, 7);
        assert_eq!(a, b);
        for c in &a {
            assert!(c.is_feasible(&s), "{c:?}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let s = spec();
        assert_ne!(random_configs(&s, 20, 1), random_configs(&s, 20, 2));
    }

    #[test]
    fn search_returns_the_minimum() {
        let s = spec();
        let (best, best_value, values) =
            random_search(&s, 40, 3, |p| (p.t as f64 - 16.0).abs() + p.w as f64);
        assert_eq!(values.len(), 40);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(min, best_value);
        assert!(best.is_feasible(&s));
    }

    #[test]
    fn percentile_rank_basics() {
        let dist = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_rank(0.5, &dist), 0.0);
        assert_eq!(percentile_rank(2.5, &dist), 50.0);
        assert_eq!(percentile_rank(10.0, &dist), 100.0);
    }

    #[test]
    fn values_span_a_spread() {
        // The sampler should produce genuinely different configurations —
        // the premise of Figure 5.
        let s = spec();
        let configs = random_configs(&s, 30, 11);
        let distinct_t: std::collections::HashSet<usize> = configs.iter().map(|c| c.t).collect();
        assert!(distinct_t.len() >= 3);
    }
}
