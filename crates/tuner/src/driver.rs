//! The tuning driver: glues the discrete space, the Nelder–Mead search, and
//! the §4.4 acceleration techniques around a user-supplied objective.
//!
//! Technique map (paper §4.4 → here):
//! 1. *Penalize infeasible configurations* — the objective wrapper returns
//!    `+∞` without executing the target.
//! 2. *Reuse prior performance data* — a history cache keyed by the rounded
//!    configuration short-circuits repeats.
//! 3. *Skip parameter-independent code* — the objective the callers pass in
//!    simulates with `skip_fixed_steps = true` (FFTz/Transpose excluded).
//! 4. *Search-space reduction* — [`crate::space`] builds log-scale grids.
//! 5. *Constructed initial simplex* — seeded at the §4.4 default point.

use crate::nelder_mead::{initial_simplex, minimize};
use crate::space::{
    decode_new, decode_pencil, decode_th, encode_new, encode_pencil, new_space, pencil_space,
    th_space, Space,
};
use fft3d::{pencil_feasible, pencil_seed, PencilGrid, ProblemSpec, ThParams, TuningParams};
use std::collections::HashMap;

/// Outcome of one auto-tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult<P> {
    /// Best feasible configuration found.
    pub best: P,
    /// Objective value of `best` (seconds).
    pub best_value: f64,
    /// Total objective requests from the search (incl. cache hits and
    /// infeasible rejections).
    pub requests: usize,
    /// Configurations actually executed (what tuning time is made of).
    pub executed: usize,
    /// Requests answered from the history cache (§4.4 technique 2).
    pub cache_hits: usize,
    /// Requests rejected as infeasible without execution (technique 1).
    pub infeasible: usize,
    /// Σ execution time of all executed configurations — the simulated
    /// auto-tuning cost reported in Table 4.
    pub tuning_cost: f64,
    /// Executed history in order: (config, seconds).
    pub history: Vec<(P, f64)>,
}

struct CachedObjective<'a, P> {
    cache: HashMap<Vec<usize>, f64>,
    requests: usize,
    executed: usize,
    cache_hits: usize,
    infeasible: usize,
    tuning_cost: f64,
    history: Vec<(P, f64)>,
    run: Box<dyn FnMut(&P) -> f64 + 'a>,
}

impl<P: Clone> CachedObjective<'_, P> {
    fn eval(&mut self, key: Vec<usize>, decoded: P, feasible: bool) -> f64 {
        self.requests += 1;
        if !feasible {
            // Technique 1: report "the worst performance value (infinity)
            // immediately back … without executing the tuning target".
            self.infeasible += 1;
            return f64::INFINITY;
        }
        if let Some(&v) = self.cache.get(&key) {
            // Technique 2: history reuse.
            self.cache_hits += 1;
            return v;
        }
        let v = (self.run)(&decoded);
        self.cache.insert(key, v);
        self.executed += 1;
        self.tuning_cost += v;
        self.history.push((decoded, v));
        v
    }
}

fn run_search<P: Clone, D, Fe>(
    space: &Space,
    seed_values: Vec<usize>,
    decode: D,
    feasible: Fe,
    objective: Box<dyn FnMut(&P) -> f64 + '_>,
    max_evals: usize,
) -> TuneResult<P>
where
    D: Fn(&[usize]) -> P,
    Fe: Fn(&P) -> bool,
{
    let mut obj = CachedObjective {
        cache: HashMap::new(),
        requests: 0,
        executed: 0,
        cache_hits: 0,
        infeasible: 0,
        tuning_cost: 0.0,
        history: Vec::new(),
        run: objective,
    };

    let dim_lens: Vec<usize> = space.dims.iter().map(|d| d.len()).collect();

    // Nelder–Mead with restarts: when the simplex collapses early (common
    // on a coarse grid), re-seed a wider simplex at the incumbent best —
    // the same keep-searching behaviour Active Harmony's session exhibits
    // until its budget is spent.
    let mut start_coords = space.encode(&seed_values);
    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    for restart in 0..4 {
        if obj.requests >= max_evals {
            break;
        }
        let init = if restart == 0 {
            initial_simplex(&start_coords, &dim_lens)
        } else {
            wider_simplex(&start_coords, &dim_lens, restart + 1)
        };
        let budget = max_evals - obj.requests;
        let result = minimize(
            init,
            |x| {
                let values = space.decode(x);
                let p = decode(&values);
                let ok = feasible(&p);
                obj.eval(values, p, ok)
            },
            budget,
        );
        let improved = incumbent
            .as_ref()
            .map(|(_, v)| result.best_value < *v)
            .unwrap_or(true);
        if improved {
            incumbent = Some((result.best_point.clone(), result.best_value));
        }
        start_coords = incumbent.as_ref().expect("set above").0.clone();
    }
    let (best_point, best_value) = incumbent.expect("at least one NM run executes");

    // The NM best point is always feasible (infeasible points carry ∞ and
    // the seed is feasible), but guard against a fully-infeasible run.
    let best_values = space.decode(&best_point);
    let best = decode(&best_values);
    let (best, best_value) = if best_value.is_finite() {
        (best, best_value)
    } else {
        let (b, v) = obj
            .history
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .cloned()
            .expect("at least the seed must have executed");
        (b, v)
    };

    TuneResult {
        best,
        best_value,
        requests: obj.requests,
        executed: obj.executed,
        cache_hits: obj.cache_hits,
        infeasible: obj.infeasible,
        tuning_cost: obj.tuning_cost,
        history: obj.history,
    }
}

/// Builds a restart simplex around `seed` with `step`-sized index offsets,
/// alternating direction per dimension to explore a fresh orientation.
fn wider_simplex(seed: &[f64], dim_lens: &[usize], step: usize) -> Vec<Vec<f64>> {
    let d = seed.len();
    let mut simplex = Vec::with_capacity(d + 1);
    simplex.push(seed.to_vec());
    for j in 0..d {
        let mut p = seed.to_vec();
        let hi = (dim_lens[j] - 1) as f64;
        let s = step as f64;
        let dir = if j % 2 == 0 { s } else { -s };
        let moved = (p[j] + dir).clamp(0.0, hi);
        // Guarantee the vertex actually moved (degenerate dims stay put).
        p[j] = if (moved - p[j]).abs() < 0.5 {
            (p[j] - dir).clamp(0.0, hi)
        } else {
            moved
        };
        simplex.push(p);
    }
    simplex
}

/// Default objective-evaluation budget (NM requests, not executions).
pub const DEFAULT_MAX_EVALS: usize = 160;

/// Auto-tunes the ten NEW parameters for `spec` against `objective`
/// (seconds; lower is better). The objective is typically
/// `fft3d::fft3_simulated(..., skip_fixed_steps = true).time` or a real
/// measured run.
pub fn tune_new<'a>(
    spec: &ProblemSpec,
    objective: impl FnMut(&TuningParams) -> f64 + 'a,
    max_evals: usize,
) -> TuneResult<TuningParams> {
    let space = new_space(spec);
    let seed = TuningParams::seed(spec);
    let spec = *spec;
    run_search(
        &space,
        encode_new(&seed),
        decode_new,
        move |p: &TuningParams| p.is_feasible(&spec),
        Box::new(objective),
        max_evals,
    )
}

/// Auto-tunes the overlapped pencil backend: the eleven NEW knobs **plus
/// the process-grid shape** `(pr, pc)`, searched as a constrained
/// dimension over the divisor pairs of `spec.p`. The objective is
/// typically `fft3d::pencil_overlap_simulated_params` or a real measured
/// run; the seed is [`pencil_seed`] on the near-square grid.
pub fn tune_pencil<'a>(
    spec: &ProblemSpec,
    objective: impl FnMut(&(TuningParams, PencilGrid)) -> f64 + 'a,
    max_evals: usize,
) -> TuneResult<(TuningParams, PencilGrid)> {
    let space = pencil_space(spec);
    let seed_grid = PencilGrid::near_square(spec.p);
    let seed = pencil_seed(spec, seed_grid);
    let spec = *spec;
    run_search(
        &space,
        encode_pencil(&spec, &seed, seed_grid),
        move |values: &[usize]| decode_pencil(&spec, values),
        move |(p, g): &(TuningParams, PencilGrid)| pencil_feasible(&spec, *g, p),
        Box::new(objective),
        max_evals,
    )
}

/// Auto-tunes the three TH parameters (the comparator is tuned with the
/// same machinery "for fair comparison", §5.1).
pub fn tune_th<'a>(
    spec: &ProblemSpec,
    objective: impl FnMut(&ThParams) -> f64 + 'a,
    max_evals: usize,
) -> TuneResult<ThParams> {
    let space = th_space(spec);
    let seed = ThParams::seed(spec);
    let spec = *spec;
    run_search(
        &space,
        vec![seed.t, seed.w, seed.f as usize],
        decode_th,
        move |p: &ThParams| p.is_feasible(&spec),
        Box::new(objective),
        max_evals,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ProblemSpec {
        ProblemSpec::cube(64, 4)
    }

    /// A synthetic objective with a known optimum: prefers T = 16, W = 2,
    /// mid-range sub-tiles, moderate polling.
    fn synthetic(p: &TuningParams) -> f64 {
        let lt = (p.t as f64).log2();
        let lw = p.w as f64;
        let pen = |x: f64, c: f64| (x - c) * (x - c);
        1.0 + pen(lt, 4.0)
            + 0.3 * pen(lw, 2.0)
            + 0.05 * pen((p.px as f64).log2(), 2.0)
            + 0.05 * pen((p.fy as f64).log2(), 3.0)
    }

    #[test]
    fn tuner_improves_on_the_seed() {
        let s = spec();
        let seed_val = synthetic(&TuningParams::seed(&s));
        let res = tune_new(&s, synthetic, 200);
        assert!(res.best_value <= seed_val + 1e-12);
        assert!(res.best.is_feasible(&s));
        assert!(res.executed > 0);
    }

    #[test]
    fn tuner_finds_the_synthetic_optimum_region() {
        let s = spec();
        let res = tune_new(&s, synthetic, 400);
        assert!(
            (8..=32).contains(&res.best.t),
            "T should land near 16, got {}",
            res.best.t
        );
        assert!(
            (1..=3).contains(&res.best.w),
            "W near 2, got {}",
            res.best.w
        );
    }

    #[test]
    fn infeasible_configurations_are_never_executed() {
        let s = spec();
        let res = tune_new(
            &s,
            |p| {
                assert!(p.is_feasible(&s), "executed an infeasible config: {p:?}");
                synthetic(p)
            },
            300,
        );
        // The rectangular grid contains Pz > T corners, so NM must have
        // bounced off some.
        assert!(res.requests >= res.executed);
    }

    #[test]
    fn cache_prevents_re_execution() {
        let s = spec();
        let mut runs = 0usize;
        let res = tune_new(
            &s,
            |p| {
                runs += 1;
                synthetic(p)
            },
            300,
        );
        assert_eq!(runs, res.executed);
        assert_eq!(res.requests, res.executed + res.cache_hits + res.infeasible);
    }

    #[test]
    fn tuning_cost_sums_executed_times() {
        let s = spec();
        let res = tune_new(&s, synthetic, 150);
        let sum: f64 = res.history.iter().map(|(_, v)| v).sum();
        assert!((sum - res.tuning_cost).abs() < 1e-9);
    }

    #[test]
    fn pencil_tuning_searches_the_grid_shape() {
        // Synthetic objective that strongly prefers square-ish grids and
        // T near 4: the tuner must move the G dimension off bad shapes.
        let s = ProblemSpec::cube(64, 16);
        let res = tune_pencil(
            &s,
            |(p, g)| {
                let aspect = (g.pr as f64 / g.pc as f64).log2().abs();
                1.0 + aspect + 0.1 * ((p.t as f64).log2() - 2.0).abs()
            },
            300,
        );
        let (params, grid) = res.best;
        assert!(fft3d::pencil_feasible(&s, grid, &params));
        assert_eq!(grid, PencilGrid { pr: 4, pc: 4 }, "square grid wins");
        assert!(res.executed > 0);
    }

    #[test]
    fn pencil_tuning_on_the_cost_model_beats_or_matches_the_seed() {
        use simnet::model::umd_cluster;
        let s = ProblemSpec::cube(128, 8);
        let seed_grid = PencilGrid::near_square(8);
        let seed_cost = fft3d::pencil_overlap_simulated_params(
            umd_cluster(),
            s,
            seed_grid,
            &pencil_seed(&s, seed_grid),
        );
        let res = tune_pencil(
            &s,
            |(p, g)| fft3d::pencil_overlap_simulated_params(umd_cluster(), s, *g, p),
            60,
        );
        assert!(
            res.best_value <= seed_cost + 1e-12,
            "tuned {} vs seed {seed_cost}",
            res.best_value
        );
    }

    #[test]
    fn th_tuning_works_in_three_dims() {
        let s = spec();
        let res = tune_th(
            &s,
            |p| ((p.t as f64).log2() - 3.0).abs() + 0.1 * (p.w as f64 - 2.0).abs(),
            150,
        );
        assert!(res.best.is_feasible(&s));
        assert!(
            (4..=16).contains(&res.best.t),
            "T near 8, got {}",
            res.best.t
        );
        // Three dimensions need far fewer executions than ten.
        assert!(res.executed < 80);
    }
}
