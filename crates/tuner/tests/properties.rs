//! Property-based tests of the tuner: the search respects feasibility and
//! budgets, improves on the seed, and the space machinery is sound.

use fft3d::{ProblemSpec, TuningParams};
use proptest::prelude::*;
use tuner::driver::{tune_new, tune_th};
use tuner::random::random_configs;
use tuner::space::{new_space, DimSpec};

fn specs() -> impl Strategy<Value = ProblemSpec> {
    (
        prop::sample::select(vec![16usize, 24, 32, 64, 128, 256]),
        1usize..=32,
    )
        .prop_map(|(n, p)| ProblemSpec::cube(n, p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Log-scale dimensions contain their boundaries, are sorted, and stay
    /// within range.
    #[test]
    fn log_scale_dims_are_well_formed(lo in 1usize..64, span in 0usize..4000) {
        let hi = lo + span;
        let d = DimSpec::log_scale("X", lo, hi);
        prop_assert_eq!(*d.values.first().unwrap(), lo);
        prop_assert_eq!(*d.values.last().unwrap(), hi);
        prop_assert!(d.values.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(d.values.iter().all(|&v| v >= lo && v <= hi));
        // Log reduction: candidate count is logarithmic, not linear.
        prop_assert!(d.len() <= 2 + 64 - hi.leading_zeros() as usize + 1);
    }

    /// decode ∘ encode is the identity on every grid point of the NEW
    /// space.
    #[test]
    fn decode_encode_identity_on_grid(spec in specs(), seed: u64) {
        let space = new_space(&spec);
        // Draw a random grid point.
        let mut s = seed;
        let mut values = Vec::new();
        for d in &space.dims {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            values.push(d.values[(s >> 33) as usize % d.len()]);
        }
        let coords = space.encode(&values);
        prop_assert_eq!(space.decode(&coords), values);
    }

    /// Random configurations are feasible and within the reduced grid.
    #[test]
    fn random_configs_feasible(spec in specs(), seed: u64, n in 1usize..30) {
        for c in random_configs(&spec, n, seed) {
            prop_assert!(c.is_feasible(&spec), "{:?} for {:?}", c, spec);
        }
    }

    /// Tuning a synthetic objective never returns something worse than the
    /// seed, never executes an infeasible configuration, and respects the
    /// request budget.
    #[test]
    fn tuning_contract(spec in specs(), a in 1.0f64..6.0, b in 0.0f64..2.0) {
        let objective = move |p: &TuningParams| {
            ((p.t as f64).log2() - a).powi(2) + b * (p.w as f64 - 2.0).abs()
                + 0.01 * (p.fy as f64).log2()
        };
        let seed_val = objective(&TuningParams::seed(&spec));
        let max_requests = 120;
        let mut executed = 0usize;
        let res = tune_new(
            &spec,
            |p| {
                assert!(p.is_feasible(&spec), "executed infeasible {p:?}");
                executed += 1;
                objective(p)
            },
            max_requests,
        );
        prop_assert!(res.best_value <= seed_val + 1e-12);
        prop_assert!(res.best.is_feasible(&spec));
        prop_assert_eq!(res.executed, executed);
        // Budget holds up to the in-flight NM step.
        prop_assert!(res.requests <= max_requests + 2 * 11);
    }

    /// The TH tuner obeys the same contract on its 3-D space.
    #[test]
    fn th_tuning_contract(spec in specs(), a in 1.0f64..6.0) {
        let objective = move |p: &fft3d::ThParams| ((p.t as f64).log2() - a).abs() + p.w as f64 * 0.05;
        let res = tune_th(&spec, objective, 100);
        prop_assert!(res.best.is_feasible(&spec));
        prop_assert!(res.executed >= 1);
        prop_assert_eq!(res.requests, res.executed + res.cache_hits + res.infeasible);
    }
}
