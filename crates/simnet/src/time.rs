//! Virtual time: fixed-point nanoseconds.
//!
//! All simulator arithmetic uses integer nanoseconds so runs are exactly
//! reproducible — no accumulation-order-dependent floating-point drift.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs from (possibly fractional) seconds; negative inputs clamp
    /// to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimTime(0)
        } else {
            SimTime((s * 1e9).round() as u64)
        }
    }

    /// Nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        let t = SimTime::from_secs_f64(1.5);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(30);
        assert_eq!(a + b, SimTime::from_nanos(130));
        assert_eq!(a - b, SimTime::from_nanos(70));
        assert_eq!(a * 3, SimTime::from_nanos(300));
        assert_eq!(a / 4, SimTime::from_nanos(25));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimTime::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_micros(12)), "12.000µs");
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.25)), "1.250s");
    }

    #[test]
    fn sum_of_spans() {
        let total: SimTime = [1u64, 2, 3].iter().map(|&n| SimTime::from_nanos(n)).sum();
        assert_eq!(total, SimTime::from_nanos(6));
    }
}
