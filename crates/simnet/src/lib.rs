//! # simnet — a discrete-event cluster simulator for overlap studies
//!
//! Substitute for the paper's two physical machines (UMD-Cluster and
//! Hopper, §5.1). Rank threads execute the *actual algorithm control flow*
//! (tiles, windows, poll placement) while compute and communication charge
//! modeled virtual time:
//!
//! * [`model::MachineModel`] — FFT flop costs with L2 effects, pack/unpack
//!   rates sensitive to sub-tile cache residency and stride (what makes
//!   `Px, Pz, Uy, Uz` tunable), transpose rates, `MPI_Test` cost.
//! * [`model::NetModel`] — α–β rounds with topology contention and
//!   concurrent-window bandwidth sharing (what makes `T` and `W` tunable).
//! * [`engine::Engine`] — a conservative virtual-time scheduler: only the
//!   minimum-clock rank interacts with shared state, so runs are exactly
//!   reproducible.
//! * [`proc::SimRank`] — the per-rank API: `compute`, `post_alltoall`,
//!   `compute_with_polls` (manual progression), `wait`,
//!   `blocking_alltoall`, `barrier`.
//!
//! ```
//! use simnet::{run_sim, model::umd_cluster};
//!
//! // Four ranks overlap a 1 MiB-per-peer alltoall with 30 ms of compute.
//! let finish = run_sim(umd_cluster(), 4, |sim| {
//!     let op = sim.post_alltoall(1 << 20);
//!     sim.compute_with_polls(0.030, 64, &[op]);
//!     sim.wait(op);
//!     sim.now()
//! });
//! // The ≈21 ms exchange hides almost entirely behind the compute.
//! assert!(finish[0].as_secs_f64() < 0.035);
//! ```

pub mod engine;
pub mod model;
pub mod proc;
pub mod time;

pub use model::Platform;
pub use proc::{OpId, PlanId, PollRecord, SimRank};
pub use time::SimTime;

use engine::Engine;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// Runs `f` on `size` simulated ranks of `platform`, returning results in
/// rank order. Panics in any rank propagate after all ranks unwind.
pub fn run_sim<F, R>(platform: Platform, size: usize, f: F) -> Vec<R>
where
    F: Fn(&mut SimRank) -> R + Send + Sync,
    R: Send,
{
    let engine = Engine::new(size);
    let platform = Arc::new(platform);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..size)
            .map(|rank| {
                let engine = engine.clone();
                let platform = platform.clone();
                let f = &f;
                s.spawn(move || {
                    let mut sim = SimRank::new(engine.clone(), platform, rank);
                    match std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut sim))) {
                        Ok(v) => {
                            sim.finish();
                            Ok(v)
                        }
                        Err(e) => {
                            engine.abort();
                            Err(e)
                        }
                    }
                })
            })
            .collect();
        let mut results = Vec::with_capacity(size);
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join().expect("rank thread panics are caught inside") {
                Ok(v) => results.push(v),
                Err(e) => {
                    fn is_secondary(p: &Box<dyn std::any::Any + Send>) -> bool {
                        let msg = p
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| p.downcast_ref::<&str>().copied());
                        msg.map(|s| s.contains("peer rank panicked"))
                            .unwrap_or(false)
                    }
                    match &first_panic {
                        None => first_panic = Some(e),
                        Some(prev) => {
                            if is_secondary(prev) && !is_secondary(&e) {
                                first_panic = Some(e);
                            }
                        }
                    }
                }
            }
        }
        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use model::hopper;

    #[test]
    fn results_come_back_in_rank_order() {
        let out = run_sim(hopper(), 5, |sim| sim.rank() * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        run_sim(hopper(), 3, |sim| {
            if sim.rank() == 2 {
                panic!("boom");
            }
            sim.barrier();
        });
    }

    #[test]
    fn compute_only_ranks_never_interact() {
        let out = run_sim(hopper(), 2, |sim| {
            sim.compute(0.5);
            sim.now().as_secs_f64()
        });
        assert!(out.iter().all(|&t| (t - 0.5).abs() < 1e-9));
    }
}
