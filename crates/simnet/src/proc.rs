//! Per-rank simulation handle: virtual compute, collective posts, polls,
//! and waits.
//!
//! A [`SimRank`] owns everything rank-local: its virtual clock and the
//! progression state machines of its in-flight all-to-alls. The manual-
//! progression model lives here:
//!
//! * a collective becomes *ready* when every rank has posted it (the
//!   engine's one piece of shared state);
//! * after readiness, the schedule's rounds execute one at a time, and a
//!   round may **start only at a progression opportunity** — an
//!   `MPI_Test` poll ([`SimRank::compute_with_polls`]) or a blocking
//!   [`SimRank::wait`], which progresses continuously;
//! * each poll costs the platform's `t_test`, so polling too often burns
//!   compute while polling too rarely leaves rounds stalled between polls —
//!   the §3.3 trade-off the `F*` parameters tune.

use crate::engine::{Engine, OpSeq, ReadyInfo};
use crate::model::{A2aShape, Platform};
use crate::time::SimTime;
use std::collections::HashMap;
use std::sync::Arc;

/// Handle to an in-flight non-blocking all-to-all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpId(OpSeq);

/// Handle to a persistent all-to-all plan created by
/// [`SimRank::alltoall_init`]: the setup-once half of MPI's
/// `MPI_Alltoall_init` / `MPI_Start` split. The schedule shape is resolved
/// and the post overhead charged at init; every subsequent
/// [`SimRank::start`] begins an execution with **zero setup cost**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanId(usize);

#[derive(Debug, Clone, Copy)]
struct A2aPlan {
    shape: A2aShape,
    group: usize,
    executions: u64,
}

#[derive(Debug, Clone, Copy)]
enum Ready {
    Unknown,
    /// Cannot be ready before this time (peers' clock lower bound); polls
    /// earlier than it skip the engine round-trip entirely.
    Bound(SimTime),
    Known(SimTime),
}

#[derive(Debug)]
struct LocalOp {
    shape: A2aShape,
    /// Participant count the round model uses (≤ `size`; subgroup
    /// collectives of symmetric process grids use their group size).
    group: usize,
    ready: Ready,
    rounds_done: u32,
    inflight_end: Option<SimTime>,
    completed: Option<SimTime>,
}

/// One recorded `MPI_Test` call, for tracing consumers: the virtual span
/// the poll occupied and the request state it observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollRecord {
    /// The polled operation.
    pub op: OpId,
    /// Virtual time the poll started.
    pub start: SimTime,
    /// Virtual time the poll ended (`start` plus the platform's `t_test`).
    pub end: SimTime,
    /// Whether the poll observed a completed request.
    pub completed: bool,
}

/// A simulated rank: the object the 3-D FFT's simulated backend drives.
pub struct SimRank {
    engine: Arc<Engine>,
    platform: Arc<Platform>,
    rank: usize,
    size: usize,
    clock: SimTime,
    next_seq: OpSeq,
    ops: HashMap<OpSeq, LocalOp>,
    /// Persistent plans created by [`Self::alltoall_init`].
    plans: Vec<A2aPlan>,
    /// Times this rank paid the per-collective setup charge
    /// (`post_overhead`). Persistent executions after init never bump it —
    /// the counter is the observable "zero per-execution setup" proof.
    setup_charges: u64,
    /// Posted-but-incomplete all-to-alls: concurrent windows share this
    /// rank's link bandwidth.
    active: u32,
    test_calls: u64,
    /// When tracing, every `test()` appends a [`PollRecord`] here.
    poll_log: Option<Vec<PollRecord>>,
    /// Deterministic per-rank noise state (xorshift64*).
    noise_state: u64,
}

impl SimRank {
    pub(crate) fn new(engine: Arc<Engine>, platform: Arc<Platform>, rank: usize) -> Self {
        let size = engine.size();
        SimRank {
            engine,
            platform,
            rank,
            size,
            clock: SimTime::ZERO,
            next_seq: 0,
            ops: HashMap::new(),
            plans: Vec::new(),
            setup_charges: 0,
            active: 0,
            test_calls: 0,
            poll_log: None,
            noise_state: 0x9e37_79b9_7f4a_7c15 ^ (rank as u64).wrapping_mul(0xda94_2042_e4dd_58b5),
        }
    }

    /// Fault-plan multiplier on this rank's compute phases (1.0 for
    /// non-stragglers).
    #[inline]
    fn compute_factor(&self) -> f64 {
        self.platform.faults.compute_factor(self.rank)
    }

    /// Duration of one round of `op`'s schedule at the current window
    /// occupancy, stretched by the fault plan's link degradation.
    fn faulted_round_time(&self, group: usize, shape: A2aShape) -> SimTime {
        let rt = self.platform.net.round_time(group, shape, self.active);
        let lf = self.platform.faults.link_factor();
        if lf > 1.0 {
            SimTime::from_secs_f64(rt.as_secs_f64() * lf)
        } else {
            rt
        }
    }

    /// Next noise factor in `[1 − jitter, 1 + jitter]` (1.0 when noise is
    /// disabled). Deterministic per rank and draw index.
    fn noise_factor(&mut self) -> f64 {
        let j = self.platform.jitter;
        // mpicheck:allow(SL012): 0.0 is the exact disabled-jitter sentinel
        if j == 0.0 {
            return 1.0;
        }
        let mut x = self.noise_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.noise_state = x;
        let u = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + j * (2.0 * u - 1.0)
    }

    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the simulation.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The platform model this simulation runs on.
    #[inline]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Total `MPI_Test` calls made so far (the paper's Test accounting).
    #[inline]
    pub fn test_calls(&self) -> u64 {
        self.test_calls
    }

    /// Number of posted, incomplete all-to-alls.
    #[inline]
    pub fn active_ops(&self) -> u32 {
        self.active
    }

    /// Spends `secs` of pure computation (no progression opportunities).
    /// Subject to the platform's execution noise and the fault plan's
    /// straggler factor for this rank.
    pub fn compute(&mut self, secs: f64) {
        let f = self.noise_factor() * self.compute_factor();
        self.clock += SimTime::from_secs_f64(secs * f);
    }

    /// Posts a non-blocking all-to-all moving `bytes_per_peer` to every
    /// peer. Charges the post overhead and makes one free progression
    /// attempt (real NBC implementations kick round 0 at post time).
    pub fn post_alltoall(&mut self, bytes_per_peer: u64) -> OpId {
        self.post_alltoall_in_group(self.size, bytes_per_peer)
    }

    /// Posts a non-blocking all-to-all among a *subgroup* of `group` ranks
    /// (e.g. the row/column communicators of a pencil decomposition). The
    /// rendezvous is still global — valid for the symmetric schedules this
    /// simulator targets, where every subgroup runs the same program — but
    /// the round structure and bandwidth model use the subgroup size.
    pub fn post_alltoall_in_group(&mut self, group: usize, bytes_per_peer: u64) -> OpId {
        assert!(
            group >= 1 && group <= self.size,
            "group must be within the world"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.clock += self.platform.net.post_overhead(group);
        self.setup_charges += 1;
        self.engine.post(self.rank, self.clock, seq);
        let shape = self.platform.net.shape(group, bytes_per_peer);
        self.launch(seq, shape, group);
        OpId(seq)
    }

    /// Inserts the round state machine for a freshly posted collective and
    /// makes the free progression attempt every post gets.
    fn launch(&mut self, seq: OpSeq, shape: A2aShape, group: usize) {
        self.ops.insert(
            seq,
            LocalOp {
                shape,
                group,
                ready: Ready::Unknown,
                rounds_done: 0,
                inflight_end: None,
                completed: None,
            },
        );
        self.active += 1;
        self.progress(seq);
    }

    /// Creates a persistent all-to-all plan over the whole world (the
    /// `MPI_Alltoall_init` half of the persistent-collective split). The
    /// schedule shape is resolved and `post_overhead` charged **now, once**;
    /// every later [`Self::start`] of this plan posts with zero setup cost.
    pub fn alltoall_init(&mut self, bytes_per_peer: u64) -> PlanId {
        self.alltoall_init_in_group(self.size, bytes_per_peer)
    }

    /// Subgroup variant of [`Self::alltoall_init`], mirroring
    /// [`Self::post_alltoall_in_group`].
    pub fn alltoall_init_in_group(&mut self, group: usize, bytes_per_peer: u64) -> PlanId {
        assert!(
            group >= 1 && group <= self.size,
            "group must be within the world"
        );
        self.clock += self.platform.net.post_overhead(group);
        self.setup_charges += 1;
        let shape = self.platform.net.shape(group, bytes_per_peer);
        self.plans.push(A2aPlan {
            shape,
            group,
            executions: 0,
        });
        PlanId(self.plans.len() - 1)
    }

    /// Starts one execution of a persistent plan (`MPI_Start`): the
    /// rendezvous is posted and round 0 gets its free progression attempt,
    /// but no `post_overhead` is charged — setup was paid at init. Returns
    /// an [`OpId`] driven with the same `test`/`wait` calls as an ad-hoc
    /// post.
    pub fn start(&mut self, plan: PlanId) -> OpId {
        let p = {
            let p = self
                .plans
                .get_mut(plan.0)
                .expect("start on unknown persistent plan");
            p.executions += 1;
            *p
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.engine.post(self.rank, self.clock, seq);
        self.launch(seq, p.shape, p.group);
        OpId(seq)
    }

    /// Executions started so far on `plan`.
    pub fn plan_executions(&self, plan: PlanId) -> u64 {
        self.plans[plan.0].executions
    }

    /// Times this rank paid a collective setup charge (`post_overhead`).
    /// Ad-hoc posts and `alltoall_init` each bump it once; persistent
    /// [`Self::start`] never does.
    #[inline]
    pub fn setup_charges(&self) -> u64 {
        self.setup_charges
    }

    /// One `MPI_Test` on `op`: charges `t_test` and progresses the round
    /// pipeline. Returns `true` when the collective has completed.
    pub fn test(&mut self, op: OpId) -> bool {
        self.test_calls += 1;
        let start = self.clock;
        self.clock += SimTime::from_secs_f64(self.platform.machine.t_test);
        self.progress(op.0);
        let completed = self.ops[&op.0].completed.is_some();
        if let Some(log) = &mut self.poll_log {
            log.push(PollRecord {
                op,
                start,
                end: self.clock,
                completed,
            });
        }
        completed
    }

    /// Starts recording every subsequent `MPI_Test` call into the poll log
    /// (drained with [`Self::take_poll_log`]). Off by default: the log
    /// costs one `Vec` push per poll, which tracing consumers opt into.
    pub fn enable_poll_log(&mut self) {
        if self.poll_log.is_none() {
            self.poll_log = Some(Vec::new());
        }
    }

    /// Takes the polls recorded since the last drain. Empty (and free) when
    /// the log was never enabled.
    pub fn take_poll_log(&mut self) -> Vec<PollRecord> {
        match &mut self.poll_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// `true` once `op` has been observed complete (no progression attempt).
    pub fn is_complete(&self, op: OpId) -> bool {
        self.ops[&op.0].completed.is_some()
    }

    /// Executes a compute phase of `secs` with `polls` evenly spaced
    /// progression opportunities, each testing every op in `ops` (the
    /// paper's Algorithms 2–3: "call `MPI_Test` on the `W` previous tiles
    /// `F` times in total during this algorithm").
    ///
    /// Returns the `t_test` overhead charged, so callers can account
    /// compute and Test time separately (Figure 8's breakdown).
    pub fn compute_with_polls(&mut self, secs: f64, polls: u32, ops: &[OpId]) -> SimTime {
        let total = SimTime::from_secs_f64(secs * self.noise_factor() * self.compute_factor());
        if polls == 0 || ops.is_empty() {
            self.clock += total;
            return SimTime::ZERO;
        }
        let start_tests = self.test_calls;
        let slice = total / (polls as u64 + 1);
        for _ in 0..polls {
            self.clock += slice;
            for &op in ops {
                self.test(op);
            }
        }
        // Remainder of the compute after the last poll.
        self.clock += total - slice * polls as u64;
        SimTime::from_secs_f64(
            (self.test_calls - start_tests) as f64 * self.platform.machine.t_test,
        )
    }

    /// `MPI_Wait`: progresses continuously until `op` completes; advances
    /// the clock to the completion time and returns it.
    pub fn wait(&mut self, op: OpId) -> SimTime {
        let seq = op.0;
        if let Some(t) = self.ops[&seq].completed {
            return t;
        }
        let ready = match self.ops[&seq].ready {
            Ready::Known(t) => t,
            _ => {
                let t = self.engine.block_on_ready(self.rank, self.clock, seq);
                self.ops.get_mut(&seq).expect("op exists").ready = Ready::Known(t);
                t
            }
        };
        // Remaining rounds run back to back; bandwidth share is sampled per
        // round because other ops may still be active.
        let (mut t, mut rd, inflight, rounds) = {
            let o = &self.ops[&seq];
            (
                self.clock.max(ready),
                o.rounds_done,
                o.inflight_end,
                o.shape.rounds,
            )
        };
        if let Some(e) = inflight {
            t = t.max(e);
            rd += 1;
        }
        while rd < rounds {
            let o = &self.ops[&seq];
            let rt = self.faulted_round_time(o.group, o.shape);
            t += rt;
            rd += 1;
        }
        {
            let o = self.ops.get_mut(&seq).expect("op exists");
            o.rounds_done = rd;
            o.inflight_end = None;
            o.completed = Some(t);
        }
        self.active -= 1;
        self.clock = self.clock.max(t);
        t
    }

    /// Blocking all-to-all (the FFTW baseline's `MPI_Alltoall`): rendezvous
    /// with all ranks, then the full exchange at blocking-collective
    /// efficiency. Returns `(ready_time, completion_time)`.
    pub fn blocking_alltoall(&mut self, bytes_per_peer: u64) -> (SimTime, SimTime) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.clock += self.platform.net.post_overhead(self.size);
        self.setup_charges += 1;
        self.engine.post(self.rank, self.clock, seq);
        let ready = self.engine.block_on_ready(self.rank, self.clock, seq);
        let end = ready
            + self
                .platform
                .net
                .blocking_duration(self.size, bytes_per_peer);
        self.clock = end;
        (ready, end)
    }

    /// Barrier: rendezvous plus a log-round release cost.
    pub fn barrier(&mut self) {
        let _ = self.blocking_alltoall(0);
    }

    /// Advances round state for `seq` at the current clock; the heart of
    /// the manual-progression model.
    fn progress(&mut self, seq: OpSeq) {
        let clock = self.clock;
        // Resolve readiness, using the cached lower bound to avoid engine
        // round-trips for polls that cannot possibly observe readiness.
        let ready = {
            let o = self.ops.get_mut(&seq).expect("progress on unknown op");
            if o.completed.is_some() {
                return;
            }
            match o.ready {
                Ready::Known(t) => Some(t),
                Ready::Bound(b) if clock < b => None,
                _ => None, // needs an engine query below
            }
        };
        let ready = match ready {
            Some(t) => t,
            None => {
                let o = &self.ops[&seq];
                if let Ready::Bound(b) = o.ready {
                    if clock < b {
                        return;
                    }
                }
                match self.engine.query(self.rank, clock, seq) {
                    ReadyInfo::Ready(t) => {
                        self.ops.get_mut(&seq).expect("op exists").ready = Ready::Known(t);
                        t
                    }
                    ReadyInfo::NotBefore(b) => {
                        self.ops.get_mut(&seq).expect("op exists").ready = Ready::Bound(b);
                        return;
                    }
                }
            }
        };
        if clock < ready {
            return;
        }
        // Zero-round collectives (p = 1) complete at readiness.
        let (rounds, inflight, rounds_done) = {
            let o = &self.ops[&seq];
            (o.shape.rounds, o.inflight_end, o.rounds_done)
        };
        if rounds == 0 {
            self.ops.get_mut(&seq).expect("op exists").completed = Some(ready);
            self.active -= 1;
            return;
        }
        let mut rd = rounds_done;
        let mut last_end = None;
        if let Some(e) = inflight {
            if e <= clock {
                rd += 1;
                last_end = Some(e);
            } else {
                return; // round still in flight; nothing to start
            }
        }
        if rd == rounds {
            let o = self.ops.get_mut(&seq).expect("op exists");
            o.rounds_done = rd;
            o.inflight_end = None;
            o.completed = Some(last_end.expect("final round had an end"));
            self.active -= 1;
            return;
        }
        // Start the next round at this progression opportunity.
        let rt = {
            let o = &self.ops[&seq];
            self.faulted_round_time(o.group, o.shape)
        };
        let o = self.ops.get_mut(&seq).expect("op exists");
        o.rounds_done = rd;
        o.inflight_end = Some(clock.max(ready) + rt);
    }

    /// Called by the launcher when the rank function returns.
    pub(crate) fn finish(&mut self) {
        self.engine.done(self.rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::umd_cluster;
    use crate::run_sim;

    #[test]
    fn single_rank_alltoall_completes_at_post() {
        let times = run_sim(umd_cluster(), 1, |sim| {
            let op = sim.post_alltoall(1 << 20);
            sim.wait(op);
            sim.now()
        });
        // p = 1: zero rounds, so only the post overhead elapses.
        assert!(times[0] < SimTime::from_micros(10));
    }

    #[test]
    fn wait_without_polls_pays_nearly_full_serial_time() {
        let p = 4;
        let bytes = 1 << 20;
        let times = run_sim(umd_cluster(), p, move |sim| {
            let op = sim.post_alltoall(bytes);
            sim.compute(0.01); // compute with zero polls: no progression
            let end = sim.wait(op);
            (end, sim.now())
        });
        let plat = umd_cluster();
        let shape = plat.net.shape(p, bytes);
        let rt = plat.net.round_time(p, shape, 1);
        for (end, now) in &times {
            assert_eq!(end, now);
            // At most the round kicked at post time (only the last poster is
            // "ready" then) overlaps the compute; the rest serialize inside
            // wait.
            let lower = SimTime::from_secs_f64(0.01) + rt * (shape.rounds as u64 - 1);
            let upper =
                SimTime::from_secs_f64(0.01) + rt * shape.rounds as u64 + SimTime::from_millis(1);
            assert!(*end >= lower, "end={end} lower={lower}");
            assert!(*end <= upper, "end={end} upper={upper}");
        }
    }

    #[test]
    fn ample_polling_overlaps_communication_with_compute() {
        // With enough evenly spaced polls, rounds pipeline behind compute:
        // the post→wait span is close to max(compute, comm) instead of
        // compute + comm.
        let p = 4;
        let bytes = 1 << 20;
        let plat = umd_cluster();
        let comm = plat.net.blocking_duration(p, bytes).as_secs_f64();
        let compute = comm * 1.5; // compute-heavy: overlap can hide comm fully
        let times = run_sim(umd_cluster(), p, move |sim| {
            let op = sim.post_alltoall(bytes);
            sim.compute_with_polls(compute, 200, &[op]);
            sim.wait(op);
            sim.now().as_secs_f64()
        });
        for &t in &times {
            assert!(
                t < compute * 1.15,
                "overlapped time {t:.4} should be close to compute {compute:.4}"
            );
            assert!(t >= compute);
        }
    }

    #[test]
    fn too_few_polls_stall_rounds() {
        let p = 8;
        let bytes = 1 << 20;
        let plat = umd_cluster();
        let comm = plat.net.blocking_duration(p, bytes).as_secs_f64();
        let compute = comm * 1.5;
        let run_with_polls = |polls: u32| {
            run_sim(umd_cluster(), p, move |sim| {
                let op = sim.post_alltoall(bytes);
                sim.compute_with_polls(compute, polls, &[op]);
                sim.wait(op);
                sim.now().as_secs_f64()
            })[0]
        };
        let sparse = run_with_polls(2);
        let ample = run_with_polls(64);
        assert!(
            sparse > ample * 1.1,
            "2 polls ({sparse:.4}s) must be slower than 64 polls ({ample:.4}s)"
        );
    }

    #[test]
    fn excessive_polling_costs_test_overhead() {
        let p = 4;
        let bytes = 64 * 1024;
        let times_few = run_sim(umd_cluster(), p, move |sim| {
            let op = sim.post_alltoall(bytes);
            sim.compute_with_polls(0.005, 32, &[op]);
            sim.wait(op);
            sim.now().as_secs_f64()
        });
        let times_many = run_sim(umd_cluster(), p, move |sim| {
            let op = sim.post_alltoall(bytes);
            sim.compute_with_polls(0.005, 50_000, &[op]);
            sim.wait(op);
            sim.now().as_secs_f64()
        });
        assert!(
            times_many[0] > times_few[0] + 0.02,
            "50k tests at ~0.9µs each must add visible overhead: few={} many={}",
            times_few[0],
            times_many[0]
        );
    }

    #[test]
    fn poll_log_records_every_test_span() {
        let p = 4;
        let bytes = 1 << 18;
        let logs = run_sim(umd_cluster(), p, move |sim| {
            sim.enable_poll_log();
            let op = sim.post_alltoall(bytes);
            sim.compute_with_polls(0.005, 16, &[op]);
            sim.wait(op);
            (sim.take_poll_log(), sim.test_calls())
        });
        for (log, calls) in &logs {
            assert_eq!(log.len() as u64, *calls);
            // Virtual timestamps are monotone and each span charges t_test.
            for w in log.windows(2) {
                assert!(w[0].end <= w[1].start);
            }
            for rec in log {
                assert!(rec.end > rec.start);
            }
            // The completion transition is monotone: once observed complete,
            // later polls of the same op stay complete.
            let mut seen_complete = false;
            for rec in log {
                if seen_complete {
                    assert!(rec.completed);
                }
                seen_complete |= rec.completed;
            }
        }
    }

    #[test]
    fn poll_log_is_empty_when_disabled() {
        let logs = run_sim(umd_cluster(), 2, |sim| {
            let op = sim.post_alltoall(1024);
            sim.compute_with_polls(0.001, 4, &[op]);
            sim.wait(op);
            sim.take_poll_log()
        });
        assert!(logs.iter().all(|l| l.is_empty()));
    }

    #[test]
    fn barrier_aligns_clocks() {
        let times = run_sim(umd_cluster(), 4, |sim| {
            sim.compute(0.001 * (sim.rank() as f64 + 1.0));
            sim.barrier();
            sim.now()
        });
        assert!(times.iter().all(|&t| t == times[0]));
        assert!(times[0] >= SimTime::from_secs_f64(0.004));
    }

    #[test]
    fn runs_are_deterministic() {
        let go = || {
            run_sim(umd_cluster(), 6, |sim| {
                let op = sim.post_alltoall(123_456);
                sim.compute_with_polls(0.003, 17, &[op]);
                sim.wait(op);
                let op2 = sim.post_alltoall(7_777);
                sim.compute_with_polls(0.001, 3, &[op2]);
                sim.wait(op2);
                sim.now()
            })
        };
        let a = go();
        for _ in 0..5 {
            assert_eq!(go(), a);
        }
    }

    #[test]
    fn straggler_slows_itself_and_starves_its_peers() {
        // Small messages: compute dominates, so the straggler's 4x compute
        // stretch shows through undiluted by round time.
        let p = 4;
        let bytes = 1 << 16;
        let body = |sim: &mut SimRank| {
            sim.compute(0.01);
            let op = sim.post_alltoall(bytes);
            sim.compute_with_polls(0.005, 50, &[op]);
            sim.wait(op);
            sim.now()
        };
        let healthy = run_sim(umd_cluster(), p, move |sim| body(sim));
        let faulted = run_sim(umd_cluster().with_straggler(2, 3.0), p, move |sim| {
            body(sim)
        });
        // The straggler's own compute stretches 4x (0.015s → 0.06s)...
        assert!(
            faulted[2] > healthy[2] + SimTime::from_secs_f64(0.03),
            "straggler: {} vs healthy {}",
            faulted[2],
            healthy[2]
        );
        // ...and its peers finish later too: the collective cannot become
        // ready before the slowest poster arrives.
        for r in [0, 1, 3] {
            assert!(
                faulted[r] > healthy[r],
                "rank {r}: {} !> {}",
                faulted[r],
                healthy[r]
            );
        }
    }

    #[test]
    fn degraded_links_stretch_the_exchange() {
        let p = 4;
        let bytes = 1 << 20;
        let body = |sim: &mut SimRank| {
            let op = sim.post_alltoall(bytes);
            sim.wait(op)
        };
        let healthy = run_sim(umd_cluster(), p, move |sim| body(sim))[0];
        let degraded = run_sim(umd_cluster().with_degraded_links(2.0), p, move |sim| {
            body(sim)
        })[0];
        // Round time is α + bytes/bw, all scaled by 2: the wait-dominated
        // exchange takes nearly twice as long.
        let ratio = degraded.as_secs_f64() / healthy.as_secs_f64();
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn faulted_runs_stay_deterministic() {
        let plat = || {
            umd_cluster()
                .with_straggler(1, 2.5)
                .with_degraded_links(1.7)
        };
        let go = || {
            run_sim(plat(), 4, |sim| {
                let op = sim.post_alltoall(200_000);
                sim.compute_with_polls(0.004, 13, &[op]);
                sim.wait(op);
                sim.now()
            })
        };
        let a = go();
        assert_eq!(go(), a);
    }

    #[test]
    fn persistent_start_skips_the_setup_charge() {
        let p = 4;
        let bytes = 1 << 20;
        let reps = 5u64;
        // Ad-hoc: every post pays post_overhead. Persistent: only init does.
        let adhoc = run_sim(umd_cluster(), p, move |sim| {
            for _ in 0..reps {
                let op = sim.post_alltoall(bytes);
                sim.wait(op);
            }
            (sim.now(), sim.setup_charges())
        });
        let persistent = run_sim(umd_cluster(), p, move |sim| {
            let plan = sim.alltoall_init(bytes);
            for _ in 0..reps {
                let op = sim.start(plan);
                sim.wait(op);
            }
            (sim.now(), sim.setup_charges(), sim.plan_executions(plan))
        });
        let overhead = umd_cluster().net.post_overhead(p);
        for r in 0..p {
            let (t_adhoc, c_adhoc) = adhoc[r];
            let (t_pers, c_pers, execs) = persistent[r];
            assert_eq!(c_adhoc, reps, "ad-hoc pays setup per execution");
            assert_eq!(c_pers, 1, "persistent pays setup exactly once");
            assert_eq!(execs, reps);
            // The saved virtual time is exactly the skipped setup charges.
            assert_eq!(t_adhoc - t_pers, overhead * (reps - 1));
        }
    }

    #[test]
    fn persistent_executions_match_adhoc_round_structure() {
        // Beyond the setup charge, a persistent execution is the same
        // collective: same readiness rendezvous, same rounds, same
        // progression rules under polling.
        let p = 6;
        let bytes = 200_000;
        let body_adhoc = move |sim: &mut SimRank| {
            let op = sim.post_alltoall(bytes);
            sim.compute_with_polls(0.004, 13, &[op]);
            sim.wait(op);
            sim.now()
        };
        let body_pers = move |sim: &mut SimRank| {
            let plan = sim.alltoall_init(bytes);
            let op = sim.start(plan);
            sim.compute_with_polls(0.004, 13, &[op]);
            sim.wait(op);
            sim.now()
        };
        let a = run_sim(umd_cluster(), p, move |sim| body_adhoc(sim));
        let b = run_sim(umd_cluster(), p, move |sim| body_pers(sim));
        // First persistent execution == ad-hoc (init charges what post did).
        assert_eq!(a, b);
    }

    #[test]
    fn persistent_plans_stay_deterministic_across_runs() {
        let go = || {
            run_sim(umd_cluster().with_straggler(1, 2.0), 4, |sim| {
                let plan = sim.alltoall_init(123_456);
                for _ in 0..3 {
                    let op = sim.start(plan);
                    sim.compute_with_polls(0.002, 9, &[op]);
                    sim.wait(op);
                }
                sim.now()
            })
        };
        let a = go();
        assert_eq!(go(), a);
    }

    #[test]
    fn concurrent_windows_share_bandwidth() {
        // Two overlapping alltoalls must take longer than one, but less
        // than two run serially (they do overlap).
        let p = 4;
        let bytes = 1 << 20;
        let one = run_sim(umd_cluster(), p, move |sim| {
            let op = sim.post_alltoall(bytes);
            sim.compute_with_polls(1.0, 5_000, &[op]);
            sim.wait(op)
        })[0];
        let two = run_sim(umd_cluster(), p, move |sim| {
            let a = sim.post_alltoall(bytes);
            let b = sim.post_alltoall(bytes);
            sim.compute_with_polls(1.0, 5_000, &[a, b]);
            let ea = sim.wait(a);
            let eb = sim.wait(b);
            ea.max(eb)
        })[0];
        assert!(two > one);
        assert!(two < one * 2);
    }
}
