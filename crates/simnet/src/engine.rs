//! Conservative virtual-time engine.
//!
//! Rank threads execute real control flow but advance a *virtual* clock.
//! The engine enforces one invariant: **a rank may interact with shared
//! state only while it holds the minimum virtual clock among runnable
//! ranks** (ties broken by rank id). Under that discipline, any question a
//! rank asks at time `t` ("has everyone posted collective 17 yet?") has a
//! causally complete answer — no other rank can later act at a time
//! `≤ t` — so simulations are bit-reproducible regardless of host thread
//! scheduling.
//!
//! The only cross-rank coupling the network model needs is per-collective:
//! the *ready time* (the max of all ranks' post times). Everything else —
//! round progression, bandwidth sharing, poll accounting — is rank-local
//! arithmetic, which is what makes the simulator fast enough to sit inside
//! an auto-tuning loop.

use crate::time::SimTime;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Identifies one collective operation: the N-th collective posted on the
/// communicator (all ranks must post collectives in the same order, the
/// usual MPI rule).
pub type OpSeq = u64;

/// Answer to "is collective `seq` ready?" asked at the caller's clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadyInfo {
    /// All ranks have posted; the collective became ready at this time.
    Ready(SimTime),
    /// Not all ranks have posted; it cannot become ready before this time
    /// (the minimum clock among ranks that have not posted).
    NotBefore(SimTime),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Runnable: eligible for min-clock selection.
    Ready,
    /// Parked until the given collective becomes ready.
    Blocked(OpSeq),
    /// Rank function returned.
    Done,
}

struct OpShared {
    posted: Vec<bool>,
    nposted: usize,
    post_max: SimTime,
    ready: Option<SimTime>,
}

impl OpShared {
    fn new(p: usize) -> Self {
        OpShared {
            posted: vec![false; p],
            nposted: 0,
            post_max: SimTime::ZERO,
            ready: None,
        }
    }
}

struct State {
    clocks: Vec<SimTime>,
    status: Vec<Status>,
    running: usize,
    ops: Vec<OpShared>,
}

/// The shared engine. One per simulation run.
pub struct Engine {
    state: Mutex<State>,
    /// One condvar per rank thread; `schedule` wakes exactly the new runner.
    cvs: Vec<Condvar>,
    size: usize,
    panicked: AtomicBool,
}

impl Engine {
    /// Creates an engine for `size` ranks. Rank 0 starts as the runner.
    pub fn new(size: usize) -> Arc<Self> {
        assert!(size >= 1, "simulation needs at least one rank");
        Arc::new(Engine {
            state: Mutex::new(State {
                clocks: vec![SimTime::ZERO; size],
                status: vec![Status::Ready; size],
                running: 0,
                ops: Vec::new(),
            }),
            cvs: (0..size).map(|_| Condvar::new()).collect(),
            size,
            panicked: AtomicBool::new(false),
        })
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Marks the simulation panicked and wakes all parked ranks so they
    /// unwind rather than deadlock.
    pub fn abort(&self) {
        self.panicked.store(true, Ordering::Release);
        let _g = self.state.lock();
        for cv in &self.cvs {
            cv.notify_all();
        }
    }

    fn check_abort(&self) {
        if self.panicked.load(Ordering::Acquire) {
            panic!("simnet: aborted because a peer rank panicked");
        }
    }

    /// Picks the next runner: minimum clock among `Ready` ranks, ties to the
    /// lowest rank. Panics on deadlock (no runnable rank while some are
    /// still blocked).
    fn schedule(&self, s: &mut State) {
        let mut best: Option<usize> = None;
        for r in 0..self.size {
            if s.status[r] == Status::Ready {
                match best {
                    None => best = Some(r),
                    Some(b) if s.clocks[r] < s.clocks[b] => best = Some(r),
                    _ => {}
                }
            }
        }
        match best {
            Some(r) => {
                s.running = r;
                self.cvs[r].notify_all();
            }
            None => {
                if s.status.iter().any(|st| matches!(st, Status::Blocked(_))) {
                    // Every runnable rank is gone but someone still waits on
                    // a collective no one can complete.
                    self.panicked.store(true, Ordering::Release);
                    for cv in &self.cvs {
                        cv.notify_all();
                    }
                    panic!(
                        "simnet: deadlock — all ranks blocked on collectives \
                         that can no longer complete"
                    );
                }
                // All done; nothing to schedule.
                s.running = usize::MAX;
            }
        }
    }

    /// Establishes the min-clock invariant for `rank` at `clock`: publishes
    /// the clock, hands off if another rank is now earlier, and returns once
    /// `rank` is the runner again.
    pub fn turn(&self, rank: usize, clock: SimTime) {
        let mut s = self.state.lock();
        s.clocks[rank] = clock;
        // Fast path: still the earliest runnable rank.
        let mut earliest = rank;
        for r in 0..self.size {
            if s.status[r] == Status::Ready && (s.clocks[r], r) < (s.clocks[earliest], earliest) {
                earliest = r;
            }
        }
        if earliest == rank {
            s.running = rank;
            return;
        }
        self.schedule(&mut s);
        while s.running != rank {
            // Check the abort flag *before* parking: the abort's notify is
            // issued under the state lock, so checking while holding it
            // leaves no lost-wakeup window.
            self.check_abort();
            self.cvs[rank].wait(&mut s);
        }
        self.check_abort();
    }

    fn op_mut(s: &mut State, seq: OpSeq, p: usize) -> &mut OpShared {
        let idx = seq as usize;
        while s.ops.len() <= idx {
            s.ops.push(OpShared::new(p));
        }
        &mut s.ops[idx]
    }

    /// Records that `rank` posted collective `seq` at `clock`. Must be — and
    /// is — preceded by [`Self::turn`]. When the last rank posts, the ready
    /// time freezes and ranks blocked on the collective are released.
    pub fn post(&self, rank: usize, clock: SimTime, seq: OpSeq) {
        self.turn(rank, clock);
        let mut s = self.state.lock();
        let size = self.size;
        let op = Self::op_mut(&mut s, seq, size);
        assert!(
            !op.posted[rank],
            "rank {rank} posted collective {seq} twice"
        );
        op.posted[rank] = true;
        op.nposted += 1;
        op.post_max = op.post_max.max(clock);
        if op.nposted == size {
            op.ready = Some(op.post_max);
            // Release ranks parked in block_on_ready.
            for r in 0..size {
                if s.status[r] == Status::Blocked(seq) {
                    s.status[r] = Status::Ready;
                }
            }
        }
    }

    /// Asks, at `clock`, whether collective `seq` is ready. The answer is
    /// causally exact thanks to the min-clock discipline.
    pub fn query(&self, rank: usize, clock: SimTime, seq: OpSeq) -> ReadyInfo {
        self.turn(rank, clock);
        let mut s = self.state.lock();
        let size = self.size;
        let op = Self::op_mut(&mut s, seq, size);
        if let Some(t) = op.ready {
            return ReadyInfo::Ready(t);
        }
        // Lower bound: the earliest any non-posted rank could still post.
        let posted = op.posted.clone();
        let mut bound: Option<SimTime> = None;
        for (r, &was_posted) in posted.iter().enumerate() {
            if !was_posted {
                assert!(
                    s.status[r] != Status::Done,
                    "rank {r} finished without posting collective {seq}"
                );
                let c = s.clocks[r];
                bound = Some(match bound {
                    None => c,
                    Some(b) => b.min(c),
                });
            }
        }
        ReadyInfo::NotBefore(bound.expect("unready op must have a non-posted rank"))
    }

    /// Parks `rank` until collective `seq` is ready; returns the ready time.
    /// The rank's clock is *not* advanced — the caller folds the ready time
    /// into its own completion computation.
    pub fn block_on_ready(&self, rank: usize, clock: SimTime, seq: OpSeq) -> SimTime {
        match self.query(rank, clock, seq) {
            ReadyInfo::Ready(t) => t,
            ReadyInfo::NotBefore(_) => {
                let mut s = self.state.lock();
                s.status[rank] = Status::Blocked(seq);
                self.schedule(&mut s);
                while s.running != rank {
                    self.check_abort();
                    self.cvs[rank].wait(&mut s);
                    // Woken spuriously or released: if released we are Ready
                    // and will be scheduled once we hold the min clock.
                }
                self.check_abort();
                let size = self.size;
                Self::op_mut(&mut s, seq, size)
                    .ready
                    .expect("released from block_on_ready without a ready time")
            }
        }
    }

    /// Marks `rank` finished and hands the engine to the remaining ranks.
    pub fn done(&self, rank: usize) {
        let mut s = self.state.lock();
        s.status[rank] = Status::Done;
        self.schedule(&mut s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn spawn_ranks<F>(p: usize, f: F)
    where
        F: Fn(Arc<Engine>, usize) + Send + Sync,
    {
        let eng = Engine::new(p);
        thread::scope(|s| {
            for r in 0..p {
                let eng = eng.clone();
                let f = &f;
                s.spawn(move || {
                    f(eng.clone(), r);
                    eng.done(r);
                });
            }
        });
    }

    #[test]
    fn post_and_ready_time_is_max_of_posts() {
        spawn_ranks(3, |eng, r| {
            let t = SimTime::from_micros(10 * (r as u64 + 1));
            eng.post(r, t, 0);
            let ready = eng.block_on_ready(r, t, 0);
            assert_eq!(ready, SimTime::from_micros(30));
        });
    }

    #[test]
    fn query_gives_lower_bound_before_ready() {
        spawn_ranks(2, |eng, r| {
            if r == 0 {
                eng.post(0, SimTime::from_micros(1), 0);
                // Rank 1 has not posted; its clock is a valid lower bound.
                match eng.query(0, SimTime::from_micros(1), 0) {
                    ReadyInfo::Ready(_) => {
                        // Possible only if rank 1 already posted — at a
                        // larger clock, fine.
                    }
                    ReadyInfo::NotBefore(b) => assert!(b <= SimTime::from_micros(500)),
                }
                let ready = eng.block_on_ready(0, SimTime::from_micros(1), 0);
                assert_eq!(ready, SimTime::from_micros(500));
            } else {
                eng.post(1, SimTime::from_micros(500), 0);
            }
        });
    }

    #[test]
    fn min_clock_rank_runs_first() {
        // Both ranks contend; the engine must always grant the turn to the
        // earlier clock, so the later rank observes the earlier one's post.
        spawn_ranks(2, |eng, r| {
            if r == 0 {
                eng.post(0, SimTime::from_nanos(5), 0);
            } else {
                // Rank 1 queries at a much later time: by then rank 0's
                // post (at 5 ns) must be visible.
                eng.post(1, SimTime::from_micros(100), 0);
                let ready = eng.block_on_ready(1, SimTime::from_micros(100), 0);
                assert_eq!(ready, SimTime::from_micros(100));
            }
        });
    }

    #[test]
    fn several_sequential_collectives() {
        spawn_ranks(4, |eng, r| {
            let mut clock = SimTime::from_micros(r as u64);
            for seq in 0..10u64 {
                eng.post(r, clock, seq);
                let ready = eng.block_on_ready(r, clock, seq);
                assert!(ready >= clock);
                clock = ready + SimTime::from_micros(1);
            }
        });
    }

    #[test]
    fn deadlock_is_detected() {
        // Rank 1 exits without posting; rank 0 blocks forever on seq 0. The
        // scheduler must panic with the deadlock diagnostic in one thread
        // and wake the other with the abort diagnostic.
        let eng = Engine::new(2);
        let mut payloads = Vec::new();
        thread::scope(|s| {
            let handles = [
                s.spawn({
                    let e = eng.clone();
                    move || {
                        e.post(0, SimTime::ZERO, 0);
                        e.block_on_ready(0, SimTime::ZERO, 0);
                        e.done(0);
                    }
                }),
                s.spawn({
                    let e = eng.clone();
                    move || {
                        // Never posts seq 0.
                        e.done(1);
                    }
                }),
            ];
            for h in handles {
                if let Err(e) = h.join() {
                    let msg = e
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_default();
                    payloads.push(msg);
                }
            }
        });
        assert!(
            payloads.iter().any(|m| m.contains("deadlock")),
            "expected a deadlock diagnostic, got {payloads:?}"
        );
    }

    #[test]
    #[should_panic(expected = "posted collective 0 twice")]
    fn double_post_is_rejected() {
        let eng = Engine::new(1);
        eng.post(0, SimTime::ZERO, 0);
        eng.post(0, SimTime::ZERO, 0);
    }
}
