//! Machine and network cost models, with presets for the paper's two
//! platforms.
//!
//! The simulator does not replay measured numbers: every cost below is a
//! *mechanism* whose interaction produces the paper's trade-offs.
//!
//! * The compute model makes the loop-tiling parameters (`Px, Pz, Uy, Uz`)
//!   matter through an L2-residency term and a short-stride penalty (§3.4).
//! * The network model makes `T` matter through per-round latency α versus
//!   pipelining, `W` through concurrent-window bandwidth sharing, and the
//!   `F*` parameters through progression-gated rounds (§3.2–3.3).
//!
//! Absolute constants were calibrated against the FFTW column of Table 2
//! (see `crates/bench/src/bin/calibrate.rs`); shapes are emergent.

use crate::time::SimTime;
use faultplan::FaultPlan;

/// Bytes per complex-double element.
pub const ELEM_BYTES: u64 = 16;

/// Per-node computation cost model.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Sustained flop rate (flop/s) for in-cache 1-D FFT butterflies.
    pub fft_flops: f64,
    /// Multiplier (< 1) applied when an FFT line's working set exceeds L2.
    pub fft_oo_cache_factor: f64,
    /// L2 cache size in bytes (both paper machines: 512 KiB).
    pub l2_bytes: u64,
    /// Effective cache budget for a pack/unpack sub-tile (the paper's §4.4
    /// seed assumes 256 KiB usable, i.e. 16 Ki elements).
    pub subtile_cache_bytes: u64,
    /// Streaming rate (bytes/s) for pack/unpack when the sub-tile fits in
    /// cache after the preceding FFT step touched it.
    pub pack_bw: f64,
    /// Multiplier when the sub-tile overflows the cache (the FFT'd data has
    /// been evicted before Pack re-reads it).
    pub pack_oo_cache_factor: f64,
    /// Multiplier when the innermost contiguous run of a sub-tile is below
    /// a cache line (hardware prefetch and line utilisation collapse).
    pub pack_short_stride_factor: f64,
    /// Contiguous-run threshold (bytes) triggering the short-stride penalty.
    pub short_stride_bytes: u64,
    /// Loop/bookkeeping overhead per sub-tile visit (seconds): many tiny
    /// sub-tiles lose to this term.
    pub subtile_overhead: f64,
    /// Transpose streaming rate (bytes/s) for the generic `z-x-y` path.
    pub transpose_bw_generic: f64,
    /// Transpose streaming rate for the §3.5 `x-z-y` fast path (`Nx = Ny`).
    pub transpose_bw_fast: f64,
    /// Transpose streaming rate for an unblocked triple loop — the
    /// non-optimized rearrangement the TH comparator performs (visible as
    /// TH's tall Transpose bar in Figure 8).
    pub transpose_bw_naive: f64,
    /// Cost of one `MPI_Test` call (seconds).
    pub t_test: f64,
}

impl MachineModel {
    /// Cost of one 1-D FFT of length `n` (Cooley–Tukey flop count over the
    /// sustained rate, degraded when the line spills out of L2).
    pub fn fft_line(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let flops = 5.0 * n as f64 * (n as f64).log2();
        let in_cache = (n as u64 * ELEM_BYTES) <= self.l2_bytes;
        let rate = if in_cache {
            self.fft_flops
        } else {
            self.fft_flops * self.fft_oo_cache_factor
        };
        flops / rate
    }

    /// Cost of a batch of 1-D FFT lines.
    pub fn fft_batch(&self, n: usize, lines: u64) -> f64 {
        self.fft_line(n) * lines as f64
    }

    /// Cost of packing (or unpacking) `total_bytes`, iterated in sub-tiles
    /// of `subtile_bytes` whose innermost contiguous run is `run_bytes`.
    ///
    /// This is the term the paper's loop tiling (§3.4) optimises: the rate
    /// is best when the sub-tile still resides in cache from the preceding
    /// FFT, the contiguous run spans cache lines, and the sub-tile is not so
    /// small that per-sub-tile overhead dominates.
    pub fn pack(&self, total_bytes: u64, subtile_bytes: u64, run_bytes: u64) -> f64 {
        if total_bytes == 0 {
            return 0.0;
        }
        let mut rate = self.pack_bw;
        if subtile_bytes > self.subtile_cache_bytes {
            rate *= self.pack_oo_cache_factor;
        }
        if run_bytes < self.short_stride_bytes {
            // Scale smoothly down to the floor factor as runs shrink.
            let frac = run_bytes as f64 / self.short_stride_bytes as f64;
            rate *= self.pack_short_stride_factor + (1.0 - self.pack_short_stride_factor) * frac;
        }
        let subtiles = (total_bytes as f64 / subtile_bytes.max(1) as f64).ceil();
        total_bytes as f64 / rate + subtiles * self.subtile_overhead
    }

    /// Cost of the Transpose step over `total_bytes`.
    pub fn transpose(&self, total_bytes: u64, style: TransposeCost) -> f64 {
        let bw = match style {
            TransposeCost::Fast => self.transpose_bw_fast,
            TransposeCost::Generic => self.transpose_bw_generic,
            TransposeCost::Naive => self.transpose_bw_naive,
        };
        total_bytes as f64 / bw
    }
}

/// Which transpose implementation a variant uses (cost tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransposeCost {
    /// §3.5 `x-z-y` fast path (`Nx = Ny` only).
    Fast,
    /// Cache-blocked generic permutation.
    Generic,
    /// Unblocked triple loop (TH).
    Naive,
}

/// All-to-all communication cost model.
#[derive(Debug, Clone)]
pub struct NetModel {
    /// Per-message latency α (seconds): injection + routing.
    pub alpha: f64,
    /// Per-rank link bandwidth β (bytes/s), full duplex.
    pub link_bw: f64,
    /// Contention scale: effective bandwidth divides by
    /// `1 + (p / p0)^gamma` as the all-to-all pattern saturates the fabric.
    pub contention_p0: f64,
    /// Contention exponent (torus ≈ higher than a fat Clos).
    pub contention_gamma: f64,
    /// Messages smaller than this use the log-round (Bruck) schedule.
    pub bruck_threshold_bytes: u64,
    /// Per-peer setup charged when an all-to-all is posted.
    pub post_overhead_per_peer: f64,
}

/// The round structure of one all-to-all operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct A2aShape {
    /// Number of point-to-point rounds the schedule executes.
    pub rounds: u32,
    /// Bytes this rank moves in one round.
    pub round_bytes: u64,
}

impl NetModel {
    /// Chooses the schedule for `p` ranks exchanging `bytes_per_peer` with
    /// each peer: pairwise exchange (p−1 rounds of one block) for large
    /// messages, Bruck (⌈log2 p⌉ rounds of p/2 blocks) for small ones —
    /// the same switch real MPI/libNBC implementations make.
    pub fn shape(&self, p: usize, bytes_per_peer: u64) -> A2aShape {
        if p <= 1 {
            return A2aShape {
                rounds: 0,
                round_bytes: 0,
            };
        }
        if bytes_per_peer < self.bruck_threshold_bytes {
            let rounds = (usize::BITS - (p - 1).leading_zeros()).max(1);
            A2aShape {
                rounds,
                round_bytes: bytes_per_peer * (p as u64) / 2,
            }
        } else {
            A2aShape {
                rounds: (p - 1) as u32,
                round_bytes: bytes_per_peer,
            }
        }
    }

    /// Effective per-rank bandwidth with `p` ranks participating and
    /// `active_windows` concurrent all-to-alls sharing this rank's link.
    /// Sharing is fair: the aggregate across concurrent windows never
    /// exceeds the (contention-degraded) link bandwidth.
    pub fn effective_bw(&self, p: usize, active_windows: u32) -> f64 {
        let contention = 1.0 + (p as f64 / self.contention_p0).powf(self.contention_gamma);
        self.link_bw / contention / active_windows.max(1) as f64
    }

    /// Duration of one schedule round.
    pub fn round_time(&self, p: usize, shape: A2aShape, active_windows: u32) -> SimTime {
        SimTime::from_secs_f64(
            self.alpha + shape.round_bytes as f64 / self.effective_bw(p, active_windows),
        )
    }

    /// Duration of a fully progressed (blocking) all-to-all after all ranks
    /// have arrived.
    pub fn blocking_duration(&self, p: usize, bytes_per_peer: u64) -> SimTime {
        let shape = self.shape(p, bytes_per_peer);
        SimTime::from_secs_f64(
            shape.rounds as f64 * (self.alpha + shape.round_bytes as f64 / self.effective_bw(p, 1)),
        )
    }

    /// Post-time overhead of initiating an all-to-all among `p` ranks.
    pub fn post_overhead(&self, p: usize) -> SimTime {
        SimTime::from_secs_f64(self.post_overhead_per_peer * p as f64)
    }

    /// Total bytes one rank puts on the wire for the exchange — the
    /// schedule's rounds × per-round volume, which for Bruck *exceeds* the
    /// logical payload (each block transits ⌈log₂ p⌉ hops). This is the
    /// fluid volume a shared link drains, so it is also the unit the
    /// service's byte-conservation accounting uses.
    pub fn exchange_bytes(&self, p: usize, bytes_per_peer: u64) -> u64 {
        let shape = self.shape(p, bytes_per_peer);
        shape.rounds as u64 * shape.round_bytes
    }

    /// Fixed latency of the exchange: α per schedule round, independent of
    /// bandwidth sharing.
    pub fn exchange_latency(&self, p: usize, bytes_per_peer: u64) -> f64 {
        self.shape(p, bytes_per_peer).rounds as f64 * self.alpha
    }
}

/// A complete platform description.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Human-readable name used in reports.
    pub name: &'static str,
    /// Compute model.
    pub machine: MachineModel,
    /// Network model.
    pub net: NetModel,
    /// Execution-noise amplitude: each compute phase is scaled by a
    /// deterministic pseudo-random factor in `[1 − jitter, 1 + jitter]`
    /// (OS jitter, cache conflicts). Zero by default; the paper's
    /// best-of-25 methodology (§5.2.1) exists to cope with this term.
    pub jitter: f64,
    /// Faults to inject: straggler ranks scale their compute phases by the
    /// plan's per-rank factor, and degraded links scale every all-to-all
    /// round. The simulator interprets only the plan's cost-model terms —
    /// drops and blackholes are the real runtime's (mpisim's) department.
    pub faults: FaultPlan,
}

impl Platform {
    /// Returns the platform with execution noise enabled.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        self.jitter = jitter;
        self
    }

    /// Returns the platform with a full fault plan installed.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Returns the platform with one straggler rank of the given
    /// dimensionless severity: its compute phases run `1 + severity` times
    /// slower, starving its peers' manual progression.
    pub fn with_straggler(mut self, rank: usize, severity: f64) -> Self {
        self.faults = self.faults.with_straggler(rank, severity);
        self
    }

    /// Returns the platform with every all-to-all round slowed by
    /// `factor ≥ 1` — a degraded interconnect preset.
    pub fn with_degraded_links(mut self, factor: f64) -> Self {
        self.faults = self.faults.with_degraded_links(factor);
        self
    }
}

/// "UMD-Cluster": 64-node Linux cluster, one Intel Xeon 2.66 GHz (SSE) core
/// per node, 512 KB L2, Myrinet 2000 interconnect (§5.1).
///
/// Myrinet 2000 sustains ≈ 230 MB/s per link with multi-microsecond
/// latency; a 2.66 GHz SSE Xeon sustains ≈ 1.3 Gflop/s on complex-double
/// FFT butterflies with early-2000s FFTW.
pub fn umd_cluster() -> Platform {
    Platform {
        name: "UMD-Cluster",
        machine: MachineModel {
            fft_flops: 0.96e9,
            fft_oo_cache_factor: 0.62,
            l2_bytes: 512 * 1024,
            subtile_cache_bytes: 256 * 1024,
            pack_bw: 0.70e9,
            pack_oo_cache_factor: 0.42,
            pack_short_stride_factor: 0.38,
            short_stride_bytes: 64,
            subtile_overhead: 0.35e-6,
            transpose_bw_generic: 0.43e9,
            transpose_bw_fast: 0.77e9,
            transpose_bw_naive: 0.19e9,
            t_test: 0.9e-6,
        },
        jitter: 0.0,
        faults: FaultPlan::none(),
        net: NetModel {
            alpha: 8.5e-6,
            link_bw: 156e6,
            contention_p0: 48.0,
            contention_gamma: 1.15,
            bruck_threshold_bytes: 4 * 1024,
            post_overhead_per_peer: 0.35e-6,
        },
    }
}

/// "Hopper": Cray XE6 at NERSC, two 12-core AMD Magny-Cours 2.1 GHz per
/// node (4 cores/processor used), 64 KB L1 + 512 KB L2 per core, Gemini
/// 3-D-torus interconnect (§5.1).
///
/// Gemini delivers multi-GB/s per-rank bandwidth at ≈ 1.5 µs latency, but
/// the 3-D torus congests faster with p than a Clos network — hence the
/// larger contention exponent.
pub fn hopper() -> Platform {
    Platform {
        name: "Hopper",
        machine: MachineModel {
            fft_flops: 2.24e9,
            fft_oo_cache_factor: 0.66,
            l2_bytes: 512 * 1024,
            subtile_cache_bytes: 256 * 1024,
            pack_bw: 1.93e9,
            pack_oo_cache_factor: 0.45,
            pack_short_stride_factor: 0.40,
            short_stride_bytes: 64,
            subtile_overhead: 0.25e-6,
            transpose_bw_generic: 1.2e9,
            transpose_bw_fast: 2.07e9,
            transpose_bw_naive: 0.54e9,
            t_test: 0.6e-6,
        },
        jitter: 0.0,
        faults: FaultPlan::none(),
        net: NetModel {
            alpha: 1.6e-6,
            link_bw: 1.63e9,
            contention_p0: 40.0,
            contention_gamma: 1.19,
            bruck_threshold_bytes: 4 * 1024,
            post_overhead_per_peer: 0.2e-6,
        },
    }
}

/// Looks a platform up by name (`"umd"` / `"hopper"`), for CLI harnesses.
pub fn by_name(name: &str) -> Option<Platform> {
    match name.to_ascii_lowercase().as_str() {
        "umd" | "umd-cluster" | "umd_cluster" => Some(umd_cluster()),
        "hopper" => Some(hopper()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exchange helpers must decompose `blocking_duration` exactly:
    /// wire bytes at uncontended bandwidth plus the fixed latency — the
    /// invariant that keeps the service's fluid-flow pricing and the
    /// simulator's blocking collectives agreeing on every geometry.
    #[test]
    fn exchange_helpers_decompose_blocking_duration() {
        let net = umd_cluster().net;
        for p in [2usize, 3, 8, 16, 64, 257] {
            for bpp in [64u64, 4096, 1 << 20] {
                let rebuilt = net.exchange_bytes(p, bpp) as f64 / net.effective_bw(p, 1)
                    + net.exchange_latency(p, bpp);
                let blocking = net.blocking_duration(p, bpp).as_secs_f64();
                // `SimTime` quantizes to whole nanoseconds; allow that.
                assert!(
                    (rebuilt - blocking).abs() <= 1e-9 + 1e-9 * blocking,
                    "p={p} bpp={bpp}: {rebuilt} vs {blocking}"
                );
            }
        }
    }

    #[test]
    fn degenerate_exchange_is_free() {
        let net = umd_cluster().net;
        assert_eq!(net.exchange_bytes(1, 1 << 20), 0);
        assert_eq!(net.exchange_latency(0, 1 << 20), 0.0);
    }

    /// Fair sharing conserves link capacity: `n` concurrent windows each
    /// get `1/n` of the contended bandwidth, so draining two equal flows
    /// concurrently takes exactly as long as draining them back-to-back.
    #[test]
    fn concurrent_windows_share_without_creating_bandwidth() {
        let net = umd_cluster().net;
        for n in [1u32, 2, 3, 8] {
            let shared = net.effective_bw(16, n);
            let alone = net.effective_bw(16, 1);
            assert!(
                (shared * n as f64 - alone).abs() <= 1e-9 * alone,
                "n={n}: aggregate {} vs link {alone}",
                shared * n as f64
            );
        }
    }

    #[test]
    fn fft_cost_grows_superlinearly() {
        let m = umd_cluster().machine;
        let c256 = m.fft_line(256);
        let c512 = m.fft_line(512);
        assert!(c512 > 2.0 * c256);
        assert_eq!(m.fft_line(1), 0.0);
    }

    #[test]
    fn out_of_cache_lines_cost_more_per_flop() {
        let m = umd_cluster().machine;
        // 64 Ki elements = 1 MiB > 512 KiB L2.
        let per_flop_small = m.fft_line(1024) / (5.0 * 1024.0 * 10.0);
        let n = 65536;
        let per_flop_big = m.fft_line(n) / (5.0 * n as f64 * (n as f64).log2());
        assert!(per_flop_big > per_flop_small * 1.3);
    }

    #[test]
    fn pack_prefers_cache_resident_subtiles() {
        let m = umd_cluster().machine;
        let total = 8 * 1024 * 1024;
        let good = m.pack(total, 128 * 1024, 4096);
        let too_big = m.pack(total, 4 * 1024 * 1024, 4096);
        let too_small = m.pack(total, 256, 4096);
        assert!(
            good < too_big,
            "cache-resident sub-tile must beat oversized"
        );
        assert!(good < too_small, "overhead must punish tiny sub-tiles");
    }

    #[test]
    fn pack_penalises_short_runs() {
        let m = umd_cluster().machine;
        let total = 1024 * 1024;
        let long_run = m.pack(total, 128 * 1024, 4096);
        let short_run = m.pack(total, 128 * 1024, 16);
        assert!(short_run > long_run * 1.3);
    }

    #[test]
    fn a2a_shape_switches_to_bruck_for_small_messages() {
        let n = umd_cluster().net;
        let small = n.shape(16, 512);
        assert_eq!(small.rounds, 4); // ⌈log2 16⌉
        let large = n.shape(16, 1 << 20);
        assert_eq!(large.rounds, 15);
        assert_eq!(large.round_bytes, 1 << 20);
        assert_eq!(n.shape(1, 1 << 20).rounds, 0);
    }

    #[test]
    fn contention_reduces_effective_bandwidth() {
        let n = hopper().net;
        assert!(n.effective_bw(256, 1) < n.effective_bw(16, 1));
        assert!(n.effective_bw(16, 4) < n.effective_bw(16, 1));
    }

    #[test]
    fn blocking_duration_scales_with_message_size() {
        let n = umd_cluster().net;
        let a = n.blocking_duration(16, 64 * 1024);
        let b = n.blocking_duration(16, 128 * 1024);
        assert!(b > a);
        assert_eq!(n.blocking_duration(1, 1 << 20), SimTime::ZERO);
    }

    #[test]
    fn platform_lookup() {
        assert_eq!(by_name("umd").unwrap().name, "UMD-Cluster");
        assert_eq!(by_name("Hopper").unwrap().name, "Hopper");
        assert!(by_name("bluegene").is_none());
    }

    #[test]
    fn fault_builders_compose() {
        let p = umd_cluster()
            .with_straggler(3, 2.0)
            .with_degraded_links(1.5);
        assert!(p.faults.is_active());
        assert!((p.faults.compute_factor(3) - 3.0).abs() < 1e-12);
        assert_eq!(p.faults.compute_factor(0), 1.0);
        assert!((p.faults.link_factor() - 1.5).abs() < 1e-12);
        // Presets start fault-free.
        assert!(!umd_cluster().faults.is_active());
        assert!(!hopper().faults.is_active());
    }

    #[test]
    fn transpose_cost_tiers_are_ordered() {
        let m = hopper().machine;
        let fast = m.transpose(1 << 24, TransposeCost::Fast);
        let generic = m.transpose(1 << 24, TransposeCost::Generic);
        let naive = m.transpose(1 << 24, TransposeCost::Naive);
        assert!(fast < generic);
        assert!(generic < naive);
    }
}
