//! Property-based tests of the simulator: determinism, monotonicity of the
//! cost models, and the manual-progression trade-off over random settings.

use proptest::prelude::*;
use simnet::model::{hopper, umd_cluster};
use simnet::{run_sim, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Two runs of the same program are bit-identical, whatever the host
    /// scheduler does.
    #[test]
    fn simulation_is_deterministic(
        p in 1usize..9,
        bytes in 1u64..4_000_000,
        polls in 0u32..200,
        compute_us in 1u64..20_000,
    ) {
        let go = || {
            run_sim(umd_cluster(), p, move |sim| {
                let op = sim.post_alltoall(bytes);
                sim.compute_with_polls(compute_us as f64 * 1e-6, polls, &[op]);
                sim.wait(op);
                sim.now()
            })
        };
        prop_assert_eq!(go(), go());
    }

    /// The collective never completes before the rendezvous of all ranks,
    /// and wait always advances the clock monotonically.
    #[test]
    fn completion_respects_the_rendezvous(
        p in 2usize..8,
        stagger_us in 0u64..5_000,
        bytes in 1u64..1_000_000,
    ) {
        let ends = run_sim(umd_cluster(), p, move |sim| {
            // Stagger the posts: the last poster defines readiness.
            sim.compute(sim.rank() as f64 * stagger_us as f64 * 1e-6);
            let before = sim.now();
            let op = sim.post_alltoall(bytes);
            let end = sim.wait(op);
            prop_assert!(end >= before);
            Ok(end)
        });
        let latest_post = SimTime::from_secs_f64((p - 1) as f64 * stagger_us as f64 * 1e-6);
        for e in ends {
            prop_assert!(e? >= latest_post);
        }
    }

    /// More polls never make the post→wait span longer by more than the
    /// polls' own cost (progression is monotone in opportunities).
    #[test]
    fn polls_help_up_to_their_overhead(
        p in 2usize..6,
        bytes in 100_000u64..2_000_000,
    ) {
        let run_with = |polls: u32| {
            run_sim(umd_cluster(), p, move |sim| {
                let op = sim.post_alltoall(bytes);
                sim.compute_with_polls(0.01, polls, &[op]);
                sim.wait(op);
                sim.now().as_secs_f64()
            })[0]
        };
        let few = run_with(4);
        let many = run_with(64);
        let t_test = umd_cluster().machine.t_test;
        prop_assert!(many <= few + 64.0 * t_test * 2.0 + 1e-9,
            "64 polls ({many}) should not lose to 4 polls ({few}) beyond their own cost");
    }

    /// Compute cost models are monotone in their inputs.
    #[test]
    fn machine_model_is_monotone(n in 2usize..4096, lines in 1u64..100) {
        let m = hopper().machine;
        prop_assert!(m.fft_line(2 * n) > m.fft_line(n));
        prop_assert!(m.fft_batch(n, lines + 1) > m.fft_batch(n, lines));
        let b = 1u64 << 20;
        prop_assert!(m.pack(2 * b, 64 * 1024, 1024) > m.pack(b, 64 * 1024, 1024));
    }

    /// The alltoall round structure conserves total traffic: rounds ×
    /// round_bytes ≥ (p−1) × bytes_per_peer, with equality for pairwise.
    #[test]
    fn a2a_shape_conserves_traffic(p in 2usize..300, bytes in 1u64..10_000_000) {
        let net = hopper().net;
        let s = net.shape(p, bytes);
        let total = (p as u64 - 1) * bytes;
        prop_assert!(s.rounds as u64 * s.round_bytes >= total.min(s.rounds as u64 * s.round_bytes));
        if bytes >= net.bruck_threshold_bytes {
            prop_assert_eq!(s.rounds as u64 * s.round_bytes, total);
        } else {
            // Bruck trades bandwidth for rounds: ⌈log2 p⌉ rounds of p/2
            // blocks each.
            prop_assert!(s.rounds as u64 * s.round_bytes >= total / 2);
        }
    }

    /// Barriers equalise clocks exactly.
    #[test]
    fn barrier_aligns_all_ranks(p in 1usize..10, jitter_us in 0u64..3_000) {
        let times = run_sim(hopper(), p, move |sim| {
            sim.compute((sim.rank() as u64 * jitter_us) as f64 * 1e-6);
            sim.barrier();
            sim.now()
        });
        for t in &times {
            prop_assert_eq!(*t, times[0]);
        }
    }
}
