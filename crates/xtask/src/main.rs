//! `cargo xtask` — workspace automation driver.
//!
//! Subcommands:
//!
//! * `lint [--format text|json|sarif] [--output FILE]
//!   [--update-baseline]` — run the mpicheck static analysis
//!   (`SL001`–`SL014`: token lints plus the interprocedural
//!   collective-correctness checks) over the workspace's non-test code.
//!   Exit 1 on any non-baseline finding or stale baseline entry.
//!   `--output` writes the rendered report to a file (a one-line summary
//!   still goes to stdout); `--update-baseline` regenerates
//!   `mpicheck.baseline` from the current findings instead of linting.
//! * `explore [--seed-base N] [--ranks N] [--grid N] [--schedules N]` —
//!   sweep the overlapped pipeline (NEW variant) over seeded random plus
//!   systematic delivery schedules under mpisim's checked mode. Exit 1 on
//!   any schedule with a race/deadlock/lint finding, a panic, or a
//!   numerical deviation. `--seed-base` offsets the random seed range so CI
//!   can cover disjoint seed matrices.
//! * `recover [--seed-base N] [--ranks N] [--grid N] [--schedules N]
//!   [--victim N]` — the rank-death sweep: every schedule runs three times,
//!   killing `--victim` at the first, middle, and last tile boundary; the
//!   survivors must agree on the dead rank, shrink, re-decompose, and come
//!   back serial-exact. Exit 1 on any hang, wrong failure set, or
//!   numerical deviation.
//! * `persist [--seed-base N] [--ranks N] [--grid N] [--schedules N]` —
//!   the persistent-plan sweep: each schedule runs one `FftSession` three
//!   times (setup-once, execute-many), so the start/test/wait cycles of
//!   long-lived all-to-all plans — and their `free` discipline (MC006) —
//!   face every delivery interleaving; a second pass does the same with a
//!   `PencilSession`, whose plans live on the row/column subcommunicators.
//!   Exit 1 on any finding, panic, re-negotiated setup, or numerical
//!   deviation.
//! * `pencil [--seed-base N] [--ranks N] [--grid N] [--schedules N]` —
//!   sweep the overlapped 2-D pencil backend over the same schedule
//!   families: both exchange rounds (z↔y on the row subcommunicator, then
//!   y↔x on the column subcommunicator) keep windowed `Ialltoall`s in
//!   flight under every delivery interleaving, and every rank's output
//!   pencil must stay serial-exact. Exit 1 on any MC001–MC007 finding,
//!   panic, or numerical deviation.
//! * `corrupt [--seed-base N] [--ranks N] [--grid N] [--schedules N]
//!   [--victim N]` — the data-integrity sweep: every schedule runs under a
//!   clean control plan, seeded wire payload corruption, and a silent
//!   memory bit-flip in `--victim`'s staging buffer at the first, middle,
//!   and last tile. The gate is zero undetected corruptions — every flip
//!   must be caught and healed, every output serial-exact. Exit 1
//!   otherwise.
//! * `serve [--seed-base N] [--ranks N] [--grid N] [--schedules N]` —
//!   the multi-tenant service sweep: each schedule interleaves one
//!   tenant's persistent-plan job train with a foreign-geometry tenant
//!   job on the same communicator, under mpisim's checked mode, so the
//!   co-scheduled pipelines of `fft3d::service` face every delivery
//!   interleaving. Exit 1 on any MC finding, panic, re-negotiated plan
//!   setup, or numerical deviation from either serial oracle.
//! * `check` — `lint`, then `explore` with the acceptance-gate defaults
//!   (≥ 200 schedules, 4 ranks, grid 8), then compact `pencil`,
//!   `persist`, `recover`, `corrupt`, and `serve` sweeps.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use mpicheck::{srclint, ExploreConfig, ExploreReport};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask <command>\n\
         \n\
         commands:\n\
         \x20 lint [--format text|json|sarif] [--output FILE]\n\
         \x20      [--update-baseline]  run static analysis (SL001–SL014)\n\
         \x20 explore [--seed-base N]   sweep pipeline delivery schedules\n\
         \x20         [--ranks N] [--grid N] [--schedules N]\n\
         \x20 pencil  [--seed-base N]   sweep the overlapped 2-D pencil\n\
         \x20         [--ranks N] [--grid N] [--schedules N]\n\
         \x20                           backend (row+column Ialltoalls)\n\
         \x20 persist [--seed-base N]   persistent-plan sweep (slab and\n\
         \x20         [--ranks N] [--grid N] [--schedules N]\n\
         \x20                           pencil sessions, three executions\n\
         \x20                           per schedule)\n\
         \x20 recover [--seed-base N]   rank-death recovery sweep (crash at\n\
         \x20         [--ranks N] [--grid N] [--schedules N] [--victim N]\n\
         \x20                           first/middle/last tile per schedule)\n\
         \x20 corrupt [--seed-base N]   data-integrity sweep (clean + wire\n\
         \x20         [--ranks N] [--grid N] [--schedules N] [--victim N]\n\
         \x20                           corruption + memory bit-flips; zero\n\
         \x20                           undetected corruptions gate)\n\
         \x20 serve   [--seed-base N]   multi-tenant service sweep (job\n\
         \x20         [--ranks N] [--grid N] [--schedules N]\n\
         \x20                           train + foreign-geometry job\n\
         \x20                           interleaved on one communicator)\n\
         \x20 check                     lint + explore + pencil + persist\n\
         \x20                           + recover + corrupt + serve\n\
         \x20                           (acceptance gate)"
    );
    ExitCode::FAILURE
}

fn parse_flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn parse_str_flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn run_lint(root: &Path, args: &[String]) -> bool {
    if args.iter().any(|a| a == "--update-baseline") {
        return match srclint::update_baseline(root) {
            Ok(n) => {
                println!(
                    "baseline: {n} finding(s) written to {}",
                    srclint::BASELINE_FILE
                );
                true
            }
            Err(e) => {
                eprintln!("baseline: {e}");
                false
            }
        };
    }
    let report = srclint::run(root);
    let rendered = match parse_str_flag(args, "--format").unwrap_or("text") {
        "json" => srclint::render_json(&report),
        "sarif" => srclint::render_sarif(&report),
        _ => srclint::render_text(&report),
    };
    match parse_str_flag(args, "--output") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("lint: cannot write {path}: {e}");
                return false;
            }
            println!(
                "lint: {} active finding(s), {} baselined, {} stale baseline entr(ies) \
                 over {} files / {} functions -> {path}",
                report.findings.len(),
                report.baselined.len(),
                report.stale_baseline.len(),
                report.files,
                report.functions
            );
        }
        None => print!("{rendered}"),
    }
    report.is_clean()
}

/// Builds the sweep configuration shared by `explore` and `recover` from
/// the command-line flags: `--schedules` resizes the random seed range
/// (keeping the systematic mask sweep), `--seed-base` then offsets it.
fn sweep_config(args: &[String]) -> (ExploreConfig, usize) {
    let seed_base = parse_flag(args, "--seed-base").unwrap_or(0);
    let ranks = parse_flag(args, "--ranks").unwrap_or(4) as usize;
    let grid = parse_flag(args, "--grid").unwrap_or(8) as usize;
    let mut cfg = ExploreConfig::quick();
    cfg.ranks = ranks;
    if let Some(n) = parse_flag(args, "--schedules") {
        let sys = cfg.schedules() - (cfg.random_seeds.end - cfg.random_seeds.start);
        cfg.random_seeds = 0..n.saturating_sub(sys);
    }
    cfg.random_seeds = (cfg.random_seeds.start + seed_base)..(cfg.random_seeds.end + seed_base);
    (cfg, grid)
}

// `% 25 == 0` keeps the stated MSRV (1.85); `is_multiple_of` needs 1.87.
#[allow(clippy::manual_is_multiple_of)]
fn progress_bar(done: u64, total: u64) {
    if done % 25 == 0 || done == total {
        print!("\r  {done}/{total} schedules");
        let _ = std::io::stdout().flush();
    }
}

fn run_explore(args: &[String]) -> bool {
    let (cfg, grid) = sweep_config(args);
    println!(
        "explore: {} schedules of the NEW pipeline, grid {grid}^3, {} ranks \
         (random seeds {:?} + {}-bit systematic sweep)",
        cfg.schedules(),
        cfg.ranks,
        cfg.random_seeds,
        cfg.systematic_bits
    );
    let report = mpicheck::explore_pipeline(&cfg, grid, progress_bar);
    println!();
    summarize("explore", &report)
}

fn run_persist(args: &[String]) -> bool {
    let (cfg, grid) = sweep_config(args);
    println!(
        "persist: {} schedules × 3 executions of one persistent-plan session, \
         grid {grid}^3, {} ranks (random seeds {:?} + {}-bit systematic sweep)",
        cfg.schedules(),
        cfg.ranks,
        cfg.random_seeds,
        cfg.systematic_bits
    );
    let report = mpicheck::explore_persistent(&cfg, grid, progress_bar);
    println!();
    let slab_ok = summarize("persist", &report);
    println!(
        "persist(pencil): {} schedules × 3 executions of one pencil session \
         (plans on row/column subcommunicators), grid {grid}^3, {} ranks",
        cfg.schedules(),
        cfg.ranks
    );
    let report = mpicheck::explore_pencil_persistent(&cfg, grid, progress_bar);
    println!();
    slab_ok && summarize("persist(pencil)", &report)
}

fn run_pencil(args: &[String]) -> bool {
    let (cfg, grid) = sweep_config(args);
    println!(
        "pencil: {} schedules of the overlapped 2-D pencil backend, \
         grid {grid}^3, {} ranks (random seeds {:?} + {}-bit systematic sweep)",
        cfg.schedules(),
        cfg.ranks,
        cfg.random_seeds,
        cfg.systematic_bits
    );
    let report = mpicheck::explore_pencil(&cfg, grid, progress_bar);
    println!();
    summarize("pencil", &report)
}

fn run_recover(args: &[String]) -> bool {
    let (cfg, grid) = sweep_config(args);
    let victim = parse_flag(args, "--victim").unwrap_or(1) as usize;
    println!(
        "recover: {} schedules × crash of rank {victim} at first/middle/last tile, \
         grid {grid}^3, {} ranks (random seeds {:?} + {}-bit systematic sweep)",
        cfg.schedules(),
        cfg.ranks,
        cfg.random_seeds,
        cfg.systematic_bits
    );
    let report = mpicheck::explore_crash_recovery(&cfg, grid, victim, progress_bar);
    println!();
    summarize("recover", &report)
}

fn run_corrupt(args: &[String]) -> bool {
    let (cfg, grid) = sweep_config(args);
    let victim = parse_flag(args, "--victim").unwrap_or(1) as usize;
    println!(
        "corrupt: {} schedules × (clean + wire corruption + bit-flip in rank \
         {victim} at first/middle/last tile), grid {grid}^3, {} ranks \
         (random seeds {:?} + {}-bit systematic sweep)",
        cfg.schedules(),
        cfg.ranks,
        cfg.random_seeds,
        cfg.systematic_bits
    );
    let report = mpicheck::explore_corruption(&cfg, grid, victim, progress_bar);
    println!();
    summarize("corrupt", &report)
}

fn run_serve(args: &[String]) -> bool {
    let (cfg, grid) = sweep_config(args);
    println!(
        "serve: {} schedules of a co-scheduled tenant mix (persistent job \
         train + foreign-geometry job on one communicator), grid {grid}^3, \
         {} ranks (random seeds {:?} + {}-bit systematic sweep)",
        cfg.schedules(),
        cfg.ranks,
        cfg.random_seeds,
        cfg.systematic_bits
    );
    let report = mpicheck::explore_service(&cfg, grid, progress_bar);
    println!();
    summarize("serve", &report)
}

fn summarize(pass: &str, report: &ExploreReport) -> bool {
    println!(
        "{pass}: {} schedules in {:.1}s — {} failure(s), {} info finding(s)",
        report.schedules_run,
        report.wall,
        report.failures.len(),
        report.info_findings
    );
    for fail in &report.failures {
        println!("  FAILED schedule {}", fail.schedule);
        for f in &fail.findings {
            println!("    {f}");
        }
        if let Some(p) = &fail.panic {
            println!("    panic: {p}");
        }
        if let Some(e) = fail.max_err {
            println!("    max numerical error: {e:.3e}");
        }
    }
    report.is_clean()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    let ok = match args.first().map(String::as_str) {
        Some("lint") => run_lint(&root, &args[1..]),
        Some("explore") => run_explore(&args[1..]),
        Some("pencil") => run_pencil(&args[1..]),
        Some("persist") => run_persist(&args[1..]),
        Some("recover") => run_recover(&args[1..]),
        Some("corrupt") => run_corrupt(&args[1..]),
        Some("serve") => run_serve(&args[1..]),
        Some("check") => {
            let lint_ok = run_lint(&root, &[]);
            let explore_ok = run_explore(&args[1..]);
            // The persistent, recovery, and corruption gates each multiply
            // the per-schedule cost (3 executions / 3 crash positions / 5
            // fault plans), so default them to a fraction of the explore
            // plan: `check` stays under a few minutes while every schedule
            // family still crosses every crash position, every session
            // execution, and every corruption site.
            let mut compact_args = args[1..].to_vec();
            if parse_flag(&compact_args, "--schedules").is_none() {
                compact_args.extend(["--schedules".to_owned(), "80".to_owned()]);
            }
            let pencil_ok = run_pencil(&compact_args);
            let persist_ok = run_persist(&compact_args);
            let recover_ok = run_recover(&compact_args);
            let corrupt_ok = run_corrupt(&compact_args);
            let serve_ok = run_serve(&compact_args);
            let all = lint_ok
                && explore_ok
                && pencil_ok
                && persist_ok
                && recover_ok
                && corrupt_ok
                && serve_ok;
            if all {
                println!("check: all gates passed");
            }
            all
        }
        _ => return usage(),
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
