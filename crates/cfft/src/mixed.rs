//! Mixed-radix Stockham autosort FFT.
//!
//! The workhorse kernel of the crate: an out-of-place decimation-in-
//! frequency Cooley–Tukey that ping-pongs between the data buffer and one
//! scratch buffer of equal size. Stockham's self-sorting formulation needs
//! no bit-reversal pass, and one generic driver covers every radix the
//! factorizer emits (4 and 2 specialised, 3 and 5 with Winograd-style
//! constants, any other prime ≤ 31 through a small O(r²) butterfly).
//!
//! One stage with sub-length `n = r·m` and stride `s` (so `n·s` = total
//! length `N`) maps
//!
//! ```text
//! y[q + s(r·p + v)] = ω_n^{p·v} · Σ_u x[q + s(p + m·u)] · ω_r^{u·v}
//! ```
//!
//! for `p ∈ [0, m)`, `q ∈ [0, s)`, and then recurses on `(m, r·s)` with the
//! buffers swapped. Twiddles come from the single length-`N` table:
//! `ω_n^{p·v} = ω_N^{p·v·s}`.

use crate::complex::Complex64;
use crate::factor::factorize;
use crate::twiddle::{shared_table, TwiddleTable};
use crate::Direction;
use std::sync::Arc;

/// Cosine/sine constants for the specialised odd radices.
const C3: f64 = -0.5; // cos(2π/3)
const S3: f64 = 0.866_025_403_784_438_6; // sin(2π/3)
const C5_1: f64 = 0.309_016_994_374_947_45; // cos(2π/5)
const C5_2: f64 = -0.809_016_994_374_947_5; // cos(4π/5)
const S5_1: f64 = 0.951_056_516_295_153_5; // sin(2π/5)
const S5_2: f64 = 0.587_785_252_292_473_1; // sin(4π/5)

/// A prepared mixed-radix plan for one `(length, direction)` pair.
#[derive(Debug, Clone)]
pub struct MixedRadixPlan {
    n: usize,
    dir: Direction,
    factors: Vec<usize>,
    /// Length-`n` twiddle table shared across plans of the same length.
    table: Arc<TwiddleTable>,
    /// Per-prime ω_r tables for the generic butterfly.
    radix_tables: Vec<Arc<TwiddleTable>>,
}

impl MixedRadixPlan {
    /// Builds a plan, or `None` when `n` has a prime factor the driver does
    /// not handle (the planner then falls back to Bluestein).
    pub fn new(n: usize, dir: Direction) -> Option<Self> {
        let factors = factorize(n)?;
        let radix_tables = factors.iter().map(|&r| shared_table(r, dir)).collect();
        Some(MixedRadixPlan {
            n,
            dir,
            factors,
            table: shared_table(n, dir),
            radix_tables,
        })
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the degenerate length… never: lengths are ≥ 1.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Transform direction.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.dir
    }

    /// The radix sequence executed by [`Self::execute`].
    #[inline]
    pub fn factors(&self) -> &[usize] {
        &self.factors
    }

    /// Executes the transform in place, using `scratch` (same length) as the
    /// ping-pong partner buffer. Unnormalised in both directions, matching
    /// FFTW's convention.
    pub fn execute(&self, data: &mut [Complex64], scratch: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "data length mismatch with plan");
        assert_eq!(scratch.len(), self.n, "scratch length mismatch with plan");
        if self.n == 1 {
            return;
        }

        // Ping-pong between `data` and `scratch`. `in_data` tracks which
        // buffer currently holds the live values.
        let mut in_data = true;
        let mut n = self.n;
        let mut s = 1usize;
        for (stage, &r) in self.factors.iter().enumerate() {
            let m = n / r;
            {
                let (src, dst): (&[Complex64], &mut [Complex64]) = if in_data {
                    (&*data, &mut *scratch)
                } else {
                    (&*scratch, &mut *data)
                };
                self.stage(r, m, s, src, dst, &self.radix_tables[stage]);
            }
            in_data = !in_data;
            n = m;
            s *= r;
        }
        if !in_data {
            data.copy_from_slice(scratch);
        }
    }

    /// One Stockham stage of radix `r`: `n = r·m`, stride `s`.
    fn stage(
        &self,
        r: usize,
        m: usize,
        s: usize,
        src: &[Complex64],
        dst: &mut [Complex64],
        radix_table: &TwiddleTable,
    ) {
        let total = self.n;
        match r {
            2 => stage2(m, s, total, &self.table, src, dst),
            3 => stage3(self.dir, m, s, total, &self.table, src, dst),
            4 => stage4(self.dir, m, s, total, &self.table, src, dst),
            5 => stage5(self.dir, m, s, total, &self.table, src, dst),
            _ => stage_generic(r, m, s, total, &self.table, radix_table, src, dst),
        }
    }
}

/// Advances a twiddle index by `step` modulo `total` without division.
/// Requires `step < total`.
#[inline(always)]
fn advance(idx: &mut usize, step: usize, total: usize) {
    *idx += step;
    if *idx >= total {
        *idx -= total;
    }
}

fn stage2(
    m: usize,
    s: usize,
    total: usize,
    table: &TwiddleTable,
    src: &[Complex64],
    dst: &mut [Complex64],
) {
    let mut widx = 0usize; // ω_N^{p·s}
    for p in 0..m {
        let wp = table.factor_unreduced(widx);
        let i0 = s * p;
        let i1 = s * (p + m);
        let o0 = s * (2 * p);
        let o1 = s * (2 * p + 1);
        for q in 0..s {
            let a = src[q + i0];
            let b = src[q + i1];
            dst[q + o0] = a + b;
            dst[q + o1] = (a - b) * wp;
        }
        advance(&mut widx, s, total);
    }
}

fn stage4(
    dir: Direction,
    m: usize,
    s: usize,
    total: usize,
    table: &TwiddleTable,
    src: &[Complex64],
    dst: &mut [Complex64],
) {
    // ω_4 = −i forward, +i backward.
    let fwd = matches!(dir, Direction::Forward);
    let mut w1 = 0usize;
    for p in 0..m {
        let wp1 = table.factor_unreduced(w1);
        let wp2 = table.factor(2 * w1);
        let wp3 = table.factor(w1 + 2 * w1);
        let i = [s * p, s * (p + m), s * (p + 2 * m), s * (p + 3 * m)];
        let o = [s * 4 * p, s * (4 * p + 1), s * (4 * p + 2), s * (4 * p + 3)];
        for q in 0..s {
            let t0 = src[q + i[0]];
            let t1 = src[q + i[1]];
            let t2 = src[q + i[2]];
            let t3 = src[q + i[3]];
            let a02 = t0 + t2;
            let s02 = t0 - t2;
            let a13 = t1 + t3;
            let s13 = t1 - t3;
            let js13 = if fwd { s13.mul_neg_i() } else { s13.mul_i() };
            dst[q + o[0]] = a02 + a13;
            dst[q + o[1]] = (s02 + js13) * wp1;
            dst[q + o[2]] = (a02 - a13) * wp2;
            dst[q + o[3]] = (s02 - js13) * wp3;
        }
        advance(&mut w1, s, total);
    }
}

fn stage3(
    dir: Direction,
    m: usize,
    s: usize,
    total: usize,
    table: &TwiddleTable,
    src: &[Complex64],
    dst: &mut [Complex64],
) {
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Backward => 1.0,
    };
    let mut w1 = 0usize;
    for p in 0..m {
        let wp1 = table.factor_unreduced(w1);
        let wp2 = table.factor(2 * w1);
        let i = [s * p, s * (p + m), s * (p + 2 * m)];
        let o = [s * 3 * p, s * (3 * p + 1), s * (3 * p + 2)];
        for q in 0..s {
            let t0 = src[q + i[0]];
            let t1 = src[q + i[1]];
            let t2 = src[q + i[2]];
            let a = t1 + t2;
            let b = (t1 - t2).mul_i().scale(sign * S3);
            let base = t0 + a.scale(C3);
            dst[q + o[0]] = t0 + a;
            dst[q + o[1]] = (base + b) * wp1;
            dst[q + o[2]] = (base - b) * wp2;
        }
        advance(&mut w1, s, total);
    }
}

fn stage5(
    dir: Direction,
    m: usize,
    s: usize,
    total: usize,
    table: &TwiddleTable,
    src: &[Complex64],
    dst: &mut [Complex64],
) {
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Backward => 1.0,
    };
    let mut w1 = 0usize;
    for p in 0..m {
        let wp = [
            table.factor_unreduced(w1),
            table.factor(2 * w1),
            table.factor(3 * w1),
            table.factor(4 * w1),
        ];
        let i = [
            s * p,
            s * (p + m),
            s * (p + 2 * m),
            s * (p + 3 * m),
            s * (p + 4 * m),
        ];
        let o0 = s * 5 * p;
        for q in 0..s {
            let t0 = src[q + i[0]];
            let t1 = src[q + i[1]];
            let t2 = src[q + i[2]];
            let t3 = src[q + i[3]];
            let t4 = src[q + i[4]];
            let a1 = t1 + t4;
            let b1 = (t1 - t4).mul_i().scale(sign);
            let a2 = t2 + t3;
            let b2 = (t2 - t3).mul_i().scale(sign);
            let m1 = t0 + a1.scale(C5_1) + a2.scale(C5_2);
            let m2 = t0 + a1.scale(C5_2) + a2.scale(C5_1);
            let v1 = b1.scale(S5_1) + b2.scale(S5_2);
            let v2 = b1.scale(S5_2) - b2.scale(S5_1);
            dst[q + o0] = t0 + a1 + a2;
            dst[q + o0 + s] = (m1 + v1) * wp[0];
            dst[q + o0 + 2 * s] = (m2 + v2) * wp[1];
            dst[q + o0 + 3 * s] = (m2 - v2) * wp[2];
            dst[q + o0 + 4 * s] = (m1 - v1) * wp[3];
        }
        advance(&mut w1, s, total);
    }
}

/// Generic O(r²) butterfly for any remaining prime radix ≤ 31.
#[allow(clippy::too_many_arguments)]
fn stage_generic(
    r: usize,
    m: usize,
    s: usize,
    total: usize,
    table: &TwiddleTable,
    radix_table: &TwiddleTable,
    src: &[Complex64],
    dst: &mut [Complex64],
) {
    debug_assert!(r <= 32);
    let mut t = [Complex64::ZERO; 32];
    let mut w1 = 0usize;
    for p in 0..m {
        for q in 0..s {
            for (u, slot) in t[..r].iter_mut().enumerate() {
                *slot = src[q + s * (p + u * m)];
            }
            for v in 0..r {
                // r-point DFT output v, then the inter-stage twiddle ω_N^{p·v·s}.
                let mut acc = Complex64::ZERO;
                let mut ridx = 0usize;
                for &tu in &t[..r] {
                    acc = tu.mul_add(radix_table.factor_unreduced(ridx), acc);
                    ridx += v;
                    if ridx >= r {
                        ridx -= r;
                    }
                }
                let tw = table.factor(v * w1);
                dst[q + s * (r * p + v)] = acc * tw;
            }
        }
        advance(&mut w1, s, total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_abs_diff;
    use crate::dft::dft;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|j| {
                let x = j as f64;
                Complex64::new((0.3 * x).sin() + 0.1 * x, (0.7 * x).cos() - 0.05 * x)
            })
            .collect()
    }

    fn run(n: usize, dir: Direction) -> (Vec<Complex64>, Vec<Complex64>) {
        let x = signal(n);
        let plan = MixedRadixPlan::new(n, dir).expect("smooth length");
        let mut y = x.clone();
        let mut scratch = vec![Complex64::ZERO; n];
        plan.execute(&mut y, &mut scratch);
        (y, dft(&x, dir))
    }

    #[test]
    fn matches_naive_dft_for_many_smooth_sizes() {
        for n in [
            1usize, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 16, 20, 21, 24, 25, 27, 30, 32, 35, 48, 49,
            60, 64, 81, 100, 105, 121, 125, 128, 135, 169, 240, 243, 256, 343, 384, 512, 625, 640,
        ] {
            let (y, want) = run(n, Direction::Forward);
            let err = max_abs_diff(&y, &want);
            assert!(err < 1e-8 * (n as f64).max(1.0), "n={n} err={err}");
        }
    }

    #[test]
    fn backward_matches_naive_dft() {
        for n in [2usize, 6, 8, 18, 36, 50, 96, 128] {
            let (y, want) = run(n, Direction::Backward);
            assert!(max_abs_diff(&y, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn round_trip_recovers_input() {
        for n in [4usize, 12, 36, 120, 210, 256] {
            let x = signal(n);
            let f = MixedRadixPlan::new(n, Direction::Forward).unwrap();
            let b = MixedRadixPlan::new(n, Direction::Backward).unwrap();
            let mut y = x.clone();
            let mut scratch = vec![Complex64::ZERO; n];
            f.execute(&mut y, &mut scratch);
            b.execute(&mut y, &mut scratch);
            let y: Vec<Complex64> = y.into_iter().map(|v| v / n as f64).collect();
            assert!(max_abs_diff(&y, &x) < 1e-10 * n as f64, "n={n}");
        }
    }

    #[test]
    fn rejects_rough_lengths() {
        assert!(MixedRadixPlan::new(37, Direction::Forward).is_none());
        assert!(MixedRadixPlan::new(2 * 101, Direction::Forward).is_none());
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 144;
        let x = signal(n);
        let plan = MixedRadixPlan::new(n, Direction::Forward).unwrap();
        let mut y = x.clone();
        let mut scratch = vec![Complex64::ZERO; n];
        plan.execute(&mut y, &mut scratch);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum();
        assert!((ey - n as f64 * ex).abs() < 1e-6 * ey.max(1.0));
    }

    #[test]
    fn generic_prime_radices_work() {
        for n in [7usize, 11, 13, 17, 19, 23, 29, 31, 7 * 11, 13 * 4, 29 * 3] {
            let (y, want) = run(n, Direction::Forward);
            assert!(max_abs_diff(&y, &want) < 1e-8 * n as f64, "n={n}");
        }
    }
}
