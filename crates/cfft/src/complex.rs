//! Double-precision complex numbers.
//!
//! A deliberately small, `repr(C)` complex type so the whole workspace can
//! treat buffers of samples as flat `&[Complex64]` slices without pulling in
//! an external numerics dependency. Only the operations the FFT kernels and
//! the spectral examples need are provided.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// Layout-compatible with `[f64; 2]` (and therefore with FFTW's
/// `fftw_complex` and C99 `double complex`), which lets the message-passing
/// layers move buffers of these as plain bytes.
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Bit-level payload view for wire checksums and fault injection: a
/// `Complex64` is 128 bits, `re` first (matching its `repr(C)` layout).
impl faultplan::PayloadBits for Complex64 {
    const BITS: u32 = 128;

    fn fold_bits(&self, h: u64) -> u64 {
        self.im.fold_bits(self.re.fold_bits(h))
    }

    fn flip_bit(&mut self, bit: u32) {
        match bit % 128 {
            b @ 0..=63 => self.re.flip_bit(b),
            b => self.im.flip_bit(b - 64),
        }
    }
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a complex number on the unit circle at angle `theta` radians:
    /// `cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex64 { re: c, im: s }
    }

    /// The complex conjugate `re - im·i`.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// The squared magnitude `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by the imaginary unit (a 90° rotation), cheaper than a
    /// full complex multiply. Used by the radix-4 butterflies.
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        Complex64 {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiplies by `-i` (a −90° rotation).
    #[inline(always)]
    pub fn mul_neg_i(self) -> Self {
        Complex64 {
            re: self.im,
            im: -self.re,
        }
    }

    /// Scales both components by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Fused multiply-add shape `self * b + c`, written so the optimizer can
    /// keep everything in registers in the butterfly hot loops.
    #[inline(always)]
    pub fn mul_add(self, b: Complex64, c: Complex64) -> Self {
        Complex64 {
            re: self.re * b.re - self.im * b.im + c.re,
            im: self.re * b.im + self.im * b.re + c.im,
        }
    }

    /// `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64 {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64 {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline(always)]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:+e}{:+e}i)", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// Maximum absolute component-wise deviation between two complex slices.
///
/// Used throughout the test suites to compare transform outputs against
/// references.
pub fn max_abs_diff(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "slices must have equal length");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x.re - y.re).abs().max((x.im - y.im).abs()))
        .fold(0.0, f64::max)
}

/// Relative L2 error `‖a − b‖ / ‖b‖`, with `‖b‖ = 0` treated as absolute.
pub fn rel_l2_error(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "slices must have equal length");
    let num: f64 = a.iter().zip(b).map(|(x, y)| (*x - *y).norm_sqr()).sum();
    let den: f64 = b.iter().map(|y| y.norm_sqr()).sum();
    // mpicheck:allow(SL012): exact-zero guard before dividing by ‖b‖
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert!(close(z + Complex64::ZERO, z));
        assert!(close(z * Complex64::ONE, z));
        assert!(close(z - z, Complex64::ZERO));
        assert!(close(z / z, Complex64::ONE));
        assert!(close(-(-z), z));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!(close(z * z.conj(), Complex64::new(25.0, 0.0)));
    }

    #[test]
    fn rotations_match_full_multiplies() {
        let z = Complex64::new(1.5, 2.5);
        assert!(close(z.mul_i(), z * Complex64::I));
        assert!(close(z.mul_neg_i(), z * -Complex64::I));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let t = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex64::cis(t);
            assert!((z.abs() - 1.0).abs() < 1e-14);
            // arg() is in (-pi, pi]; compare modulo 2pi so the t = pi
            // boundary (where -pi and pi are the same angle) passes.
            let diff = (z.arg() - t).rem_euclid(2.0 * std::f64::consts::PI);
            assert!(diff < 1e-12 || (2.0 * std::f64::consts::PI - diff) < 1e-12);
        }
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-0.5, 0.25);
        let c = Complex64::new(3.0, -1.0);
        assert!(close(a.mul_add(b, c), a * b + c));
    }

    #[test]
    fn division_by_real() {
        let z = Complex64::new(4.0, -6.0);
        assert!(close(z / 2.0, Complex64::new(2.0, -3.0)));
    }

    #[test]
    fn error_metrics() {
        let a = [Complex64::new(1.0, 0.0), Complex64::new(0.0, 1.0)];
        let b = [Complex64::new(1.0, 0.0), Complex64::new(0.0, 1.0)];
        assert_eq!(max_abs_diff(&a, &b), 0.0);
        assert_eq!(rel_l2_error(&a, &b), 0.0);
        let c = [Complex64::new(1.0, 0.5), Complex64::new(0.0, 1.0)];
        assert!((max_abs_diff(&c, &b) - 0.5).abs() < 1e-15);
        assert!(rel_l2_error(&c, &b) > 0.0);
    }

    #[test]
    fn sum_folds_from_zero() {
        let v = [Complex64::new(1.0, 1.0); 4];
        let s: Complex64 = v.iter().copied().sum();
        assert!(close(s, Complex64::new(4.0, 4.0)));
    }
}
