//! Integer factorization helpers used by the planner.

/// Largest prime radix the mixed-radix (Stockham) driver handles directly.
/// Lengths containing a larger prime factor are routed to Bluestein.
pub const MAX_DIRECT_PRIME: usize = 31;

/// Factorizes `n` into the radix sequence the Stockham driver executes.
///
/// Radix-4 steps are preferred (fewest multiplies per output), then the
/// remaining small primes in increasing order. Returns `None` when `n`
/// contains a prime factor above [`MAX_DIRECT_PRIME`]; such lengths go to
/// the Bluestein kernel instead.
pub fn factorize(mut n: usize) -> Option<Vec<usize>> {
    assert!(n > 0, "cannot factorize zero");
    let mut out = Vec::new();
    while n % 4 == 0 {
        out.push(4);
        n /= 4;
    }
    if n % 2 == 0 {
        out.push(2);
        n /= 2;
    }
    for p in [3usize, 5, 7, 11, 13, 17, 19, 23, 29, 31] {
        while n % p == 0 {
            out.push(p);
            n /= p;
        }
    }
    if n == 1 {
        Some(out)
    } else {
        None
    }
}

/// `true` when `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Smallest power of two `≥ n`.
#[inline]
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

/// The largest prime factor of `n` (1 for `n = 1`).
pub fn largest_prime_factor(mut n: usize) -> usize {
    assert!(n > 0);
    let mut largest = 1;
    let mut p = 2;
    while p * p <= n {
        while n % p == 0 {
            largest = largest.max(p);
            n /= p;
        }
        p += 1;
    }
    if n > 1 {
        largest = largest.max(n);
    }
    largest
}

/// `true` when the mixed-radix driver can transform length `n` directly.
pub fn is_smooth(n: usize) -> bool {
    n > 0 && largest_prime_factor(n) <= MAX_DIRECT_PRIME
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorization_multiplies_back() {
        for n in 1..=2048usize {
            if let Some(fs) = factorize(n) {
                assert_eq!(fs.iter().product::<usize>(), n, "n={n}");
                for f in fs {
                    assert!(f == 4 || (2..=MAX_DIRECT_PRIME).contains(&f));
                }
            } else {
                assert!(largest_prime_factor(n) > MAX_DIRECT_PRIME, "n={n}");
            }
        }
    }

    #[test]
    fn prefers_radix_4() {
        assert_eq!(factorize(16).unwrap(), vec![4, 4]);
        assert_eq!(factorize(8).unwrap(), vec![4, 2]);
        assert_eq!(factorize(2).unwrap(), vec![2]);
        assert_eq!(factorize(1).unwrap(), Vec::<usize>::new());
        assert_eq!(factorize(60).unwrap(), vec![4, 3, 5]);
    }

    #[test]
    fn large_primes_are_rejected() {
        assert!(factorize(37).is_none());
        assert!(factorize(2 * 41).is_none());
        assert!(factorize(31).is_some());
    }

    #[test]
    fn largest_prime_factor_basics() {
        assert_eq!(largest_prime_factor(1), 1);
        assert_eq!(largest_prime_factor(2), 2);
        assert_eq!(largest_prime_factor(360), 5);
        assert_eq!(largest_prime_factor(97), 97);
        assert_eq!(largest_prime_factor(2 * 97), 97);
    }

    #[test]
    fn power_of_two_checks() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(24));
        assert_eq!(next_power_of_two(17), 32);
    }
}
