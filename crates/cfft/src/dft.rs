//! Naive O(N²) discrete Fourier transform.
//!
//! This is the executable definition of Equation (1) in the paper:
//! `Y[k] = Σ_j X[j]·ω_N^(jk)` with `ω_N = e^(−2πi/N)`. Every fast kernel in
//! this crate is validated against it, and the planner falls back to it for
//! tiny lengths where it beats the recursion overhead.

use crate::complex::Complex64;
use crate::twiddle::TwiddleTable;
use crate::Direction;

/// Computes the DFT of `input` into a fresh vector.
pub fn dft(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let mut out = vec![Complex64::ZERO; input.len()];
    dft_into(input, &mut out, dir);
    out
}

/// Computes the DFT of `input` into `output` (lengths must match).
pub fn dft_into(input: &[Complex64], output: &mut [Complex64], dir: Direction) {
    let n = input.len();
    assert_eq!(output.len(), n, "DFT output length must equal input length");
    if n == 0 {
        return;
    }
    let tw = TwiddleTable::new(n, dir);
    for (k, slot) in output.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        let mut idx = 0usize;
        for &x in input {
            acc = x.mul_add(tw.factor(idx), acc);
            // Incremental index keeps us at one modular reduction per term
            // instead of a multiply; exactness of the table makes this safe.
            idx += k;
            if idx >= n {
                idx -= n;
            }
        }
        *slot = acc;
    }
}

/// In-place O(N²) DFT using scratch storage.
pub fn dft_in_place(data: &mut [Complex64], dir: Direction) {
    let out = dft(data, dir);
    data.copy_from_slice(&out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_abs_diff;

    #[test]
    fn empty_input_is_a_no_op() {
        let v: Vec<Complex64> = vec![];
        assert!(dft(&v, Direction::Forward).is_empty());
    }

    #[test]
    fn single_element_is_identity() {
        let v = [Complex64::new(2.5, -1.0)];
        let y = dft(&v, Direction::Forward);
        assert!((y[0] - v[0]).abs() < 1e-15);
    }

    #[test]
    fn impulse_transforms_to_all_ones() {
        let mut v = vec![Complex64::ZERO; 8];
        v[0] = Complex64::ONE;
        let y = dft(&v, Direction::Forward);
        for z in y {
            assert!((z - Complex64::ONE).abs() < 1e-13);
        }
    }

    #[test]
    fn constant_transforms_to_scaled_impulse() {
        let v = vec![Complex64::ONE; 6];
        let y = dft(&v, Direction::Forward);
        assert!((y[0] - Complex64::new(6.0, 0.0)).abs() < 1e-12);
        for z in &y[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn shift_theorem_holds() {
        // DFT(x[j-1]) = DFT(x)[k] * ω^k
        let n = 10;
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::new((j as f64).sin(), (j as f64).cos()))
            .collect();
        let mut shifted = x.clone();
        shifted.rotate_right(1);
        let yx = dft(&x, Direction::Forward);
        let ys = dft(&shifted, Direction::Forward);
        let tw = TwiddleTable::new(n, Direction::Forward);
        for k in 0..n {
            assert!((ys[k] - yx[k] * tw.factor(k)).abs() < 1e-11);
        }
    }

    #[test]
    fn forward_then_backward_recovers_scaled_input() {
        let n = 9;
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::new(j as f64, -(j as f64) * 0.5))
            .collect();
        let y = dft(&x, Direction::Forward);
        let z = dft(&y, Direction::Backward);
        let rescaled: Vec<Complex64> = z.into_iter().map(|v| v / n as f64).collect();
        assert!(max_abs_diff(&rescaled, &x) < 1e-11);
    }

    #[test]
    fn in_place_matches_out_of_place() {
        let n = 7;
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::new(1.0 / (j + 1) as f64, j as f64))
            .collect();
        let mut y = x.clone();
        dft_in_place(&mut y, Direction::Forward);
        assert!(max_abs_diff(&y, &dft(&x, Direction::Forward)) < 1e-13);
    }
}
