//! Rader's algorithm for prime transform lengths.
//!
//! For prime `n`, the multiplicative group mod `n` is cyclic with some
//! generator `g`; reindexing input and output by powers of `g` turns the
//! non-DC part of the DFT into a length-`(n−1)` cyclic convolution:
//!
//! ```text
//! X[g^(−m)] = x[0] + Σ_j x[g^j] · ω^(g^(j−m))
//! ```
//!
//! The convolution runs through zero-padded power-of-two FFTs with the
//! kernel spectrum precomputed at plan time, so execution costs one
//! forward and one inverse FFT — an alternative to Bluestein that the
//! planner can measure against it.

use crate::complex::Complex64;
use crate::mixed::MixedRadixPlan;
use crate::twiddle::shared_table;
use crate::Direction;

/// Returns `true` for prime `n` (trial division; plan-time only).
pub fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2usize;
    while d * d <= n {
        if n % d == 0 {
            return false;
        }
        d += 1;
    }
    true
}

/// Finds a generator of the multiplicative group mod prime `p`.
fn find_generator(p: usize) -> usize {
    // Factor p−1, then test candidates g by checking g^((p−1)/q) ≠ 1 for
    // every prime factor q.
    let m = p - 1;
    let mut factors = Vec::new();
    let mut rem = m;
    let mut d = 2;
    while d * d <= rem {
        if rem % d == 0 {
            factors.push(d);
            while rem % d == 0 {
                rem /= d;
            }
        }
        d += 1;
    }
    if rem > 1 {
        factors.push(rem);
    }
    'cand: for g in 2..p {
        for &q in &factors {
            if pow_mod(g, m / q, p) == 1 {
                continue 'cand;
            }
        }
        return g;
    }
    unreachable!("every prime has a primitive root")
}

fn pow_mod(mut base: usize, mut exp: usize, modulus: usize) -> usize {
    let mut acc = 1u128;
    let mut b = base as u128 % modulus as u128;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * b % modulus as u128;
        }
        b = b * b % modulus as u128;
        exp >>= 1;
    }
    base = acc as usize;
    base
}

/// A prepared Rader plan for one prime `(length, direction)` pair.
pub struct RaderPlan {
    n: usize,
    m: usize,
    dir: Direction,
    /// `perm_in[j] = g^j mod n` — gather order of the inputs.
    perm_in: Vec<usize>,
    /// `perm_out[m] = g^(−m) mod n` — scatter order of the outputs.
    perm_out: Vec<usize>,
    /// Forward FFT (length `pad`) of the cyclically extended kernel
    /// `b[j] = ω^(g^(−j))`.
    kernel_hat: Vec<Complex64>,
    pad: usize,
    fwd: MixedRadixPlan,
    bwd: MixedRadixPlan,
}

impl RaderPlan {
    /// Builds the plan; `None` unless `n` is an odd prime.
    pub fn new(n: usize, dir: Direction) -> Option<Self> {
        if n < 3 || !is_prime(n) {
            return None;
        }
        let m = n - 1;
        let g = find_generator(n);
        let ginv = pow_mod(g, n - 2, n); // g^(p−2) = g^(−1) mod p

        let mut perm_in = Vec::with_capacity(m);
        let mut acc = 1usize;
        for _ in 0..m {
            perm_in.push(acc);
            acc = acc * g % n;
        }
        let mut perm_out = Vec::with_capacity(m);
        let mut acc = 1usize;
        for _ in 0..m {
            perm_out.push(acc);
            acc = acc * ginv % n;
        }

        // Cyclic convolution of length m via padded power-of-two FFTs.
        let pad = if m.is_power_of_two() {
            m
        } else {
            (2 * m - 1).next_power_of_two()
        };
        let fwd = MixedRadixPlan::new(pad, Direction::Forward).expect("pow2 is smooth");
        let bwd = MixedRadixPlan::new(pad, Direction::Backward).expect("pow2 is smooth");

        // Kernel b[j] = ω^(perm_out[j]), wrapped cyclically into the pad.
        let table = shared_table(n, dir);
        let mut ext = vec![Complex64::ZERO; pad];
        for j in 0..m {
            let v = table.factor(perm_out[j]);
            if pad == m {
                ext[j] = v;
            } else {
                // Cyclic wrap: positions j and j + m alias index j mod m.
                ext[j] += v;
                if j > 0 {
                    ext[pad - m + j] += v;
                }
            }
        }
        let mut scratch = vec![Complex64::ZERO; pad];
        let mut kernel_hat = ext;
        fwd.execute(&mut kernel_hat, &mut scratch);

        Some(RaderPlan {
            n,
            m,
            dir,
            perm_in,
            perm_out,
            kernel_hat,
            pad,
            fwd,
            bwd,
        })
    }

    /// Transform length (an odd prime).
    pub fn len(&self) -> usize {
        self.n
    }

    /// `false` — plans always cover at least 3 points.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Transform direction.
    pub fn direction(&self) -> Direction {
        self.dir
    }

    /// Scratch requirement for [`Self::execute`].
    pub fn scratch_len(&self) -> usize {
        2 * self.pad
    }

    /// Executes the (unnormalised) prime-length DFT in place.
    pub fn execute(&self, data: &mut [Complex64], scratch: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "data length mismatch with plan");
        assert!(
            scratch.len() >= 2 * self.pad,
            "scratch must hold 2·pad elements"
        );
        let (a, rest) = scratch.split_at_mut(self.pad);
        let ping = &mut rest[..self.pad];

        let x0 = data[0];
        let sum: Complex64 = data.iter().copied().sum();

        // Gather by powers of g, zero padded.
        for (j, slot) in a[..self.m].iter_mut().enumerate() {
            *slot = data[self.perm_in[j]];
        }
        for slot in a[self.m..].iter_mut() {
            *slot = Complex64::ZERO;
        }

        self.fwd.execute(a, ping);
        for (ai, ki) in a.iter_mut().zip(&self.kernel_hat) {
            *ai *= *ki;
        }
        self.bwd.execute(a, ping);
        let inv = 1.0 / self.pad as f64;

        data[0] = sum;
        for mi in 0..self.m {
            data[self.perm_out[mi]] = x0 + a[mi].scale(inv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_abs_diff;
    use crate::dft::dft;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|j| Complex64::new((j as f64 * 0.23).sin(), (j as f64 * 0.61).cos() - 0.1))
            .collect()
    }

    #[test]
    fn primality_and_generators() {
        assert!(is_prime(2) && is_prime(3) && is_prime(31) && is_prime(257));
        assert!(!is_prime(1) && !is_prime(9) && !is_prime(91));
        for p in [3usize, 5, 7, 11, 13, 101] {
            let g = find_generator(p);
            // g generates: the powers hit every nonzero residue.
            let mut seen = vec![false; p];
            let mut acc = 1;
            for _ in 0..p - 1 {
                assert!(!seen[acc], "g={g} repeats early for p={p}");
                seen[acc] = true;
                acc = acc * g % p;
            }
        }
    }

    #[test]
    fn matches_naive_dft_for_primes() {
        for n in [3usize, 5, 7, 11, 13, 17, 31, 61, 97, 127, 257] {
            let x = signal(n);
            let plan = RaderPlan::new(n, Direction::Forward).unwrap();
            let mut y = x.clone();
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.execute(&mut y, &mut scratch);
            let want = dft(&x, Direction::Forward);
            let err = max_abs_diff(&y, &want);
            assert!(err < 1e-8 * n as f64, "n={n} err={err}");
        }
    }

    #[test]
    fn backward_direction_works() {
        for n in [5usize, 13, 101] {
            let x = signal(n);
            let plan = RaderPlan::new(n, Direction::Backward).unwrap();
            let mut y = x.clone();
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.execute(&mut y, &mut scratch);
            assert!(max_abs_diff(&y, &dft(&x, Direction::Backward)) < 1e-8 * n as f64);
        }
    }

    #[test]
    fn rejects_composites_and_tiny() {
        assert!(RaderPlan::new(9, Direction::Forward).is_none());
        assert!(RaderPlan::new(2, Direction::Forward).is_none());
        assert!(RaderPlan::new(1, Direction::Forward).is_none());
    }

    #[test]
    fn agrees_with_bluestein() {
        use crate::bluestein::BluesteinPlan;
        let n = 127;
        let x = signal(n);
        let r = RaderPlan::new(n, Direction::Forward).unwrap();
        let b = BluesteinPlan::new(n, Direction::Forward);
        let mut yr = x.clone();
        let mut sr = vec![Complex64::ZERO; r.scratch_len()];
        r.execute(&mut yr, &mut sr);
        let mut yb = x.clone();
        let mut sb = vec![Complex64::ZERO; 2 * b.conv_len()];
        b.execute(&mut yb, &mut sb);
        assert!(max_abs_diff(&yr, &yb) < 1e-8 * n as f64);
    }

    #[test]
    fn round_trip_through_rader() {
        let n = 61;
        let x = signal(n);
        let f = RaderPlan::new(n, Direction::Forward).unwrap();
        let b = RaderPlan::new(n, Direction::Backward).unwrap();
        let mut y = x.clone();
        let mut scratch = vec![Complex64::ZERO; f.scratch_len().max(b.scratch_len())];
        f.execute(&mut y, &mut scratch);
        b.execute(&mut y, &mut scratch);
        let y: Vec<Complex64> = y.into_iter().map(|v| v / n as f64).collect();
        assert!(max_abs_diff(&y, &x) < 1e-9 * n as f64);
    }
}
