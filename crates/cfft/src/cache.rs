//! Process-wide plan cache — FFTW's "wisdom" amortisation for this crate.
//!
//! [`Planner`] already memoises plans, but each planner instance is private
//! to one call site: a transform entry point that constructs its own planner
//! re-measures every kernel on every invocation, which at
//! [`Rigor::Measure`]/[`Rigor::Patient`] costs orders of magnitude more than
//! the transform itself. [`PlanCache`] hoists that memoisation to process
//! scope: one thread-safe map keyed by `(n, direction, rigor)` that every
//! caller — the distributed pipeline, the serial reference, the pencil
//! path, many rank threads at once — draws [`Arc<Plan1d>`]s from.
//!
//! Concurrency discipline: the whole operation (lookup, and on a miss the
//! kernel measurement) happens under one `parking_lot`-style mutex. Holding
//! the lock across planning is deliberate — when `p` rank threads ask for
//! the same geometry simultaneously, one measures and the rest block and
//! then hit, rather than all `p` measuring redundantly. Plans execute
//! through `&self`, so the lock is never held during a transform.

use crate::planner::{Plan1d, Planner, Rigor};
use crate::Direction;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Default capacity of [`PlanCache::global`] — far above any realistic
/// working set (a 3-D transform needs at most 3 lengths × 2 directions),
/// but bounded so a pathological caller cannot grow the map without limit.
const DEFAULT_CAPACITY: usize = 512;

struct Entry {
    plan: Arc<Plan1d>,
    /// Logical clock of the last hit, for least-recently-used eviction.
    last_used: u64,
}

struct Inner {
    map: HashMap<(usize, Direction, Rigor), Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    planning: Duration,
}

/// Counters describing a cache's lifetime behaviour (reported by the
/// `kernels` bench and useful in tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the map.
    pub hits: u64,
    /// Lookups that had to plan.
    pub misses: u64,
    /// Entries evicted to stay under capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Total wall-clock spent planning on misses.
    pub planning: Duration,
}

/// A process-wide, thread-safe store of [`Plan1d`]s keyed by
/// `(n, direction, rigor)`. See the module docs for the locking discipline.
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl PlanCache {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty cache evicting least-recently-used entries beyond
    /// `capacity` (≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be ≥ 1");
        PlanCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                planning: Duration::ZERO,
            }),
            capacity,
        }
    }

    /// The shared process-wide instance every transform entry point uses.
    pub fn global() -> &'static PlanCache {
        static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
        GLOBAL.get_or_init(PlanCache::new)
    }

    /// Returns the cached plan for `(n, dir, rigor)`, planning (and
    /// caching) on first use.
    pub fn plan(&self, n: usize, dir: Direction, rigor: Rigor) -> Arc<Plan1d> {
        self.plan_timed(n, dir, rigor).0
    }

    /// [`Self::plan`] plus the planning time this call actually incurred:
    /// exactly [`Duration::ZERO`] on a hit, the measured planning cost on a
    /// miss. Callers accumulate this into their per-run statistics, so a
    /// run whose geometry is already cached reports zero planning work.
    pub fn plan_timed(&self, n: usize, dir: Direction, rigor: Rigor) -> (Arc<Plan1d>, Duration) {
        assert!(n >= 1, "transform length must be ≥ 1");
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(e) = inner.map.get_mut(&(n, dir, rigor)) {
            e.last_used = clock;
            let plan = e.plan.clone();
            inner.hits += 1;
            return (plan, Duration::ZERO);
        }
        // Miss: measure while holding the lock so concurrent requests for
        // the same geometry wait for this measurement instead of repeating
        // it. A transient Planner performs (and times) the measurement.
        let mut planner = Planner::new(rigor);
        let plan = planner.plan(n, dir);
        let spent = planner.planning_time();
        inner.misses += 1;
        inner.planning += spent;
        if inner.map.len() >= self.capacity {
            // Evict the least-recently-used entry (never the one being
            // inserted — it is not in the map yet).
            if let Some(&victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.map.remove(&victim);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            (n, dir, rigor),
            Entry {
                plan: plan.clone(),
                last_used: clock,
            },
        );
        (plan, spent)
    }

    /// A snapshot of the cache's counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            planning: inner.planning,
        }
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_and_costs_zero_planning() {
        let cache = PlanCache::new();
        let (a, t_miss) = cache.plan_timed(96, Direction::Forward, Rigor::Estimate);
        let (b, t_hit) = cache.plan_timed(96, Direction::Forward, Rigor::Estimate);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(t_hit, Duration::ZERO);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.planning, t_miss);
    }

    #[test]
    fn keys_separate_direction_and_rigor() {
        let cache = PlanCache::new();
        let f = cache.plan(64, Direction::Forward, Rigor::Estimate);
        let b = cache.plan(64, Direction::Backward, Rigor::Estimate);
        let m = cache.plan(64, Direction::Forward, Rigor::Measure);
        assert!(!Arc::ptr_eq(&f, &b));
        assert!(!Arc::ptr_eq(&f, &m));
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn eviction_is_lru_and_counted() {
        let cache = PlanCache::with_capacity(2);
        let a1 = cache.plan(8, Direction::Forward, Rigor::Estimate);
        cache.plan(16, Direction::Forward, Rigor::Estimate);
        // Touch 8 so 16 is the LRU entry when 32 arrives.
        let a2 = cache.plan(8, Direction::Forward, Rigor::Estimate);
        assert!(Arc::ptr_eq(&a1, &a2));
        cache.plan(32, Direction::Forward, Rigor::Estimate);
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        // 8 survived, 16 was evicted: looking 8 up again is a hit.
        let hits_before = cache.stats().hits;
        cache.plan(8, Direction::Forward, Rigor::Estimate);
        assert_eq!(cache.stats().hits, hits_before + 1);
    }

    #[test]
    fn a_hit_refreshes_recency_so_the_untouched_entry_is_evicted() {
        // Pins the LRU bookkeeping precisely: a *hit* must bump
        // `last_used`, otherwise insertion order alone would decide the
        // victim and the hot entry would be thrown away.
        let cache = PlanCache::with_capacity(2);
        cache.plan(8, Direction::Forward, Rigor::Estimate); // clock 1
        cache.plan(16, Direction::Forward, Rigor::Estimate); // clock 2
        cache.plan(8, Direction::Forward, Rigor::Estimate); // hit, clock 3
        cache.plan(32, Direction::Forward, Rigor::Estimate); // evicts 16
        let misses_before = cache.stats().misses;
        cache.plan(8, Direction::Forward, Rigor::Estimate);
        assert_eq!(cache.stats().misses, misses_before, "8 must have survived");
        cache.plan(16, Direction::Forward, Rigor::Estimate);
        assert_eq!(
            cache.stats().misses,
            misses_before + 1,
            "16 (untouched since insert) must have been the victim"
        );
    }

    #[test]
    fn insert_at_capacity_never_evicts_the_inserted_key() {
        // The eviction scan runs before the insert, so the fresh key is not
        // yet in the map and can never be chosen as its own victim — even
        // at capacity 1, where it is the only resident entry afterwards.
        let cache = PlanCache::with_capacity(1);
        cache.plan(8, Direction::Forward, Rigor::Estimate);
        cache.plan(16, Direction::Forward, Rigor::Estimate);
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (1, 1));
        let hits_before = s.hits;
        cache.plan(16, Direction::Forward, Rigor::Estimate);
        assert_eq!(
            cache.stats().hits,
            hits_before + 1,
            "the entry inserted at capacity must itself be resident"
        );
    }

    #[test]
    fn global_is_shared_across_call_sites() {
        let a = PlanCache::global().plan(40, Direction::Forward, Rigor::Estimate);
        let b = PlanCache::global().plan(40, Direction::Forward, Rigor::Estimate);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn concurrent_requests_converge_on_one_plan() {
        let cache = std::sync::Arc::new(PlanCache::new());
        let plans: Vec<Arc<Plan1d>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = cache.clone();
                    s.spawn(move || cache.plan(120, Direction::Forward, Rigor::Estimate))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("planner thread must not panic"))
                .collect()
        });
        for p in &plans[1..] {
            assert!(Arc::ptr_eq(&plans[0], p));
        }
        assert_eq!(cache.stats().misses, 1);
    }
}
