//! Batched, strided 1-D transforms — the crate's analogue of FFTW's
//! "advanced" interface (`fftw_plan_many_dft`).
//!
//! The 3-D pipeline transforms thousands of equal-length lines per step
//! (all `z`-lines of a slab, all `y`-lines of a tile, …). This module runs
//! one [`Plan1d`] over such a batch, described by an element `stride` within
//! a line and a `dist` between consecutive lines, gathering non-unit-stride
//! lines through a contiguous bounce buffer.

use crate::complex::Complex64;
use crate::planner::Plan1d;

/// Geometry of a batch of equal-length lines inside a flat buffer.
///
/// Line `l`, element `j` lives at offset `l·dist + j·stride`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchLayout {
    /// Number of lines.
    pub howmany: usize,
    /// Distance (in elements) between consecutive elements of one line.
    pub stride: usize,
    /// Distance (in elements) between the first elements of consecutive lines.
    pub dist: usize,
}

impl BatchLayout {
    /// Contiguous lines laid end to end: `stride = 1`, `dist = n`.
    pub fn contiguous(n: usize, howmany: usize) -> Self {
        BatchLayout {
            howmany,
            stride: 1,
            dist: n,
        }
    }

    /// Smallest buffer length able to hold this batch of `n`-length lines.
    pub fn required_len(&self, n: usize) -> usize {
        if self.howmany == 0 || n == 0 {
            return 0;
        }
        (self.howmany - 1) * self.dist + (n - 1) * self.stride + 1
    }
}

/// Scratch for [`execute_batch`]: one plan-scratch region plus a bounce
/// line for strided gathers.
pub struct BatchScratch {
    plan_scratch: Vec<Complex64>,
    line: Vec<Complex64>,
}

impl BatchScratch {
    /// Sized for `plan`.
    pub fn for_plan(plan: &Plan1d) -> Self {
        BatchScratch {
            plan_scratch: vec![Complex64::ZERO; plan.scratch_len()],
            line: vec![Complex64::ZERO; plan.len()],
        }
    }
}

/// Executes `plan` over every line of `layout` inside `data`, in place.
///
/// # Panics
/// If `data` is too short for the layout, or lines overlap (overlap is only
/// diagnosed cheaply: zero `dist` with multiple lines).
pub fn execute_batch(
    plan: &Plan1d,
    data: &mut [Complex64],
    layout: BatchLayout,
    scratch: &mut BatchScratch,
) {
    let n = plan.len();
    assert!(
        data.len() >= layout.required_len(n),
        "batch layout exceeds buffer: need {}, have {}",
        layout.required_len(n),
        data.len()
    );
    assert!(
        layout.howmany <= 1 || layout.dist != 0,
        "batch lines would alias (dist = 0)"
    );
    if layout.stride == 1 {
        for l in 0..layout.howmany {
            let start = l * layout.dist;
            plan.execute(&mut data[start..start + n], &mut scratch.plan_scratch);
        }
    } else {
        for l in 0..layout.howmany {
            let base = l * layout.dist;
            for j in 0..n {
                scratch.line[j] = data[base + j * layout.stride];
            }
            plan.execute(&mut scratch.line, &mut scratch.plan_scratch);
            for j in 0..n {
                data[base + j * layout.stride] = scratch.line[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_abs_diff;
    use crate::dft::dft;
    use crate::planner::{Planner, Rigor};
    use crate::Direction;

    fn signal(len: usize) -> Vec<Complex64> {
        (0..len)
            .map(|j| Complex64::new((j as f64 * 0.13).sin(), (j as f64 * 0.29).cos()))
            .collect()
    }

    #[test]
    fn contiguous_batch_matches_per_line_dft() {
        let n = 24;
        let howmany = 5;
        let mut planner = Planner::new(Rigor::Estimate);
        let plan = planner.plan(n, Direction::Forward);
        let mut data = signal(n * howmany);
        let orig = data.clone();
        let mut scratch = BatchScratch::for_plan(&plan);
        execute_batch(
            &plan,
            &mut data,
            BatchLayout::contiguous(n, howmany),
            &mut scratch,
        );
        for l in 0..howmany {
            let want = dft(&orig[l * n..(l + 1) * n], Direction::Forward);
            assert!(max_abs_diff(&data[l * n..(l + 1) * n], &want) < 1e-9 * n as f64);
        }
    }

    #[test]
    fn strided_batch_matches_gathered_dft() {
        // Lines are the columns of a 6×8 row-major matrix: stride 8, dist 1.
        let (rows, cols) = (6usize, 8usize);
        let mut planner = Planner::new(Rigor::Estimate);
        let plan = planner.plan(rows, Direction::Forward);
        let mut data = signal(rows * cols);
        let orig = data.clone();
        let layout = BatchLayout {
            howmany: cols,
            stride: cols,
            dist: 1,
        };
        let mut scratch = BatchScratch::for_plan(&plan);
        execute_batch(&plan, &mut data, layout, &mut scratch);
        for c in 0..cols {
            let col: Vec<Complex64> = (0..rows).map(|r| orig[r * cols + c]).collect();
            let want = dft(&col, Direction::Forward);
            let got: Vec<Complex64> = (0..rows).map(|r| data[r * cols + c]).collect();
            assert!(max_abs_diff(&got, &want) < 1e-9 * rows as f64, "col={c}");
        }
    }

    #[test]
    fn required_len_formula() {
        let l = BatchLayout {
            howmany: 3,
            stride: 2,
            dist: 10,
        };
        assert_eq!(l.required_len(4), 2 * 10 + 3 * 2 + 1);
        assert_eq!(BatchLayout::contiguous(8, 0).required_len(8), 0);
    }

    #[test]
    #[should_panic(expected = "batch layout exceeds buffer")]
    fn short_buffer_is_rejected() {
        let mut planner = Planner::new(Rigor::Estimate);
        let plan = planner.plan(16, Direction::Forward);
        let mut data = signal(16);
        let mut scratch = BatchScratch::for_plan(&plan);
        execute_batch(
            &plan,
            &mut data,
            BatchLayout::contiguous(16, 2),
            &mut scratch,
        );
    }

    #[test]
    #[should_panic(expected = "alias")]
    fn aliasing_batch_is_rejected() {
        let mut planner = Planner::new(Rigor::Estimate);
        let plan = planner.plan(4, Direction::Forward);
        let mut data = signal(4);
        let mut scratch = BatchScratch::for_plan(&plan);
        execute_batch(
            &plan,
            &mut data,
            BatchLayout {
                howmany: 2,
                stride: 1,
                dist: 0,
            },
            &mut scratch,
        );
    }

    #[test]
    fn zero_lines_is_a_no_op() {
        let mut planner = Planner::new(Rigor::Estimate);
        let plan = planner.plan(8, Direction::Forward);
        let mut data: Vec<Complex64> = vec![];
        let mut scratch = BatchScratch::for_plan(&plan);
        execute_batch(
            &plan,
            &mut data,
            BatchLayout::contiguous(8, 0),
            &mut scratch,
        );
    }
}
