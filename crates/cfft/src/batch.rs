//! Batched, strided 1-D transforms — the crate's analogue of FFTW's
//! "advanced" interface (`fftw_plan_many_dft`).
//!
//! The 3-D pipeline transforms thousands of equal-length lines per step
//! (all `z`-lines of a slab, all `y`-lines of a tile, …). This module runs
//! one [`Plan1d`] over such a batch, described by an element `stride` within
//! a line and a `dist` between consecutive lines, gathering non-unit-stride
//! lines through a contiguous bounce buffer.

use crate::complex::Complex64;
use crate::planner::Plan1d;

/// Does any pair of distinct lines in `layout` (length `n`) touch a common
/// element, or any single line revisit an offset?
///
/// Line `l`, element `j` lives at `l·dist + j·stride`, so lines `l` and
/// `l + k` collide iff `k·dist = m·stride` for some `0 ≤ m ≤ n−1` — which is
/// what the loop below searches for. Interleavings are *allowed* as long as
/// they miss each other: the columns of a row-major matrix
/// (`stride = cols`, `dist = 1`, `howmany = cols`) are a legal batch because
/// `k·1` is never a multiple of `cols` for `k < cols`.
pub fn lines_alias(layout: BatchLayout, n: usize) -> bool {
    if n == 0 || layout.howmany == 0 {
        return false;
    }
    if layout.stride == 0 && n > 1 {
        // A single line writes the same offset n times.
        return true;
    }
    if layout.dist == 0 && layout.howmany > 1 {
        return true;
    }
    if layout.stride == 0 {
        // n == 1 and dist > 0: singleton lines at distinct offsets.
        return false;
    }
    for k in 1..layout.howmany {
        let d = k * layout.dist;
        if d > (n - 1) * layout.stride {
            // dist > 0 here (dist == 0 returned above), so separations only
            // grow with k: no farther pair can collide either.
            break;
        }
        if d % layout.stride == 0 {
            return true;
        }
    }
    false
}

/// Geometry of a batch of equal-length lines inside a flat buffer.
///
/// Line `l`, element `j` lives at offset `l·dist + j·stride`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchLayout {
    /// Number of lines.
    pub howmany: usize,
    /// Distance (in elements) between consecutive elements of one line.
    pub stride: usize,
    /// Distance (in elements) between the first elements of consecutive lines.
    pub dist: usize,
}

impl BatchLayout {
    /// Contiguous lines laid end to end: `stride = 1`, `dist = n`.
    pub fn contiguous(n: usize, howmany: usize) -> Self {
        BatchLayout {
            howmany,
            stride: 1,
            dist: n,
        }
    }

    /// Smallest buffer length able to hold this batch of `n`-length lines.
    pub fn required_len(&self, n: usize) -> usize {
        if self.howmany == 0 || n == 0 {
            return 0;
        }
        (self.howmany - 1) * self.dist + (n - 1) * self.stride + 1
    }
}

/// Scratch for [`execute_batch`]: one plan-scratch region plus a bounce
/// line for strided gathers.
pub struct BatchScratch {
    plan_scratch: Vec<Complex64>,
    line: Vec<Complex64>,
}

impl BatchScratch {
    /// Sized for `plan`.
    pub fn for_plan(plan: &Plan1d) -> Self {
        BatchScratch {
            plan_scratch: vec![Complex64::ZERO; plan.scratch_len()],
            line: vec![Complex64::ZERO; plan.len()],
        }
    }
}

/// Executes `plan` over every line of `layout` inside `data`, in place.
///
/// # Panics
/// If `data` is too short for the layout, or any two lines overlap (or a
/// line self-overlaps) per [`lines_alias`].
pub fn execute_batch(
    plan: &Plan1d,
    data: &mut [Complex64],
    layout: BatchLayout,
    scratch: &mut BatchScratch,
) {
    let n = plan.len();
    assert!(
        data.len() >= layout.required_len(n),
        "batch layout exceeds buffer: need {}, have {}",
        layout.required_len(n),
        data.len()
    );
    assert!(
        !lines_alias(layout, n),
        "batch lines would alias: {layout:?} with n = {n}"
    );
    if layout.stride == 1 {
        for l in 0..layout.howmany {
            let start = l * layout.dist;
            plan.execute(&mut data[start..start + n], &mut scratch.plan_scratch);
        }
    } else {
        for l in 0..layout.howmany {
            let base = l * layout.dist;
            for j in 0..n {
                scratch.line[j] = data[base + j * layout.stride];
            }
            plan.execute(&mut scratch.line, &mut scratch.plan_scratch);
            for j in 0..n {
                data[base + j * layout.stride] = scratch.line[j];
            }
        }
    }
}

/// Splits sorted, pairwise-disjoint rows of `data` into at most `threads`
/// contiguous groups of non-overlapping `&mut` slices and runs `per_chunk`
/// on each group concurrently.
///
/// `start_of` extracts a row's first offset from its descriptor; row `r`
/// occupies `data[start_of(r)..start_of(r) + n]`. Safety rests entirely on
/// the sorted/disjoint precondition (asserted below): group boundaries then
/// carve `data` into disjoint regions via `split_at_mut`, with no `unsafe`.
fn run_row_chunks<M: Sync>(
    data: &mut [Complex64],
    n: usize,
    rows: &[M],
    threads: usize,
    start_of: impl Fn(&M) -> usize + Sync + Copy,
    per_chunk: impl Fn(&mut [Complex64], &[M], usize) + Sync,
) {
    if rows.is_empty() || n == 0 {
        return;
    }
    for w in rows.windows(2) {
        let (a, b) = (start_of(&w[0]), start_of(&w[1]));
        assert!(
            a + n <= b,
            "rows must be sorted and non-overlapping: [{a}, {}) vs [{b}, ..)",
            a + n
        );
    }
    let last = start_of(&rows[rows.len() - 1]);
    assert!(
        last + n <= data.len(),
        "row [{last}, {}) exceeds buffer of {}",
        last + n,
        data.len()
    );
    if threads <= 1 || rows.len() <= 1 {
        per_chunk(data, rows, 0);
        return;
    }
    let nchunks = threads.min(rows.len());
    let per = rows.len().div_ceil(nchunks);
    let mut rest: &mut [Complex64] = data;
    let mut consumed = 0usize;
    let mut tasks: Vec<(&mut [Complex64], &[M], usize)> = Vec::with_capacity(nchunks);
    for chunk in rows.chunks(per) {
        let lo = start_of(&chunk[0]);
        let hi = start_of(&chunk[chunk.len() - 1]) + n;
        let tail = std::mem::take(&mut rest);
        let (_, tail) = tail.split_at_mut(lo - consumed);
        let (mine, tail) = tail.split_at_mut(hi - lo);
        rest = tail;
        consumed = hi;
        tasks.push((mine, chunk, lo));
    }
    let per_chunk = &per_chunk;
    rayon::scope(|s| {
        for (slice, chunk, lo) in tasks {
            s.spawn(move |_| per_chunk(slice, chunk, lo));
        }
    });
}

/// Executes `plan` over the rows `data[s..s + plan.len()]` for each `s` in
/// `starts`, spreading contiguous groups of rows over up to `threads`
/// workers. Each worker owns a freshly created [`BatchScratch`] — scratch is
/// never shared — so the per-row arithmetic is identical to the sequential
/// path and the output is bit-identical for every thread count.
///
/// # Panics
/// If `starts` is not sorted ascending with gaps of at least `plan.len()`,
/// or any row exceeds `data`.
pub fn execute_lines_threaded(
    plan: &Plan1d,
    data: &mut [Complex64],
    starts: &[usize],
    threads: usize,
) {
    let n = plan.len();
    run_row_chunks(
        data,
        n,
        starts,
        threads,
        |&s| s,
        |slice, chunk, lo| {
            let mut scratch = BatchScratch::for_plan(plan);
            for &s in chunk {
                let r = s - lo;
                plan.execute(&mut slice[r..r + n], &mut scratch.plan_scratch);
            }
        },
    );
}

/// Runs `f` over sorted, pairwise-disjoint rows of `data` — row `i` is
/// `data[rows[i].0..rows[i].0 + n]`, and `f` also receives the row's
/// metadata `rows[i].1` — spreading contiguous groups of rows over up to
/// `threads` workers. This is the parallel backbone of the pipeline's
/// Unpack step: metadata carries the `(z, y)` coordinates a row needs to
/// locate its source elements in a shared receive buffer.
///
/// # Panics
/// If rows are not sorted ascending with gaps of at least `n`, or any row
/// exceeds `data`.
pub fn for_each_row_threaded<M: Sync>(
    data: &mut [Complex64],
    n: usize,
    rows: &[(usize, M)],
    threads: usize,
    f: impl Fn(&mut [Complex64], &M) + Sync,
) {
    run_row_chunks(
        data,
        n,
        rows,
        threads,
        |row| row.0,
        |slice, chunk, lo| {
            for (s, meta) in chunk {
                let r = s - lo;
                f(&mut slice[r..r + n], meta);
            }
        },
    );
}

/// Splits `data` at `bounds` into the parts `data[bounds[i]..bounds[i + 1]]`
/// and runs `f(i, part)` for each, spreading contiguous groups of parts over
/// up to `threads` workers. This is the parallel backbone of the pipeline's
/// Pack step: `bounds` are the per-destination-rank displacements into the
/// send buffer, so each worker owns whole destination blocks.
///
/// # Panics
/// If `bounds` is not sorted ascending or exceeds `data`.
pub fn for_each_part_threaded(
    data: &mut [Complex64],
    bounds: &[usize],
    threads: usize,
    f: impl Fn(usize, &mut [Complex64]) + Sync,
) {
    let nparts = bounds.len().saturating_sub(1);
    if nparts == 0 {
        return;
    }
    for w in bounds.windows(2) {
        assert!(w[0] <= w[1], "bounds must be sorted: {} > {}", w[0], w[1]);
    }
    assert!(
        bounds[nparts] <= data.len(),
        "bounds exceed buffer: {} > {}",
        bounds[nparts],
        data.len()
    );
    if threads <= 1 || nparts == 1 {
        for i in 0..nparts {
            f(i, &mut data[bounds[i]..bounds[i + 1]]);
        }
        return;
    }
    let nchunks = threads.min(nparts);
    let per = nparts.div_ceil(nchunks);
    let mut rest: &mut [Complex64] = data;
    let mut consumed = 0usize;
    let mut tasks: Vec<(&mut [Complex64], usize, usize)> = Vec::with_capacity(nchunks);
    let mut i = 0;
    while i < nparts {
        let count = per.min(nparts - i);
        let (lo, hi) = (bounds[i], bounds[i + count]);
        let tail = std::mem::take(&mut rest);
        let (_, tail) = tail.split_at_mut(lo - consumed);
        let (mine, tail) = tail.split_at_mut(hi - lo);
        rest = tail;
        consumed = hi;
        tasks.push((mine, i, count));
        i += count;
    }
    let f = &f;
    let bounds_ref = bounds;
    rayon::scope(|s| {
        for (slice, first, count) in tasks {
            s.spawn(move |_| {
                let base = bounds_ref[first];
                for p in first..first + count {
                    let (plo, phi) = (bounds_ref[p] - base, bounds_ref[p + 1] - base);
                    f(p, &mut slice[plo..phi]);
                }
            });
        }
    });
}

/// [`execute_batch`] spread over up to `threads` workers.
///
/// Only unit-stride layouts run in parallel: after the alias check,
/// `stride == 1` guarantees `dist ≥ n`, so lines are disjoint ascending
/// slices that [`execute_lines_threaded`] can hand to separate workers.
/// Strided (gather/scatter) layouts and `threads ≤ 1` fall back to the
/// sequential path with a local scratch.
pub fn execute_batch_threaded(
    plan: &Plan1d,
    data: &mut [Complex64],
    layout: BatchLayout,
    threads: usize,
) {
    let n = plan.len();
    assert!(
        data.len() >= layout.required_len(n),
        "batch layout exceeds buffer: need {}, have {}",
        layout.required_len(n),
        data.len()
    );
    assert!(
        !lines_alias(layout, n),
        "batch lines would alias: {layout:?} with n = {n}"
    );
    if threads <= 1 || layout.howmany <= 1 || layout.stride != 1 {
        let mut scratch = BatchScratch::for_plan(plan);
        execute_batch(plan, data, layout, &mut scratch);
        return;
    }
    let starts: Vec<usize> = (0..layout.howmany).map(|l| l * layout.dist).collect();
    execute_lines_threaded(plan, data, &starts, threads);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_abs_diff;
    use crate::dft::dft;
    use crate::planner::{Planner, Rigor};
    use crate::Direction;

    fn signal(len: usize) -> Vec<Complex64> {
        (0..len)
            .map(|j| Complex64::new((j as f64 * 0.13).sin(), (j as f64 * 0.29).cos()))
            .collect()
    }

    #[test]
    fn contiguous_batch_matches_per_line_dft() {
        let n = 24;
        let howmany = 5;
        let mut planner = Planner::new(Rigor::Estimate);
        let plan = planner.plan(n, Direction::Forward);
        let mut data = signal(n * howmany);
        let orig = data.clone();
        let mut scratch = BatchScratch::for_plan(&plan);
        execute_batch(
            &plan,
            &mut data,
            BatchLayout::contiguous(n, howmany),
            &mut scratch,
        );
        for l in 0..howmany {
            let want = dft(&orig[l * n..(l + 1) * n], Direction::Forward);
            assert!(max_abs_diff(&data[l * n..(l + 1) * n], &want) < 1e-9 * n as f64);
        }
    }

    #[test]
    fn strided_batch_matches_gathered_dft() {
        // Lines are the columns of a 6×8 row-major matrix: stride 8, dist 1.
        let (rows, cols) = (6usize, 8usize);
        let mut planner = Planner::new(Rigor::Estimate);
        let plan = planner.plan(rows, Direction::Forward);
        let mut data = signal(rows * cols);
        let orig = data.clone();
        let layout = BatchLayout {
            howmany: cols,
            stride: cols,
            dist: 1,
        };
        let mut scratch = BatchScratch::for_plan(&plan);
        execute_batch(&plan, &mut data, layout, &mut scratch);
        for c in 0..cols {
            let col: Vec<Complex64> = (0..rows).map(|r| orig[r * cols + c]).collect();
            let want = dft(&col, Direction::Forward);
            let got: Vec<Complex64> = (0..rows).map(|r| data[r * cols + c]).collect();
            assert!(max_abs_diff(&got, &want) < 1e-9 * rows as f64, "col={c}");
        }
    }

    #[test]
    fn required_len_formula() {
        let l = BatchLayout {
            howmany: 3,
            stride: 2,
            dist: 10,
        };
        assert_eq!(l.required_len(4), 2 * 10 + 3 * 2 + 1);
        assert_eq!(BatchLayout::contiguous(8, 0).required_len(8), 0);
    }

    #[test]
    #[should_panic(expected = "batch layout exceeds buffer")]
    fn short_buffer_is_rejected() {
        let mut planner = Planner::new(Rigor::Estimate);
        let plan = planner.plan(16, Direction::Forward);
        let mut data = signal(16);
        let mut scratch = BatchScratch::for_plan(&plan);
        execute_batch(
            &plan,
            &mut data,
            BatchLayout::contiguous(16, 2),
            &mut scratch,
        );
    }

    #[test]
    #[should_panic(expected = "alias")]
    fn aliasing_batch_is_rejected() {
        let mut planner = Planner::new(Rigor::Estimate);
        let plan = planner.plan(4, Direction::Forward);
        let mut data = signal(4);
        let mut scratch = BatchScratch::for_plan(&plan);
        execute_batch(
            &plan,
            &mut data,
            BatchLayout {
                howmany: 2,
                stride: 1,
                dist: 0,
            },
            &mut scratch,
        );
    }

    #[test]
    fn alias_formula_catches_interleaved_overlap() {
        // stride 2, dist 2: line 1 starts on line 0's second element.
        let l = BatchLayout {
            howmany: 2,
            stride: 2,
            dist: 2,
        };
        assert!(lines_alias(l, 4));
        // stride 2, dist 3: lines 0 and 2 share offset 6 once n ≥ 4.
        let l = BatchLayout {
            howmany: 3,
            stride: 2,
            dist: 3,
        };
        assert!(lines_alias(l, 4));
        // …but with only two lines the offsets are odd-vs-even: legal.
        let l = BatchLayout {
            howmany: 2,
            stride: 2,
            dist: 3,
        };
        assert!(!lines_alias(l, 4));
        // Matrix columns (stride = cols, dist = 1) never alias.
        let l = BatchLayout {
            howmany: 8,
            stride: 8,
            dist: 1,
        };
        assert!(!lines_alias(l, 6));
        // Zero stride revisits one offset within a single line.
        let l = BatchLayout {
            howmany: 1,
            stride: 0,
            dist: 1,
        };
        assert!(lines_alias(l, 2));
        assert!(!lines_alias(l, 1));
        // Contiguous lines are always fine.
        assert!(!lines_alias(BatchLayout::contiguous(16, 50), 16));
    }

    #[test]
    #[should_panic(expected = "alias")]
    fn interleaved_overlapping_batch_is_rejected() {
        let mut planner = Planner::new(Rigor::Estimate);
        let plan = planner.plan(4, Direction::Forward);
        // required_len = 2·4 + 3·2 + 1 = 15; lines 0 and 1 share offset 4.
        let mut data = signal(15);
        let mut scratch = BatchScratch::for_plan(&plan);
        execute_batch(
            &plan,
            &mut data,
            BatchLayout {
                howmany: 3,
                stride: 2,
                dist: 4,
            },
            &mut scratch,
        );
    }

    #[test]
    fn threaded_batch_is_bit_identical_to_sequential() {
        let n = 48;
        let howmany = 13;
        let mut planner = Planner::new(Rigor::Estimate);
        let plan = planner.plan(n, Direction::Forward);
        let layout = BatchLayout::contiguous(n, howmany);
        let mut seq = signal(n * howmany);
        let mut par = seq.clone();
        let mut scratch = BatchScratch::for_plan(&plan);
        execute_batch(&plan, &mut seq, layout, &mut scratch);
        for threads in [1, 2, 3, 8] {
            par.copy_from_slice(&signal(n * howmany));
            execute_batch_threaded(&plan, &mut par, layout, threads);
            // Bit-identical, not merely close: same plan, same per-line input.
            assert!(
                seq.iter()
                    .zip(&par)
                    .all(|(a, b)| a.re.to_bits() == b.re.to_bits()
                        && a.im.to_bits() == b.im.to_bits()),
                "threads={threads} diverged"
            );
        }
    }

    #[test]
    fn threaded_strided_batch_falls_back_and_matches() {
        let (rows, cols) = (6usize, 8usize);
        let mut planner = Planner::new(Rigor::Estimate);
        let plan = planner.plan(rows, Direction::Forward);
        let layout = BatchLayout {
            howmany: cols,
            stride: cols,
            dist: 1,
        };
        let mut seq = signal(rows * cols);
        let mut par = seq.clone();
        let mut scratch = BatchScratch::for_plan(&plan);
        execute_batch(&plan, &mut seq, layout, &mut scratch);
        execute_batch_threaded(&plan, &mut par, layout, 4);
        assert!(seq
            .iter()
            .zip(&par)
            .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()));
    }

    #[test]
    fn execute_lines_threaded_handles_gaps() {
        // Rows with a hole between them: untouched elements must survive.
        let n = 16;
        let mut planner = Planner::new(Rigor::Estimate);
        let plan = planner.plan(n, Direction::Forward);
        let mut data = signal(3 * n);
        let orig = data.clone();
        let starts = [0, 2 * n];
        execute_lines_threaded(&plan, &mut data, &starts, 4);
        for (j, (got, was)) in data[n..2 * n].iter().zip(&orig[n..2 * n]).enumerate() {
            assert_eq!(
                got.re.to_bits(),
                was.re.to_bits(),
                "gap element {j} touched"
            );
            assert_eq!(
                got.im.to_bits(),
                was.im.to_bits(),
                "gap element {j} touched"
            );
        }
        let want = dft(&orig[0..n], Direction::Forward);
        assert!(max_abs_diff(&data[0..n], &want) < 1e-9 * n as f64);
    }

    #[test]
    #[should_panic(expected = "sorted and non-overlapping")]
    fn execute_lines_threaded_rejects_overlapping_rows() {
        let mut planner = Planner::new(Rigor::Estimate);
        let plan = planner.plan(8, Direction::Forward);
        let mut data = signal(16);
        execute_lines_threaded(&plan, &mut data, &[0, 4], 2);
    }

    #[test]
    fn for_each_part_threaded_matches_sequential() {
        let mut seq: Vec<Complex64> = signal(40);
        let mut par = seq.clone();
        let bounds = [0usize, 7, 7, 19, 40];
        let bump = |i: usize, part: &mut [Complex64]| {
            for (j, v) in part.iter_mut().enumerate() {
                *v = Complex64::new(v.re + i as f64, v.im + j as f64);
            }
        };
        for i in 0..bounds.len() - 1 {
            bump(i, &mut seq[bounds[i]..bounds[i + 1]]);
        }
        for_each_part_threaded(&mut par, &bounds, 3, bump);
        assert!(seq
            .iter()
            .zip(&par)
            .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()));
    }

    #[test]
    fn for_each_row_threaded_passes_metadata() {
        let n = 4;
        let mut data = vec![Complex64::ZERO; 3 * n];
        let rows = [(0usize, 10.0f64), (n, 20.0), (2 * n, 30.0)];
        for_each_row_threaded(&mut data, n, &rows, 2, |row, &tag| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = Complex64::new(tag, j as f64);
            }
        });
        for (s, tag) in rows {
            for j in 0..n {
                assert_eq!(data[s + j], Complex64::new(tag, j as f64));
            }
        }
    }

    #[test]
    fn zero_lines_is_a_no_op() {
        let mut planner = Planner::new(Rigor::Estimate);
        let plan = planner.plan(8, Direction::Forward);
        let mut data: Vec<Complex64> = vec![];
        let mut scratch = BatchScratch::for_plan(&plan);
        execute_batch(
            &plan,
            &mut data,
            BatchLayout::contiguous(8, 0),
            &mut scratch,
        );
    }
}
