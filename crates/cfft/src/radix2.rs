//! Classic in-place iterative radix-2 FFT (decimation in time).
//!
//! Kept alongside the Stockham driver as a second strategy the planner can
//! measure: it needs no scratch buffer (bit-reversal permutation plus
//! in-place butterflies), which wins for lengths whose working set fits in
//! L1/L2 but loses at large sizes where Stockham's sequential passes stream
//! better.

use crate::complex::Complex64;
use crate::factor::is_power_of_two;
use crate::twiddle::{shared_table, TwiddleTable};
use crate::Direction;
use std::sync::Arc;

/// A prepared in-place radix-2 plan. Only power-of-two lengths.
#[derive(Debug, Clone)]
pub struct Radix2Plan {
    n: usize,
    dir: Direction,
    table: Arc<TwiddleTable>,
    /// Precomputed bit-reversal swap pairs `(i, j)` with `i < j`.
    swaps: Vec<(u32, u32)>,
}

impl Radix2Plan {
    /// Builds a plan, or `None` when `n` is not a power of two.
    pub fn new(n: usize, dir: Direction) -> Option<Self> {
        if !is_power_of_two(n) || n > u32::MAX as usize {
            return None;
        }
        let bits = n.trailing_zeros();
        let mut swaps = Vec::new();
        for i in 0..n as u32 {
            let j = i.reverse_bits() >> (32 - bits.max(1));
            let j = if bits == 0 { i } else { j };
            if i < j {
                swaps.push((i, j));
            }
        }
        Some(Radix2Plan {
            n,
            dir,
            table: shared_table(n.max(1), dir),
            swaps,
        })
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Transform direction.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.dir
    }

    /// Executes the transform fully in place (unnormalised).
    pub fn execute(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "data length mismatch with plan");
        let n = self.n;
        if n <= 1 {
            return;
        }
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
        // Butterfly passes: len = 2, 4, ..., n. The twiddle for butterfly k
        // of a block of size `len` is ω_n^{k·(n/len)}.
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            for block in (0..n).step_by(len) {
                let mut widx = 0usize;
                for k in 0..half {
                    let w = self.table.factor_unreduced(widx);
                    let a = data[block + k];
                    let b = data[block + k + half] * w;
                    data[block + k] = a + b;
                    data[block + k + half] = a - b;
                    widx += step;
                }
            }
            len *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_abs_diff;
    use crate::dft::dft;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|j| Complex64::new((j as f64 * 0.37).cos(), (j as f64 * 0.11).sin() - 0.2))
            .collect()
    }

    #[test]
    fn matches_naive_dft_for_powers_of_two() {
        for n in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 1024] {
            let x = signal(n);
            let plan = Radix2Plan::new(n, Direction::Forward).unwrap();
            let mut y = x.clone();
            plan.execute(&mut y);
            let want = dft(&x, Direction::Forward);
            assert!(max_abs_diff(&y, &want) < 1e-8 * n.max(1) as f64, "n={n}");
        }
    }

    #[test]
    fn rejects_non_powers_of_two() {
        assert!(Radix2Plan::new(24, Direction::Forward).is_none());
        assert!(Radix2Plan::new(0, Direction::Forward).is_none());
    }

    #[test]
    fn round_trip_identity() {
        let n = 64;
        let x = signal(n);
        let f = Radix2Plan::new(n, Direction::Forward).unwrap();
        let b = Radix2Plan::new(n, Direction::Backward).unwrap();
        let mut y = x.clone();
        f.execute(&mut y);
        b.execute(&mut y);
        let y: Vec<Complex64> = y.into_iter().map(|v| v / n as f64).collect();
        assert!(max_abs_diff(&y, &x) < 1e-11 * n as f64);
    }

    #[test]
    fn agrees_with_stockham_driver() {
        use crate::mixed::MixedRadixPlan;
        let n = 512;
        let x = signal(n);
        let r2 = Radix2Plan::new(n, Direction::Forward).unwrap();
        let mx = MixedRadixPlan::new(n, Direction::Forward).unwrap();
        let mut a = x.clone();
        r2.execute(&mut a);
        let mut b = x.clone();
        let mut scratch = vec![Complex64::ZERO; n];
        mx.execute(&mut b, &mut scratch);
        assert!(max_abs_diff(&a, &b) < 1e-9 * n as f64);
    }
}
