//! Bluestein's chirp-z algorithm for arbitrary transform lengths.
//!
//! Rewrites an N-point DFT (N arbitrary, including large primes) as a
//! circular convolution of length `M ≥ 2N−1`, `M` a power of two, evaluated
//! with the radix-2/Stockham kernels:
//!
//! ```text
//! jk = −((j−k)² − j² − k²)/2
//! Y[k] = b*[k] · Σ_j (x[j]·b*[j]) · b[k−j],   b[j] = e^{iπ j²/N·sign}
//! ```
//!
//! The chirp `b` and the FFT of its zero-padded extension are precomputed at
//! plan time, so execution is two forward FFTs, a point-wise multiply, and
//! one inverse FFT of length `M`.

use crate::complex::Complex64;
use crate::mixed::MixedRadixPlan;
use crate::Direction;

/// A prepared Bluestein plan for one `(length, direction)` pair.
#[derive(Debug, Clone)]
pub struct BluesteinPlan {
    n: usize,
    m: usize,
    dir: Direction,
    /// Chirp values `b[j] = e^{sign·iπ j²/n}` for `j < n`.
    chirp: Vec<Complex64>,
    /// Forward FFT (length `m`) of the circularly extended chirp.
    chirp_hat: Vec<Complex64>,
    fwd: MixedRadixPlan,
    bwd: MixedRadixPlan,
}

impl BluesteinPlan {
    /// Builds the plan. Always succeeds for `n ≥ 1`.
    pub fn new(n: usize, dir: Direction) -> Self {
        assert!(n >= 1, "Bluestein length must be ≥ 1");
        let m = (2 * n - 1).next_power_of_two().max(1);
        // Forward needs a[j] = x[j]·e^{−iπj²/n}; the code multiplies by
        // `chirp.conj()`, so the stored chirp carries the opposite sign.
        let sign = match dir {
            Direction::Forward => 1.0,
            Direction::Backward => -1.0,
        };
        // j² mod 2n keeps the chirp argument exact for large j.
        let two_n = 2 * n as u64;
        let chirp: Vec<Complex64> = (0..n as u64)
            .map(|j| {
                let jsq = (j * j) % two_n;
                Complex64::cis(sign * std::f64::consts::PI * jsq as f64 / n as f64)
            })
            .collect();

        let fwd = MixedRadixPlan::new(m, Direction::Forward)
            .expect("power-of-two lengths are always smooth");
        let bwd = MixedRadixPlan::new(m, Direction::Backward)
            .expect("power-of-two lengths are always smooth");

        // Extended chirp: conj at 0..n and mirrored tail, zero in between.
        let mut ext = vec![Complex64::ZERO; m];
        for (j, &c) in chirp.iter().enumerate() {
            ext[j] = c;
            if j != 0 {
                ext[m - j] = c;
            }
        }
        let mut scratch = vec![Complex64::ZERO; m];
        let mut chirp_hat = ext;
        fwd.execute(&mut chirp_hat, &mut scratch);

        BluesteinPlan {
            n,
            m,
            dir,
            chirp,
            chirp_hat,
            fwd,
            bwd,
        }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Convolution length (power of two ≥ 2n−1); the scratch requirement.
    #[inline]
    pub fn conv_len(&self) -> usize {
        self.m
    }

    /// Transform direction.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.dir
    }

    /// Executes the transform in place (unnormalised). `scratch` must hold
    /// at least `2 · conv_len()` elements.
    pub fn execute(&self, data: &mut [Complex64], scratch: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "data length mismatch with plan");
        assert!(
            scratch.len() >= 2 * self.m,
            "Bluestein scratch must be ≥ 2·conv_len ({} < {})",
            scratch.len(),
            2 * self.m
        );
        let (a, rest) = scratch.split_at_mut(self.m);
        let ping = &mut rest[..self.m];

        // a = x ⊙ b*, zero padded to m.
        for (slot, (x, c)) in a.iter_mut().zip(data.iter().zip(&self.chirp)) {
            *slot = *x * c.conj();
        }
        for slot in a[self.n..].iter_mut() {
            *slot = Complex64::ZERO;
        }

        self.fwd.execute(a, ping);
        for (ai, hi) in a.iter_mut().zip(&self.chirp_hat) {
            *ai *= *hi;
        }
        self.bwd.execute(a, ping);

        let inv_m = 1.0 / self.m as f64;
        for (y, (ai, c)) in data.iter_mut().zip(a.iter().zip(&self.chirp)) {
            *y = (*ai * c.conj()).scale(inv_m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_abs_diff;
    use crate::dft::dft;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|j| Complex64::new(((j * j) as f64 * 0.013).sin(), (j as f64 * 0.41).cos()))
            .collect()
    }

    fn check(n: usize, dir: Direction, tol: f64) {
        let x = signal(n);
        let plan = BluesteinPlan::new(n, dir);
        let mut y = x.clone();
        let mut scratch = vec![Complex64::ZERO; 2 * plan.conv_len()];
        plan.execute(&mut y, &mut scratch);
        let want = dft(&x, dir);
        let err = max_abs_diff(&y, &want);
        assert!(err < tol, "n={n} dir={dir:?} err={err}");
    }

    #[test]
    fn primes_match_naive_dft() {
        for n in [2usize, 3, 5, 7, 11, 37, 41, 97, 101, 127, 251] {
            check(n, Direction::Forward, 1e-8 * n as f64);
        }
    }

    #[test]
    fn composite_and_awkward_lengths() {
        for n in [1usize, 6, 12, 74, 111, 222, 333, 1000] {
            check(n, Direction::Forward, 1e-8 * n.max(1) as f64);
        }
    }

    #[test]
    fn backward_direction() {
        for n in [5usize, 37, 100] {
            check(n, Direction::Backward, 1e-8 * n as f64);
        }
    }

    #[test]
    fn round_trip_through_bluestein() {
        let n = 107;
        let x = signal(n);
        let f = BluesteinPlan::new(n, Direction::Forward);
        let b = BluesteinPlan::new(n, Direction::Backward);
        let mut scratch = vec![Complex64::ZERO; 2 * f.conv_len().max(b.conv_len())];
        let mut y = x.clone();
        f.execute(&mut y, &mut scratch);
        b.execute(&mut y, &mut scratch);
        let y: Vec<Complex64> = y.into_iter().map(|v| v / n as f64).collect();
        assert!(max_abs_diff(&y, &x) < 1e-9 * n as f64);
    }

    #[test]
    fn conv_len_is_padded_power_of_two() {
        let p = BluesteinPlan::new(100, Direction::Forward);
        assert!(p.conv_len() >= 199);
        assert!(p.conv_len().is_power_of_two());
    }
}
