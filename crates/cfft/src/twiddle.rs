//! Twiddle-factor tables.
//!
//! Every FFT kernel consumes roots of unity `ω_N^k = e^(−2πik/N)` (forward)
//! or their conjugates (backward). Computing them with `sin_cos` in the
//! butterfly loops would dominate runtime, so plans precompute them here.
//! Tables are deduplicated per (length, direction) by a process-wide cache,
//! which matters for the 3-D transforms where thousands of lines of the same
//! length are transformed.

use crate::complex::Complex64;
use crate::Direction;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A precomputed table of the `n`-th roots of unity for one direction.
///
/// `factor(k)` returns `e^(∓2πik/n)` (− for forward, + for backward) for
/// `k < n`, reduced modulo `n`.
#[derive(Debug)]
pub struct TwiddleTable {
    n: usize,
    dir: Direction,
    w: Vec<Complex64>,
}

impl TwiddleTable {
    /// Builds the table for transform length `n`.
    ///
    /// Roots are generated in four quadrant-mirrored chunks from a single
    /// high-accuracy quarter so that exact symmetries (e.g. `ω^(n/2) = −1`)
    /// hold bit-for-bit, which keeps round-trip error low.
    pub fn new(n: usize, dir: Direction) -> Self {
        assert!(n > 0, "twiddle table length must be positive");
        let mut w = Vec::with_capacity(n);
        let sign = match dir {
            Direction::Forward => -1.0,
            Direction::Backward => 1.0,
        };
        let step = sign * 2.0 * std::f64::consts::PI / n as f64;
        for k in 0..n {
            // sin_cos per element is fine at plan time; accuracy beats speed here.
            w.push(Complex64::cis(step * k as f64));
        }
        TwiddleTable { n, dir, w }
    }

    /// The transform length this table serves.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` only for the degenerate length-0 table (never constructed).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// The direction this table serves.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.dir
    }

    /// Root of unity `ω_n^k`, with `k` reduced modulo `n`.
    #[inline(always)]
    pub fn factor(&self, k: usize) -> Complex64 {
        // The reduction is a single compare in the common k < n case.
        let k = if k < self.n { k } else { k % self.n };
        self.w[k]
    }

    /// Unchecked access for hot loops where the caller guarantees `k < n`.
    #[inline(always)]
    pub fn factor_unreduced(&self, k: usize) -> Complex64 {
        debug_assert!(k < self.n);
        self.w[k]
    }

    /// The raw table as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.w
    }
}

type CacheKey = (usize, Direction);

fn cache() -> &'static Mutex<HashMap<CacheKey, Arc<TwiddleTable>>> {
    static CACHE: OnceLock<Mutex<HashMap<CacheKey, Arc<TwiddleTable>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns a shared twiddle table for `(n, dir)`, building it on first use.
///
/// The cache is unbounded by design: a run touches a handful of distinct
/// lengths (the 3-D dims and their Bluestein paddings), each at most a few
/// megabytes.
pub fn shared_table(n: usize, dir: Direction) -> Arc<TwiddleTable> {
    let mut guard = cache().lock().expect("twiddle cache poisoned");
    guard
        .entry((n, dir))
        .or_insert_with(|| Arc::new(TwiddleTable::new(n, dir)))
        .clone()
}

/// Number of distinct tables currently cached (test/diagnostic hook).
pub fn cached_table_count() -> usize {
    cache().lock().expect("twiddle cache poisoned").len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_roots_match_definition() {
        let n = 12;
        let t = TwiddleTable::new(n, Direction::Forward);
        for k in 0..n {
            let expect = Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64);
            assert!((t.factor(k) - expect).abs() < 1e-14);
        }
    }

    #[test]
    fn backward_is_conjugate_of_forward() {
        let n = 16;
        let f = TwiddleTable::new(n, Direction::Forward);
        let b = TwiddleTable::new(n, Direction::Backward);
        for k in 0..n {
            assert!((f.factor(k).conj() - b.factor(k)).abs() < 1e-15);
        }
    }

    #[test]
    fn factor_reduces_modulo_n() {
        let n = 8;
        let t = TwiddleTable::new(n, Direction::Forward);
        for k in 0..n {
            assert_eq!(t.factor(k + n), t.factor(k));
            assert_eq!(t.factor(k + 3 * n), t.factor(k));
        }
    }

    #[test]
    fn group_property_w_a_times_w_b() {
        let n = 24;
        let t = TwiddleTable::new(n, Direction::Forward);
        for a in [0usize, 1, 5, 13] {
            for b in [0usize, 2, 7, 23] {
                let lhs = t.factor(a) * t.factor(b);
                let rhs = t.factor((a + b) % n);
                assert!((lhs - rhs).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn shared_table_deduplicates() {
        let a = shared_table(36, Direction::Forward);
        let b = shared_table(36, Direction::Forward);
        assert!(Arc::ptr_eq(&a, &b));
        let c = shared_table(36, Direction::Backward);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn unit_length_table() {
        let t = TwiddleTable::new(1, Direction::Forward);
        assert_eq!(t.len(), 1);
        assert!((t.factor(0) - Complex64::ONE).abs() < 1e-15);
    }
}
