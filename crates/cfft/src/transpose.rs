//! Blocked memory-layout rearrangements.
//!
//! The paper leans on "the FFTW guru interface … to execute a
//! high-performance routine of memory rearrangement" for its Transpose step
//! (§3.1), and on a cheaper `x-y-z → x-z-y` rearrangement when `Nx = Ny`
//! (§3.5). This module provides those routines: a generic cache-blocked 3-D
//! axis permutation plus a specialised 2-D blocked transpose, each with a
//! `_threaded` variant that partitions the destination's slowest axis over
//! disjoint `&mut` slices (bit-identical output at any thread count).

use crate::complex::Complex64;

/// Cache block edge (elements). 16³ complex = 64 KiB ≈ L1-friendly tiles.
const BLOCK: usize = 16;

/// Dimensions of a 3-D array in row-major order: index of `(i0, i1, i2)` is
/// `(i0·n1 + i1)·n2 + i2`, so axis 2 is contiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims3 {
    /// Slowest axis extent.
    pub n0: usize,
    /// Middle axis extent.
    pub n1: usize,
    /// Fastest (contiguous) axis extent.
    pub n2: usize,
}

impl Dims3 {
    /// Constructs dimensions.
    pub fn new(n0: usize, n1: usize, n2: usize) -> Self {
        Dims3 { n0, n1, n2 }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.n0 * self.n1 * self.n2
    }

    /// `true` when any axis is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of `(i0, i1, i2)`.
    #[inline(always)]
    pub fn idx(&self, i0: usize, i1: usize, i2: usize) -> usize {
        (i0 * self.n1 + i1) * self.n2 + i2
    }

    /// Extent of the given axis (0, 1 or 2).
    #[inline]
    pub fn axis(&self, a: usize) -> usize {
        match a {
            0 => self.n0,
            1 => self.n1,
            2 => self.n2,
            _ => panic!("axis out of range: {a}"),
        }
    }
}

/// A permutation of the three axes. `perm[d] = s` means destination axis `d`
/// is source axis `s`.
pub type AxisPerm = [usize; 3];

/// `x-y-z → z-x-y` (paper's default Transpose step).
pub const XYZ_TO_ZXY: AxisPerm = [2, 0, 1];
/// `x-y-z → x-z-y` (paper's §3.5 fast path for `Nx = Ny`).
pub const XYZ_TO_XZY: AxisPerm = [0, 2, 1];
/// Identity permutation.
pub const IDENTITY: AxisPerm = [0, 1, 2];

/// Destination dimensions after applying `perm` to `src`.
pub fn permuted_dims(src: Dims3, perm: AxisPerm) -> Dims3 {
    validate_perm(perm);
    Dims3::new(src.axis(perm[0]), src.axis(perm[1]), src.axis(perm[2]))
}

fn validate_perm(perm: AxisPerm) {
    let mut seen = [false; 3];
    for &p in &perm {
        assert!(p < 3, "axis index out of range");
        assert!(!seen[p], "permutation repeats an axis");
        seen[p] = true;
    }
}

/// Permutes the axes of `src` (dims `sd`) into `dst`, cache-blocked.
///
/// `dst.len()` must equal `src.len()`; the two must not alias (guaranteed by
/// `&`/`&mut`).
pub fn permute3(src: &[Complex64], dst: &mut [Complex64], sd: Dims3, perm: AxisPerm) {
    validate_perm(perm);
    assert_eq!(src.len(), sd.len(), "source buffer does not match dims");
    assert_eq!(
        dst.len(),
        sd.len(),
        "destination buffer does not match dims"
    );
    permute3_ranged(src, dst, sd, perm, 0, sd.axis(perm[0]));
}

/// The blocked permutation core, restricted to `lo..hi` of source axis
/// `perm[0]` (the axis that becomes the destination's slowest axis). `dst`
/// is only the destination rows that restriction owns — the flat range
/// `[lo·dd.n1·dd.n2, hi·dd.n1·dd.n2)` of the full output — which is what
/// lets [`permute3_threaded`] hand workers disjoint `&mut` slices.
fn permute3_ranged(
    src: &[Complex64],
    dst: &mut [Complex64],
    sd: Dims3,
    perm: AxisPerm,
    lo: usize,
    hi: usize,
) {
    let dd = permuted_dims(sd, perm);
    let off = lo * dd.n1 * dd.n2;
    assert_eq!(
        dst.len(),
        (hi - lo) * dd.n1 * dd.n2,
        "destination slice does not match restricted range"
    );

    // Inverse permutation: source axis s appears at destination axis inv[s].
    let mut inv = [0usize; 3];
    for (d, &s) in perm.iter().enumerate() {
        inv[s] = d;
    }
    // Destination strides seen from source-axis order.
    let dstrides = [dd.n1 * dd.n2, dd.n2, 1];
    let s_to_dstride = [dstrides[inv[0]], dstrides[inv[1]], dstrides[inv[2]]];

    // Per-source-axis iteration bounds: full extents except the partition
    // axis, which walks only its assigned range.
    let mut bounds = [(0, sd.n0), (0, sd.n1), (0, sd.n2)];
    bounds[perm[0]] = (lo, hi);

    // Blocked loops over the source, contiguous reads on the inner axis.
    for b0 in (bounds[0].0..bounds[0].1).step_by(BLOCK) {
        let e0 = (b0 + BLOCK).min(bounds[0].1);
        for b1 in (bounds[1].0..bounds[1].1).step_by(BLOCK) {
            let e1 = (b1 + BLOCK).min(bounds[1].1);
            for b2 in (bounds[2].0..bounds[2].1).step_by(BLOCK) {
                let e2 = (b2 + BLOCK).min(bounds[2].1);
                for i0 in b0..e0 {
                    for i1 in b1..e1 {
                        let srow = (i0 * sd.n1 + i1) * sd.n2;
                        let dbase = i0 * s_to_dstride[0] + i1 * s_to_dstride[1];
                        for i2 in b2..e2 {
                            // Subtract `off` only after the partition axis
                            // contributed its (≥ off) term — the partition
                            // axis may be any of the three source axes.
                            dst[dbase + i2 * s_to_dstride[2] - off] = src[srow + i2];
                        }
                    }
                }
            }
        }
    }
}

/// [`permute3`] spread over up to `threads` workers.
///
/// The destination's slowest axis (`source axis perm[0]`) is partitioned
/// into contiguous ranges; each worker writes only the destination rows its
/// range owns (disjoint `chunks_mut` slices), while all workers read the
/// shared source. Identical element movement to [`permute3`], so the output
/// is bit-identical for every thread count.
pub fn permute3_threaded(
    src: &[Complex64],
    dst: &mut [Complex64],
    sd: Dims3,
    perm: AxisPerm,
    threads: usize,
) {
    validate_perm(perm);
    assert_eq!(src.len(), sd.len(), "source buffer does not match dims");
    assert_eq!(
        dst.len(),
        sd.len(),
        "destination buffer does not match dims"
    );
    let m = sd.axis(perm[0]);
    if threads <= 1 || m <= 1 {
        permute3_ranged(src, dst, sd, perm, 0, m);
        return;
    }
    let dd = permuted_dims(sd, perm);
    let plane = dd.n1 * dd.n2;
    if plane == 0 {
        return;
    }
    let per = m.div_ceil(threads.min(m));
    rayon::scope(|s| {
        for (c, part) in dst.chunks_mut(per * plane).enumerate() {
            let lo = c * per;
            let hi = (lo + per).min(m);
            s.spawn(move |_| permute3_ranged(src, part, sd, perm, lo, hi));
        }
    });
}

/// Blocked out-of-place 2-D transpose: `dst[c][r] = src[r][c]` for an
/// `rows × cols` row-major matrix.
pub fn transpose2(src: &[Complex64], dst: &mut [Complex64], rows: usize, cols: usize) {
    assert_eq!(src.len(), rows * cols, "source buffer does not match dims");
    assert_eq!(
        dst.len(),
        rows * cols,
        "destination buffer does not match dims"
    );
    for br in (0..rows).step_by(BLOCK) {
        let er = (br + BLOCK).min(rows);
        for bc in (0..cols).step_by(BLOCK) {
            let ec = (bc + BLOCK).min(cols);
            for r in br..er {
                for c in bc..ec {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

/// The §3.5 fast path: `x-y-z → x-z-y` as `n0` independent 2-D transposes of
/// the trailing `(n1, n2)` planes. Strictly less data movement distance than
/// the generic permutation, which is why the paper prefers it when legal.
pub fn xzy_fast(src: &[Complex64], dst: &mut [Complex64], sd: Dims3) {
    assert_eq!(src.len(), sd.len(), "source buffer does not match dims");
    assert_eq!(
        dst.len(),
        sd.len(),
        "destination buffer does not match dims"
    );
    let plane = sd.n1 * sd.n2;
    for i0 in 0..sd.n0 {
        transpose2(
            &src[i0 * plane..(i0 + 1) * plane],
            &mut dst[i0 * plane..(i0 + 1) * plane],
            sd.n1,
            sd.n2,
        );
    }
}

/// [`xzy_fast`] spread over up to `threads` workers: the `n0` plane
/// transposes are independent, so contiguous groups of planes go to
/// separate workers via `chunks_mut`. Bit-identical to the sequential path.
pub fn xzy_fast_threaded(src: &[Complex64], dst: &mut [Complex64], sd: Dims3, threads: usize) {
    assert_eq!(src.len(), sd.len(), "source buffer does not match dims");
    assert_eq!(
        dst.len(),
        sd.len(),
        "destination buffer does not match dims"
    );
    if threads <= 1 || sd.n0 <= 1 {
        xzy_fast(src, dst, sd);
        return;
    }
    let plane = sd.n1 * sd.n2;
    if plane == 0 {
        return;
    }
    let per = sd.n0.div_ceil(threads.min(sd.n0));
    rayon::scope(|s| {
        for (c, part) in dst.chunks_mut(per * plane).enumerate() {
            let base = c * per;
            s.spawn(move |_| {
                for (p, dplane) in part.chunks_mut(plane).enumerate() {
                    let i0 = base + p;
                    transpose2(&src[i0 * plane..(i0 + 1) * plane], dplane, sd.n1, sd.n2);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(d: Dims3) -> Vec<Complex64> {
        (0..d.len())
            .map(|i| Complex64::new(i as f64, -(i as f64)))
            .collect()
    }

    #[test]
    fn zxy_permutation_is_correct() {
        let sd = Dims3::new(3, 4, 5); // x, y, z
        let src = fill(sd);
        let mut dst = vec![Complex64::ZERO; sd.len()];
        permute3(&src, &mut dst, sd, XYZ_TO_ZXY);
        let dd = permuted_dims(sd, XYZ_TO_ZXY);
        assert_eq!(dd, Dims3::new(5, 3, 4));
        for x in 0..3 {
            for y in 0..4 {
                for z in 0..5 {
                    assert_eq!(dst[dd.idx(z, x, y)], src[sd.idx(x, y, z)]);
                }
            }
        }
    }

    #[test]
    fn xzy_permutation_matches_fast_path() {
        let sd = Dims3::new(4, 6, 7);
        let src = fill(sd);
        let mut a = vec![Complex64::ZERO; sd.len()];
        let mut b = vec![Complex64::ZERO; sd.len()];
        permute3(&src, &mut a, sd, XYZ_TO_XZY);
        xzy_fast(&src, &mut b, sd);
        assert_eq!(a, b);
    }

    #[test]
    fn identity_permutation_copies() {
        let sd = Dims3::new(2, 3, 4);
        let src = fill(sd);
        let mut dst = vec![Complex64::ZERO; sd.len()];
        permute3(&src, &mut dst, sd, IDENTITY);
        assert_eq!(src, dst);
    }

    #[test]
    fn permutation_round_trip() {
        // Applying zxy twice more returns to the original order (3-cycle).
        let sd = Dims3::new(5, 6, 7);
        let src = fill(sd);
        let mut a = vec![Complex64::ZERO; sd.len()];
        let mut b = vec![Complex64::ZERO; sd.len()];
        let mut c = vec![Complex64::ZERO; sd.len()];
        permute3(&src, &mut a, sd, XYZ_TO_ZXY);
        let da = permuted_dims(sd, XYZ_TO_ZXY);
        permute3(&a, &mut b, da, XYZ_TO_ZXY);
        let db = permuted_dims(da, XYZ_TO_ZXY);
        permute3(&b, &mut c, db, XYZ_TO_ZXY);
        assert_eq!(src, c);
    }

    #[test]
    fn transpose2_blocked_vs_naive() {
        let (r, cdim) = (37, 23); // deliberately not multiples of BLOCK
        let src: Vec<Complex64> = (0..r * cdim)
            .map(|i| Complex64::new(i as f64, 0.5 * i as f64))
            .collect();
        let mut dst = vec![Complex64::ZERO; r * cdim];
        transpose2(&src, &mut dst, r, cdim);
        for i in 0..r {
            for j in 0..cdim {
                assert_eq!(dst[j * r + i], src[i * cdim + j]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "repeats an axis")]
    fn duplicate_axis_rejected() {
        let sd = Dims3::new(2, 2, 2);
        let src = fill(sd);
        let mut dst = vec![Complex64::ZERO; sd.len()];
        permute3(&src, &mut dst, sd, [0, 0, 1]);
    }

    #[test]
    fn threaded_permute_is_bit_identical() {
        for sd in [
            Dims3::new(5, 6, 7),
            Dims3::new(33, 4, 9),
            Dims3::new(1, 8, 8),
        ] {
            let src = fill(sd);
            for perm in [XYZ_TO_ZXY, XYZ_TO_XZY, IDENTITY, [1, 0, 2]] {
                let mut seq = vec![Complex64::ZERO; sd.len()];
                permute3(&src, &mut seq, sd, perm);
                for threads in [1, 2, 3, 8] {
                    let mut par = vec![Complex64::ZERO; sd.len()];
                    permute3_threaded(&src, &mut par, sd, perm, threads);
                    assert_eq!(seq, par, "sd={sd:?} perm={perm:?} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn threaded_xzy_fast_is_bit_identical() {
        for sd in [Dims3::new(4, 6, 7), Dims3::new(17, 5, 3)] {
            let src = fill(sd);
            let mut seq = vec![Complex64::ZERO; sd.len()];
            xzy_fast(&src, &mut seq, sd);
            for threads in [1, 2, 5, 8] {
                let mut par = vec![Complex64::ZERO; sd.len()];
                xzy_fast_threaded(&src, &mut par, sd, threads);
                assert_eq!(seq, par, "sd={sd:?} threads={threads}");
            }
        }
    }

    #[test]
    fn degenerate_axes() {
        let sd = Dims3::new(1, 1, 8);
        let src = fill(sd);
        let mut dst = vec![Complex64::ZERO; sd.len()];
        permute3(&src, &mut dst, sd, XYZ_TO_ZXY);
        // z-x-y of a 1×1×8 array is an 8×1×1 array with the same flat data.
        assert_eq!(src, dst);
    }
}
