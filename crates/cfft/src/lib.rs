//! # cfft — complex FFT kernels, planner, and layout rearrangement
//!
//! The serial-FFT substrate of this workspace: everything the paper obtains
//! from FFTW is implemented here from scratch.
//!
//! * [`planner::Planner`] with [`planner::Rigor`] mirrors FFTW's
//!   `ESTIMATE`/`MEASURE`/`PATIENT` planning (§4.1 of the paper).
//! * [`cache::PlanCache`] shares plans process-wide (FFTW's wisdom): the
//!   transform entry points draw from [`cache::PlanCache::global`] so
//!   repeated geometries never replan.
//! * Kernels: naive [`dft`], in-place [`radix2`], Stockham [`mixed`] radix,
//!   and [`bluestein`] for arbitrary lengths.
//! * [`batch`] runs a plan over many strided lines (FFTW's advanced
//!   interface), which is how the 3-D steps consume it.
//! * [`transpose`] provides the blocked axis permutations used by the
//!   Transpose step, including the `Nx = Ny` fast path of §3.5.
//! * [`real`] implements the real-to-complex transform mentioned in §2.3.
//!
//! All transforms are unnormalised in both directions (FFTW convention):
//! forward followed by backward multiplies the data by `N`.
//!
//! ```
//! use cfft::{Direction, planner::{Planner, Rigor}, Complex64};
//!
//! let mut planner = Planner::new(Rigor::Estimate);
//! let plan = planner.plan(240, Direction::Forward);
//! let mut data = vec![Complex64::new(1.0, 0.0); 240];
//! plan.execute_alloc(&mut data);
//! assert!((data[0].re - 240.0).abs() < 1e-9); // DC bin holds the sum
//! ```

// `x % n == 0` keeps the stated MSRV (1.85); `is_multiple_of` needs 1.87.
#![allow(clippy::manual_is_multiple_of)]
// A plan's `len()` is its transform size; an `is_empty()` would be meaningless.
#![allow(clippy::len_without_is_empty)]
pub mod batch;
pub mod bluestein;
pub mod cache;
pub mod complex;
pub mod dft;
pub mod factor;
pub mod mixed;
pub mod planner;
pub mod rader;
pub mod radix2;
pub mod real;
pub mod transpose;
pub mod twiddle;

pub use cache::{CacheStats, PlanCache};
pub use complex::Complex64;
pub use planner::{Plan1d, Planner, Rigor};

/// Transform direction. Forward uses `ω_N = e^{−2πi/N}` (Equation 1 of the
/// paper); backward uses the conjugate roots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Time domain → frequency domain.
    Forward,
    /// Frequency domain → time domain (unnormalised).
    Backward,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_reverse_is_involutive() {
        assert_eq!(Direction::Forward.reverse(), Direction::Backward);
        assert_eq!(Direction::Forward.reverse().reverse(), Direction::Forward);
    }
}
