//! Real-to-complex and complex-to-real transforms.
//!
//! §2.3 of the paper notes that the overlap machinery applies unchanged to
//! the specialised real-input transforms of Sorensen et al.; this module
//! provides that substrate using the classic half-length trick: a real
//! sequence of even length `n` is packed into `n/2` complex samples, one
//! complex FFT is run, and the spectrum is disentangled with post-twiddles.
//! The result is the non-redundant half-spectrum of `n/2 + 1` bins.

use crate::complex::Complex64;
use crate::planner::{Plan1d, Planner, Rigor};
use crate::Direction;
use std::sync::Arc;

/// A prepared real-to-complex / complex-to-real transform of even length.
pub struct RealFftPlan {
    n: usize,
    half_fwd: Arc<Plan1d>,
    half_bwd: Arc<Plan1d>,
    /// Post-twiddles `e^{−2πik/n}` for `k ≤ n/4`… full table for simplicity.
    twiddle: Vec<Complex64>,
}

impl RealFftPlan {
    /// Builds a plan for real length `n` (must be even and ≥ 2).
    pub fn new(n: usize, rigor: Rigor) -> Self {
        assert!(
            n >= 2 && n % 2 == 0,
            "real FFT length must be even and ≥ 2, got {n}"
        );
        let mut planner = Planner::new(rigor);
        let half_fwd = planner.plan(n / 2, Direction::Forward);
        let half_bwd = planner.plan(n / 2, Direction::Backward);
        let twiddle = (0..n / 2 + 1)
            .map(|k| Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        RealFftPlan {
            n,
            half_fwd,
            half_bwd,
            twiddle,
        }
    }

    /// Real transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Number of complex output bins, `n/2 + 1`.
    #[inline]
    pub fn spectrum_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Forward transform: real `input` (length `n`) → half spectrum
    /// (length `n/2 + 1`).
    pub fn forward(&self, input: &[f64], spectrum: &mut [Complex64]) {
        let n = self.n;
        let h = n / 2;
        assert_eq!(input.len(), n, "input length mismatch");
        assert_eq!(spectrum.len(), h + 1, "spectrum length mismatch");

        // Pack even samples into re, odd into im.
        let mut z: Vec<Complex64> = (0..h)
            .map(|j| Complex64::new(input[2 * j], input[2 * j + 1]))
            .collect();
        let mut scratch = vec![Complex64::ZERO; self.half_fwd.scratch_len()];
        self.half_fwd.execute(&mut z, &mut scratch);

        // Disentangle: Z[k] = E[k] + i·O[k] where E/O are the FFTs of the
        // even/odd subsequences; then Y[k] = E[k] + ω^k·O[k].
        for k in 0..=h {
            let zk = if k == h { z[0] } else { z[k] };
            let zkc = z[(h - k) % h].conj();
            let e = (zk + zkc).scale(0.5);
            let o = (zk - zkc).mul_neg_i().scale(0.5);
            spectrum[k] = e + self.twiddle[k] * o;
        }
    }

    /// Inverse transform: half spectrum (length `n/2 + 1`) → real `output`
    /// (length `n`). Unnormalised, matching the complex kernels: a forward
    /// → inverse round trip scales by `n`.
    pub fn inverse(&self, spectrum: &[Complex64], output: &mut [f64]) {
        let n = self.n;
        let h = n / 2;
        assert_eq!(spectrum.len(), h + 1, "spectrum length mismatch");
        assert_eq!(output.len(), n, "output length mismatch");

        // Reverse the disentangling, then one half-length inverse FFT.
        let mut z = vec![Complex64::ZERO; h];
        for (k, slot) in z.iter_mut().enumerate() {
            let yk = spectrum[k];
            let ync = spectrum[h - k].conj();
            // The ½ factors are folded out so a forward→inverse round trip
            // scales by n (not n/2), matching the complex-kernel convention.
            let e = yk + ync;
            let o = (yk - ync) * self.twiddle[k].conj();
            *slot = e + o.mul_i();
        }
        let mut scratch = vec![Complex64::ZERO; self.half_bwd.scratch_len()];
        self.half_bwd.execute(&mut z, &mut scratch);
        for (j, zj) in z.iter().enumerate() {
            output[2 * j] = zj.re;
            output[2 * j + 1] = zj.im;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    fn real_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|j| (j as f64 * 0.19).sin() + 0.3 * (j as f64 * 0.05).cos())
            .collect()
    }

    #[test]
    fn forward_matches_complex_dft() {
        for n in [2usize, 4, 8, 12, 30, 64, 100, 256] {
            let x = real_signal(n);
            let plan = RealFftPlan::new(n, Rigor::Estimate);
            let mut spec = vec![Complex64::ZERO; plan.spectrum_len()];
            plan.forward(&x, &mut spec);
            let xc: Vec<Complex64> = x.iter().map(|&r| Complex64::new(r, 0.0)).collect();
            let want = dft(&xc, Direction::Forward);
            for k in 0..plan.spectrum_len() {
                assert!((spec[k] - want[k]).abs() < 1e-9 * n as f64, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn hermitian_symmetry_is_implied() {
        // The stored half spectrum plus conjugate symmetry reproduces the
        // full complex spectrum.
        let n = 16;
        let x = real_signal(n);
        let plan = RealFftPlan::new(n, Rigor::Estimate);
        let mut spec = vec![Complex64::ZERO; plan.spectrum_len()];
        plan.forward(&x, &mut spec);
        let xc: Vec<Complex64> = x.iter().map(|&r| Complex64::new(r, 0.0)).collect();
        let full = dft(&xc, Direction::Forward);
        for k in plan.spectrum_len()..n {
            assert!((full[k] - spec[n - k].conj()).abs() < 1e-10);
        }
    }

    #[test]
    fn round_trip_scales_by_n() {
        for n in [4usize, 20, 48, 128] {
            let x = real_signal(n);
            let plan = RealFftPlan::new(n, Rigor::Estimate);
            let mut spec = vec![Complex64::ZERO; plan.spectrum_len()];
            plan.forward(&x, &mut spec);
            let mut back = vec![0.0; n];
            plan.inverse(&spec, &mut back);
            for j in 0..n {
                assert!((back[j] / n as f64 - x[j]).abs() < 1e-10, "n={n} j={j}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_lengths_rejected() {
        RealFftPlan::new(9, Rigor::Estimate);
    }

    #[test]
    fn dc_and_nyquist_are_real() {
        let n = 32;
        let x = real_signal(n);
        let plan = RealFftPlan::new(n, Rigor::Estimate);
        let mut spec = vec![Complex64::ZERO; plan.spectrum_len()];
        plan.forward(&x, &mut spec);
        assert!(spec[0].im.abs() < 1e-10);
        assert!(spec[n / 2].im.abs() < 1e-10);
    }
}
